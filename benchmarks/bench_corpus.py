"""Corpus service bench: ingest rate, query latency, hash-cons dedup.

Drives the full corpus lifecycle in-process against a throwaway root —
register, bulk-ingest in chunks, batch-parse, then hammer the
Korp-style query endpoint — and reports the three numbers the corpus
subsystem exists to optimise:

* **ingest docs/s** — content-hashed bulk ingest throughput (including
  the crash-safe fsync-and-rename persistence), plus proof that
  re-ingesting a chunk is a counted no-op;
* **query p50/p99, cached vs uncached** — the same paginated ``match``
  page served through the read-through cache and with ``"cache": false``
  bypass, measured through the whole dispatcher path;
* **dedup ratio** — the hash-consed result store's sharing on a workload
  where every rejected document fails the same way (identical distilled
  diagnostics collapse to one stored payload).

``--floor benchmarks/corpus_floor.json`` turns the run into a CI gate.
The machine-independent guards are the dedup ratio (a deterministic
property of the workload) and the cached-vs-uncached p50 speedup
(same-run, same-machine); the absolute ingest floor has ~3x slack as a
gross sanity net.

Standalone (writes ``BENCH_corpus.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_corpus.py
    PYTHONPATH=src python benchmarks/bench_corpus.py \\
        --floor benchmarks/corpus_floor.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

try:
    from repro.service import Dispatcher
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.service import Dispatcher

#: Unambiguous on purpose — every accepted document has exactly one
#: tree, so parse time is linear in the corpus, not Catalan.
GRAMMAR = (
    "START ::= B\n"
    "B ::= true\n"
    "B ::= false\n"
    "B ::= B or true\n"
    "B ::= B or false"
)

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus.json"

ACCEPTED_DOCS = 1000
REJECTED_DOCS = 250
INGEST_CHUNK = 250
QUERY_SAMPLES = 300
QUERY_PAGE_SIZE = 200


def percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def corpus_documents(accepted: int, rejected: int) -> List[Dict[str, str]]:
    documents = [
        {
            "name": f"bool-{value:05d}",
            "text": " or ".join(
                "true" if (value >> bit) & 1 else "false" for bit in range(10)
            ),
        }
        for value in range(accepted)
    ]
    # Identical up to the failure point: all rejections distill to one
    # diagnostics payload, which is what the dedup ratio measures.
    documents += [
        {"name": f"bad-{index:04d}", "text": f"true or maybe tail-{index}"}
        for index in range(rejected)
    ]
    return documents


def run_corpus(
    accepted: int = ACCEPTED_DOCS,
    rejected: int = REJECTED_DOCS,
    chunk: int = INGEST_CHUNK,
    query_samples: int = QUERY_SAMPLES,
    table_cache: Optional[str] = None,
) -> Dict[str, Any]:
    """One full lifecycle in a throwaway root; returns a result dict."""
    documents = corpus_documents(accepted, rejected)
    with tempfile.TemporaryDirectory(prefix="repro-corpus-bench-") as root:
        dispatcher = Dispatcher(corpus_root=root, table_cache=table_cache)
        try:
            created = dispatcher.handle(
                {"cmd": "corpus-create", "corpus": "bench", "grammar": GRAMMAR}
            )
            if "error" in created:
                raise RuntimeError(f"corpus-create failed: {created['error']}")

            # -- ingest ----------------------------------------------------
            started = time.perf_counter()
            added = 0
            for start in range(0, len(documents), chunk):
                outcome = dispatcher.handle(
                    {
                        "cmd": "corpus-ingest",
                        "corpus": "bench",
                        "documents": documents[start : start + chunk],
                    }
                )
                if "error" in outcome:
                    raise RuntimeError(f"ingest failed: {outcome['error']}")
                added += outcome["added"]
            ingest_seconds = time.perf_counter() - started
            re_ingest = dispatcher.handle(
                {
                    "cmd": "corpus-ingest",
                    "corpus": "bench",
                    "documents": documents[:chunk],
                }
            )

            # -- batch parse -----------------------------------------------
            started = time.perf_counter()
            parsed = dispatcher.handle(
                {"cmd": "corpus-parse", "corpus": "bench", "wait": True}
            )
            parse_seconds = time.perf_counter() - started
            job = parsed.get("job") or {}
            if job.get("state") != "done":
                raise RuntimeError(f"parse did not finish: {job}")
            status = dispatcher.handle(
                {"cmd": "corpus-status", "corpus": "bench"}
            )
            store = status["store"]

            # -- queries ---------------------------------------------------
            request = {
                "cmd": "corpus-query",
                "corpus": "bench",
                "kind": "match",
                "nonterminal": "B",
                "page": 0,
                "page_size": QUERY_PAGE_SIZE,
            }
            uncached: List[float] = []
            for _ in range(query_samples):
                begin = time.perf_counter()
                response = dispatcher.handle(dict(request, cache=False))
                uncached.append(time.perf_counter() - begin)
                if response.get("cache") is not False or "error" in response:
                    raise RuntimeError(f"uncached query went wrong: {response}")
            dispatcher.handle(dict(request))  # prime the read-through cache
            cached: List[float] = []
            for _ in range(query_samples):
                begin = time.perf_counter()
                response = dispatcher.handle(dict(request))
                cached.append(time.perf_counter() - begin)
                if response.get("cache") is not True or "error" in response:
                    raise RuntimeError(f"cached query went wrong: {response}")

            uncached_p50 = percentile(uncached, 0.50)
            cached_p50 = percentile(cached, 0.50)
            return {
                "documents": len(documents),
                "ingest": {
                    "added": added,
                    "seconds": round(ingest_seconds, 4),
                    "docs_per_second": round(
                        len(documents) / ingest_seconds, 1
                    ),
                    "re_ingest_added": re_ingest["added"],
                    "re_ingest_duplicates": re_ingest["duplicates"],
                },
                "parse": {
                    "seconds": round(parse_seconds, 4),
                    "docs_per_second": round(
                        len(documents) / parse_seconds, 1
                    ),
                    "accepted": job["accepted"],
                    "rejected": job["rejected"],
                },
                "store": {
                    "results": store["results"],
                    "puts": store["result_puts"],
                    "dedup_hits": store["dedup_hits"],
                    "dedup_ratio": round(store["dedup_ratio"], 4),
                },
                "query": {
                    "page_size": QUERY_PAGE_SIZE,
                    "samples": query_samples,
                    "uncached_p50_ms": round(uncached_p50 * 1000, 4),
                    "uncached_p99_ms": round(
                        percentile(uncached, 0.99) * 1000, 4
                    ),
                    "cached_p50_ms": round(cached_p50 * 1000, 4),
                    "cached_p99_ms": round(
                        percentile(cached, 0.99) * 1000, 4
                    ),
                    "cached_speedup_p50": round(
                        uncached_p50 / cached_p50 if cached_p50 else 0.0, 2
                    ),
                },
            }
        finally:
            dispatcher.close()


def check_floor(floor_path: str, result: Dict[str, Any]) -> List[str]:
    """Violation messages (empty = the gate passes)."""
    with open(floor_path) as handle:
        floor = json.load(handle)
    failures: List[str] = []
    if result["ingest"]["re_ingest_added"] != 0:
        failures.append(
            f"re-ingesting an already-ingested chunk added "
            f"{result['ingest']['re_ingest_added']} document(s) — ingest "
            f"is not idempotent"
        )
    minimum_ingest = floor.get("min_ingest_docs_per_second", 0.0)
    if result["ingest"]["docs_per_second"] < minimum_ingest:
        failures.append(
            f"ingest at {result['ingest']['docs_per_second']} docs/s below "
            f"absolute floor {minimum_ingest} (3x-slack sanity net)"
        )
    minimum_dedup = floor.get("min_dedup_ratio", 0.0)
    if result["store"]["dedup_ratio"] < minimum_dedup:
        failures.append(
            f"dedup ratio {result['store']['dedup_ratio']} below floor "
            f"{minimum_dedup} — hash-consing stopped sharing payloads"
        )
    minimum_speedup = floor.get("min_cached_speedup_p50", 0.0)
    if result["query"]["cached_speedup_p50"] < minimum_speedup:
        failures.append(
            f"cached query p50 only {result['query']['cached_speedup_p50']}x "
            f"faster than uncached, below floor {minimum_speedup}"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--accepted", type=int, default=ACCEPTED_DOCS, metavar="N",
        help=f"accepted documents to generate (default: {ACCEPTED_DOCS})",
    )
    parser.add_argument(
        "--rejected", type=int, default=REJECTED_DOCS, metavar="N",
        help=f"rejected documents to generate (default: {REJECTED_DOCS})",
    )
    parser.add_argument(
        "--query-samples", type=int, default=QUERY_SAMPLES, metavar="N",
        help=f"query latency samples per variant (default: {QUERY_SAMPLES})",
    )
    parser.add_argument(
        "--floor", metavar="PATH",
        help="enforce the committed floor file; non-zero exit on violation",
    )
    parser.add_argument(
        "--no-output", action="store_true",
        help=f"do not write {OUTPUT_PATH.name}",
    )
    parser.add_argument(
        "--table-cache", metavar="DIR",
        help="warm-start the corpus sessions from (and write back to) the "
        "persistent table store under DIR",
    )
    options = parser.parse_args(argv)

    print(
        f"corpus bench — {options.accepted}+{options.rejected} documents, "
        f"{options.query_samples} query samples per variant "
        f"({os.cpu_count()} cores)"
    )
    result = run_corpus(
        accepted=options.accepted,
        rejected=options.rejected,
        query_samples=options.query_samples,
        table_cache=options.table_cache,
    )
    report: Dict[str, Any] = {
        "bench": "corpus",
        "cpu_count": os.cpu_count(),
        "corpus": result,
    }
    print(
        f"  ingest {result['ingest']['docs_per_second']} docs/s "
        f"(re-ingest: {result['ingest']['re_ingest_duplicates']} duplicates, "
        f"{result['ingest']['re_ingest_added']} added)   parse "
        f"{result['parse']['docs_per_second']} docs/s"
    )
    print(
        f"  store: {result['store']['results']} results for "
        f"{result['documents']} documents "
        f"(dedup ratio {result['store']['dedup_ratio']})"
    )
    print(
        f"  query p50/p99: uncached {result['query']['uncached_p50_ms']}/"
        f"{result['query']['uncached_p99_ms']}ms, cached "
        f"{result['query']['cached_p50_ms']}/"
        f"{result['query']['cached_p99_ms']}ms "
        f"({result['query']['cached_speedup_p50']}x at p50)"
    )

    status = 0
    if options.floor:
        failures = check_floor(options.floor, result)
        report["floor"] = {"path": options.floor, "failures": failures}
        if failures:
            status = 1
            for failure in failures:
                print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
        else:
            print(f"floor check passed ({options.floor})")

    if not options.no_output:
        OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {OUTPUT_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
