#!/usr/bin/env python3
"""Hot-path benchmark: tokens/sec per control-plane tier.

Measures warm PAR-PARSE throughput for the lazy (seed-equivalent and
current), compiled, and dense-table controls on the §7 workloads, and
writes ``BENCH_parse_hotpath.json`` at the repo root so the perf
trajectory is tracked across PRs:

    PYTHONPATH=src python benchmarks/bench_parse_hotpath.py

CI smoke mode — booleans workload only, checked against the committed
floor (fails when any tier regresses more than 3x):

    PYTHONPATH=src python benchmarks/bench_parse_hotpath.py \\
        --workload booleans --floor benchmarks/hotpath_floor.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.bench.hotpath import (
        check_floor,
        collect_hotpath_report,
        render_hotpath,
    )
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.hotpath import (
        check_floor,
        collect_hotpath_report,
        render_hotpath,
    )

WORKLOAD_NAMES = ("sdf", "booleans")

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_parse_hotpath.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload",
        choices=[*WORKLOAD_NAMES, "all"],
        default="all",
        help="which §7 workload(s) to measure (default: all)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timed warm parses per tier"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--no-output", action="store_true", help="skip writing the JSON file"
    )
    parser.add_argument(
        "--floor",
        type=Path,
        default=None,
        help="floor JSON to check against (exit 1 on a >3x regression)",
    )
    parser.add_argument(
        "--table-cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="measure cold vs warm start against the persistent table "
        "store under DIR (adds a 'warm_start' section per workload; a "
        "second run against the same DIR reports written_states == 0)",
    )
    args = parser.parse_args(argv)

    names = list(WORKLOAD_NAMES) if args.workload == "all" else [args.workload]
    report = collect_hotpath_report(
        repeats=args.repeats,
        workload_names=names,
        table_cache=None if args.table_cache is None else str(args.table_cache),
    )

    for name in names:
        print(render_hotpath(report["workloads"][name]))
        warm = report["workloads"][name].get("warm_start")
        if warm is not None:
            print(
                f"  warm_start: {warm['saved_states']} states served, "
                f"{warm['written_states']} written, cold "
                f"{warm['cold_seconds'] * 1000:.1f}ms vs warm "
                f"{warm['warm_seconds'] * 1000:.1f}ms "
                f"({warm['speedup']:.2f}x)"
            )
        print()

    if not args.no_output:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.floor is not None:
        floor = json.loads(args.floor.read_text())
        workload_name = floor.get("workload", "booleans")
        measured = report["workloads"].get(workload_name)
        if measured is None:
            print(f"floor check: workload {workload_name!r} was not measured")
            return 1
        problems = check_floor(
            measured, floor, max_regression=floor.get("max_regression", 3.0)
        )
        # The warm-start rule may target a different workload than the
        # throughput floors (timing a 7-state grammar's restore is all
        # noise); check it against that workload's report when measured.
        warm_rule = floor.get("warm_start")
        warm_workload = (warm_rule or {}).get("workload")
        if warm_workload and warm_workload != workload_name:
            warm_measured = report["workloads"].get(warm_workload)
            if warm_measured is not None:
                problems += check_floor(
                    warm_measured, {"warm_start": warm_rule}
                )
        if problems:
            print("floor check: FAIL")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("floor check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
