"""Fault-tolerance bench: sustained traffic while a shard dies every second.

A supervised process-mode :class:`~repro.service.Scheduler` serves
concurrent client threads that mix mutations (``add-rule``) with parses,
while a chaos thread arms the ``kill-child`` fault point once per
``--kill-interval`` — so roughly one shard child is murdered per second
for the whole run.  Clients retry transient ``shard-restarting`` answers
with jittered backoff (:func:`repro.service.retry.call_with_retries`),
exactly like the shipped TCP client.

The report answers two questions:

* **Availability under fire** — what fraction of client requests still
  succeeded after retries, and how long did recoveries take (restart
  count, per-request latency percentiles)?
* **Durability** — after the dust settles, does every session's replayed
  grammar sit at the exact version its client last saw acknowledged?
  Any mismatch is *lost acknowledged state* and fails the floor
  unconditionally.

``--floor benchmarks/faults_floor.json`` turns the run into a CI gate:
zero acknowledged loss (always), a minimum post-retry success rate, and
a minimum kill count (so a too-short run cannot trivially pass).

Standalone (writes ``BENCH_service_faults.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_service_faults.py
    PYTHONPATH=src python benchmarks/bench_service_faults.py \\
        --floor benchmarks/faults_floor.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

try:
    from repro.service import Scheduler, faults
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.service import Scheduler, faults

from repro.service.retry import call_with_retries, is_retryable

GRAMMAR = "START ::= B\nB ::= true\nB ::= false\nB ::= B or B"

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service_faults.json"

DURATION_S = 8.0
KILL_INTERVAL_S = 1.0
WORKERS = 2
CLIENTS = 4
SESSIONS_PER_CLIENT = 2


def percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def run_chaos(
    duration_s: float = DURATION_S,
    kill_interval_s: float = KILL_INTERVAL_S,
    workers: int = WORKERS,
    clients: int = CLIENTS,
) -> Dict[str, Any]:
    """Drive retrying clients through a kill-storm; returns a result dict."""
    scheduler = Scheduler(
        workers=workers,
        mode="process",
        max_depth=4096,
        backoff_ms=10,
        max_backoff_ms=250,
        max_restarts=100_000,  # the bench measures recovery, not the breaker
        compact_threshold=8,
    )
    stop = threading.Event()
    acknowledged: Dict[str, int] = {}
    requests_by_client = [0] * clients
    failures_by_client = [0] * clients
    retried_by_client = [0] * clients
    latencies_by_client: List[List[float]] = [[] for _ in range(clients)]
    kills = 0
    try:
        warmup = scheduler.handle({"cmd": "info"})
        if "error" in warmup:
            raise RuntimeError(f"scheduler warm-up failed: {warmup['error']}")
        sessions = [
            [f"c{index}s{slot}" for slot in range(SESSIONS_PER_CLIENT)]
            for index in range(clients)
        ]
        for index in range(clients):
            for name in sessions[index]:
                response = call_with_retries(
                    scheduler.handle,
                    {"cmd": "open", "session": name, "grammar": GRAMMAR},
                    retries=10,
                )
                if "error" in response:
                    raise RuntimeError(f"open failed: {response}")
                acknowledged[name] = response["version"]

        def drive(index: int) -> None:
            step = 0
            while not stop.is_set():
                name = sessions[index][step % SESSIONS_PER_CLIENT]
                if step % 3 == 0:
                    request = {
                        "cmd": "add-rule",
                        "session": name,
                        "rule": f"B ::= w{index}x{step}",
                    }
                else:
                    request = {
                        "cmd": "parse",
                        "session": name,
                        "tokens": "true or false",
                    }
                started = time.perf_counter()
                response = scheduler.handle(request)
                if is_retryable(response):
                    retried_by_client[index] += 1
                    response = call_with_retries(
                        scheduler.handle, request, retries=12, base_ms=10
                    )
                latencies_by_client[index].append(time.perf_counter() - started)
                requests_by_client[index] += 1
                if "error" in response:
                    failures_by_client[index] += 1
                elif request["cmd"] == "add-rule":
                    acknowledged[name] = response["version"]
                step += 1

        def murder() -> None:
            nonlocal kills
            while not stop.wait(kill_interval_s):
                faults.arm("kill-child", times=1)
                kills += 1

        threads = [
            threading.Thread(target=drive, args=(index,)) for index in range(clients)
        ]
        chaos = threading.Thread(target=murder)
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        chaos.start()
        time.sleep(duration_s)
        stop.set()
        chaos.join()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        faults.reset()  # a still-armed kill must not hit verification

        # Let every shard finish any in-flight recovery before auditing.
        deadline = time.monotonic() + 30
        for shard in scheduler.shards:
            while shard.state != "ok" and time.monotonic() < deadline:
                time.sleep(0.02)

        # Durability audit: the replayed state must sit at the exact
        # version each client last saw acknowledged.
        lost: List[str] = []
        for name, version in sorted(acknowledged.items()):
            response = call_with_retries(
                scheduler.handle, {"cmd": "metrics", "session": name}, retries=10
            )
            if response.get("version") != version:
                lost.append(
                    f"{name}: acknowledged v{version}, replayed "
                    f"{response.get('version', response.get('error'))}"
                )
        health = scheduler.handle({"cmd": "health"})
        latencies = [value for chunk in latencies_by_client for value in chunk]
        total = sum(requests_by_client)
        failures = sum(failures_by_client)
        return {
            "duration_seconds": round(elapsed, 3),
            "workers": workers,
            "clients": clients,
            "sessions": len(acknowledged),
            "kills": kills,
            "restarts": health["restarts"],
            "healthy_after": health["healthy"],
            "requests": total,
            "retried": sum(retried_by_client),
            "failures_after_retries": failures,
            "success_rate": (total - failures) / total if total else 0.0,
            "requests_per_second": total / elapsed if elapsed else 0.0,
            "latency_p50_ms": round(percentile(latencies, 0.50) * 1000, 2),
            "latency_p99_ms": round(percentile(latencies, 0.99) * 1000, 2),
            "lost_acknowledged": lost,
            "compactions": sum(
                entry["journal"]["compactions"] for entry in health["shards"]
            ),
        }
    finally:
        faults.reset()
        scheduler.close()


def check_floor(floor_path: str, result: Dict[str, Any]) -> List[str]:
    """Violation messages (empty = the gate passes)."""
    with open(floor_path) as handle:
        floor = json.load(handle)
    failures: List[str] = []
    if result["lost_acknowledged"]:
        for item in result["lost_acknowledged"]:
            failures.append(f"acknowledged state lost: {item}")
    if not result["healthy_after"]:
        failures.append("scheduler not healthy after the kill-storm")
    if result["kills"] < floor.get("min_kills", 1):
        failures.append(
            f"only {result['kills']} kill(s) injected — run too short to "
            f"mean anything (need >= {floor.get('min_kills', 1)})"
        )
    minimum_rate = floor.get("min_success_rate", 0.9)
    if result["success_rate"] < minimum_rate:
        failures.append(
            f"post-retry success rate {result['success_rate']:.3f} below "
            f"floor {minimum_rate}"
        )
    minimum_rps = floor.get("min_requests_per_second", 0.0)
    if result["requests_per_second"] < minimum_rps:
        failures.append(
            f"{result['requests_per_second']:.1f} req/s under chaos below "
            f"absolute floor {minimum_rps} (3x-slack sanity net)"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=DURATION_S, metavar="SECONDS",
        help=f"kill-storm length (default: {DURATION_S:g}s)",
    )
    parser.add_argument(
        "--kill-interval", type=float, default=KILL_INTERVAL_S, metavar="SECONDS",
        help=f"seconds between shard kills (default: {KILL_INTERVAL_S:g})",
    )
    parser.add_argument(
        "--workers", type=int, default=WORKERS, metavar="N",
        help=f"process shards (default: {WORKERS})",
    )
    parser.add_argument(
        "--clients", type=int, default=CLIENTS, metavar="N",
        help=f"concurrent client threads (default: {CLIENTS})",
    )
    parser.add_argument(
        "--floor", metavar="PATH",
        help="enforce the committed floor file; non-zero exit on violation",
    )
    parser.add_argument(
        "--no-output", action="store_true",
        help=f"do not write {OUTPUT_PATH.name}",
    )
    options = parser.parse_args(argv)

    print(
        f"chaos bench — {options.clients} retrying clients vs "
        f"{options.workers} process shards, one kill per "
        f"{options.kill_interval:g}s for {options.duration:g}s "
        f"({os.cpu_count()} cores)"
    )
    result = run_chaos(
        duration_s=options.duration,
        kill_interval_s=options.kill_interval,
        workers=options.workers,
        clients=options.clients,
    )
    report: Dict[str, Any] = {
        "bench": "service_faults",
        "cpu_count": os.cpu_count(),
        "chaos": {
            key: round(value, 4) if isinstance(value, float) else value
            for key, value in result.items()
        },
    }
    print(
        f"  {result['requests']} requests in {result['duration_seconds']}s "
        f"({result['requests_per_second']:.1f} req/s)   kills "
        f"{result['kills']}   restarts {result['restarts']}"
    )
    print(
        f"  success rate {result['success_rate']:.1%}   latency p50 "
        f"{result['latency_p50_ms']}ms p99 {result['latency_p99_ms']}ms   "
        f"compactions {result['compactions']}"
    )
    print(
        f"  acknowledged-state audit: "
        f"{'CLEAN' if not result['lost_acknowledged'] else result['lost_acknowledged']}"
    )

    status = 0
    if options.floor:
        failures = check_floor(options.floor, result)
        report["floor"] = {"path": options.floor, "failures": failures}
        if failures:
            status = 1
            for failure in failures:
                print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
        else:
            print(f"floor check passed ({options.floor})")

    if not options.no_output:
        OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {OUTPUT_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
