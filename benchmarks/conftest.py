"""Shared fixtures for the benchmark suite.

Everything here is deliberately *session-scoped and read-only*: grammars
handed to systems under measurement are always fresh copies (generators
subscribe to their grammar, so sharing mutable grammars across benchmarks
would leak MODIFY notifications between measurements).
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import booleans_workload, sdf_workload
from repro.sdf.corpus import corpus_tokens, sdf_grammar


@pytest.fixture(scope="session")
def workload():
    """The paper's SDF workload (grammar factory + 4 inputs + edit)."""
    return sdf_workload()


@pytest.fixture(scope="session")
def toy_workload():
    return booleans_workload()


@pytest.fixture(scope="session")
def tokens():
    """Pre-tokenized corpus: input name -> terminal stream."""
    return corpus_tokens()


@pytest.fixture()
def fresh_sdf_grammar():
    """A fresh SDF grammar per test (safe to mutate/subscribe)."""
    return sdf_grammar()
