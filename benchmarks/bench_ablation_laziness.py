"""Ablation — §5.3: the cost of laziness, and why not to be lazier.

Two claims to quantify:

1. *"The overhead in time introduced by this lazy technique is small.
   ... Only the test in ACTION which determines the type of a given set of
   items takes some extra time."*  — measured as warm-parse time with the
   conventional control vs the lazy control over the *same, fully
   expanded* graph.

2. *"We considered making the lazy parser generator even more lazy ...
   only that part has to be expanded that is needed ...  However, the
   additional administrative overhead incurred ... turned out to be so
   large that no net gain in efficiency was to be expected."* — estimated
   by counting, over a corpus parse, how many distinct (state, symbol)
   pairs ACTION is asked for, relative to the number of transitions the
   full expansion computes: per-symbol laziness would save the difference
   but pay a closure-cache lookup on *every* ACTION call.
"""

from __future__ import annotations


from repro.core.lazy import LazyGenerator
from repro.core.metrics import ControlProbe
from repro.lr.generator import ConventionalGenerator
from repro.runtime.parallel import PoolParser


def test_action_conventional_control(benchmark, workload, tokens):
    """Warm parse through the conventional ACTION (no type test)."""
    grammar = workload.fresh_grammar()
    control = ConventionalGenerator(grammar).generate()
    parser = PoolParser(control, grammar)
    stream = tokens["SDF.sdf"]
    assert benchmark(lambda: parser.recognize(stream))


def test_action_lazy_control_warm(benchmark, workload, tokens):
    """Warm parse through the lazy ACTION (pays the §5.3 type test)."""
    grammar = workload.fresh_grammar()
    generator = LazyGenerator(grammar)
    generator.force()  # fully expanded: only the test overhead remains
    parser = PoolParser(generator.control(), grammar)
    stream = tokens["SDF.sdf"]
    assert benchmark(lambda: parser.recognize(stream))


def test_lazy_overhead_is_small(benchmark, workload, tokens):
    """The §5.3 claim quantified: overhead well under 2x."""
    import time

    grammar = workload.fresh_grammar()
    stream = tokens["SDF.sdf"]

    def measure():
        conventional = ConventionalGenerator(grammar).generate()
        lazy_generator = LazyGenerator(grammar)
        lazy_generator.force()
        lazy = lazy_generator.control()
        pool_conventional = PoolParser(conventional, grammar)
        pool_lazy = PoolParser(lazy, grammar)
        pool_conventional.recognize(stream)
        pool_lazy.recognize(stream)

        start = time.perf_counter()
        for _ in range(3):
            pool_conventional.recognize(stream)
        conventional_time = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(3):
            pool_lazy.recognize(stream)
        lazy_time = time.perf_counter() - start
        return conventional_time, lazy_time

    conventional_time, lazy_time = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    ratio = lazy_time / conventional_time
    benchmark.extra_info["overhead_ratio"] = round(ratio, 3)
    print(f"\nlazy ACTION overhead: {ratio:.2f}x the conventional ACTION")
    assert ratio < 2.0, f"§5.3 says the overhead is small; measured {ratio:.2f}x"


def test_per_symbol_laziness_estimate(benchmark, workload, tokens):
    """How much work would per-symbol expansion actually save?

    Counts distinct (state, symbol) ACTION queries during a corpus parse
    vs the total transition count of the states expanded — the fraction of
    per-state work a per-symbol-lazy expander could skip, against which
    §5.3 weighs its bookkeeping cost.
    """

    def measure():
        grammar = workload.fresh_grammar()
        generator = LazyGenerator(grammar)
        probe = ControlProbe(generator.control())
        parser = PoolParser(probe, grammar)
        queried = set()

        original_action = probe.control.action

        def counting_action(state, symbol):
            queried.add((id(state), symbol))
            return original_action(state, symbol)

        probe.control.action = counting_action  # type: ignore[assignment]
        assert parser.recognize(tokens["SDF.sdf"])
        graph = generator.graph
        transitions = sum(
            len(s.transitions) for s in graph.states() if s.is_complete
        )
        return len(queried), transitions

    queried, transitions = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["distinct_action_queries"] = queried
    benchmark.extra_info["transitions_computed"] = transitions
    print(
        f"\ndistinct ACTION queries: {queried}; transitions computed by "
        f"full-state expansion: {transitions} "
        f"(per-symbol laziness could save "
        f"{max(0.0, 1 - queried / max(transitions, 1)) * 100:.0f}% of "
        f"transition work, before its own bookkeeping)"
    )
