"""E8 — the comparison the paper wanted but could not run.

Section 7: *"A comparison of IPG with Earley's parsing algorithm would
have been appropriate here, because both systems recognize the same class
of context-free grammars.  As we did not have access to a good
implementation ... From a theoretical viewpoint, we expect Earley's
algorithm to have better generation performance, but a much inferior
parsing performance."*

We have both implementations, so we measure.  Asserted shape — exactly the
authors' prediction:

* generation: both are ≈ 0 (Earley has no generation phase at all; IPG
  only seeds the start state) — and both beat PG's full generation;
* parsing, warm: Earley is substantially slower than IPG on the corpus.
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.earley import EarleyParser
from repro.core.ipg import IPG

INPUTS = ("Exam.sdf", "SDF.sdf", "ASF.sdf")


@pytest.mark.parametrize("input_name", INPUTS)
def test_earley_parse(benchmark, workload, tokens, input_name):
    parser = EarleyParser(workload.fresh_grammar())
    stream = tokens[input_name]
    assert parser.recognize(stream)
    benchmark(lambda: parser.recognize(stream))
    benchmark.extra_info["chart_items"] = parser.last_chart_size


@pytest.mark.parametrize("input_name", INPUTS)
def test_ipg_parse_warm(benchmark, workload, tokens, input_name):
    ipg = IPG(workload.fresh_grammar())
    stream = tokens[input_name]
    assert ipg.parse(stream).accepted  # warm the lazy table
    benchmark(lambda: ipg.recognize(stream))


def test_prediction_holds(benchmark, workload, tokens):
    """The section-7 prediction, asserted on SDF.sdf."""
    stream = tokens["SDF.sdf"]

    def measure():
        earley = EarleyParser(workload.fresh_grammar())
        ipg = IPG(workload.fresh_grammar())
        ipg.recognize(stream)  # generation happens here (lazily)

        start = time.perf_counter()
        assert earley.recognize(stream)
        earley_time = time.perf_counter() - start

        start = time.perf_counter()
        assert ipg.recognize(stream)
        ipg_time = time.perf_counter() - start
        return earley_time, ipg_time

    earley_time, ipg_time = benchmark.pedantic(measure, rounds=3, iterations=1)
    benchmark.extra_info["earley_ms"] = round(earley_time * 1000, 2)
    benchmark.extra_info["ipg_warm_ms"] = round(ipg_time * 1000, 2)
    print()
    print(
        f"Earley {earley_time * 1000:.2f}ms vs IPG (warm) {ipg_time * 1000:.2f}ms "
        f"on SDF.sdf — ratio {earley_time / ipg_time:.1f}x"
    )
    assert earley_time > ipg_time, (
        "the paper predicted 'much inferior parsing performance' for Earley"
    )
