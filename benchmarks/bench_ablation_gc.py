"""Ablation — §6.2's garbage-collection dilemma, measured.

*"when all unreachable sets of items are removed immediately, it is likely
that too much is thrown away, but when everything is retained, we end up
with too much garbage in Itemsets."*

An editing session (add a rule, parse, delete it, parse, ...) is run
against three collector configurations:

* **gc off** — MODIFY makes states plain initial; nothing is ever
  reclaimed (the "retain everything" pole);
* **refcount gc** — dirty states + RE-EXPAND + DECR-REFCOUNT (the paper's
  compromise);
* **refcount + sweep** — additionally run the mark-and-sweep fallback
  after the session (reclaims orphaned cycles).

Asserted shape: live states(gc off) ≥ live states(refcount) ≥ live
states(sweep), with the gc-off graph accumulating garbage linearly in the
number of edits.
"""

from __future__ import annotations

import pytest

from repro.core.incremental import IncrementalGenerator
from repro.grammar.rules import Rule
from repro.grammar.symbols import NonTerminal, Terminal
from repro.runtime.parallel import PoolParser

ROUNDS = 12


def _edit_session(workload, gc: bool, sweep: bool) -> dict:
    grammar = workload.fresh_grammar()
    generator = IncrementalGenerator(grammar, gc=gc)
    parser = PoolParser(generator.control, grammar)
    tokens = workload.inputs["Exam.sdf"]
    assert parser.parse(tokens).accepted

    b = NonTerminal("CF-ELEM")
    for index in range(ROUNDS):
        rule = Rule(b, [Terminal(f"ghost-{index}")])
        generator.add_rule(rule)
        assert parser.parse(tokens).accepted
        generator.delete_rule(rule)
        assert parser.parse(tokens).accepted
    if sweep:
        generator.collect_garbage(force_sweep=True)
    graph = generator.graph
    return {
        "live_states": len(graph),
        "created": graph.stats.states_created,
        "removed": graph.stats.states_removed,
        "expansions": graph.stats.expansions,
    }


@pytest.mark.parametrize(
    "mode", ["gc_off", "refcount", "refcount_sweep"]
)
def test_edit_session(benchmark, workload, mode):
    gc = mode != "gc_off"
    sweep = mode == "refcount_sweep"
    stats = benchmark.pedantic(
        lambda: _edit_session(workload, gc=gc, sweep=sweep),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update(stats)


def test_gc_reclaims(benchmark, workload):
    """The shape assertion: each collector level retains no more states."""

    def run_all():
        return (
            _edit_session(workload, gc=False, sweep=False),
            _edit_session(workload, gc=True, sweep=False),
            _edit_session(workload, gc=True, sweep=True),
        )

    off, refcount, swept = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(f"gc off:          {off['live_states']} live states "
          f"({off['removed']} removed)")
    print(f"refcount:        {refcount['live_states']} live states "
          f"({refcount['removed']} removed)")
    print(f"refcount+sweep:  {swept['live_states']} live states "
          f"({swept['removed']} removed)")
    assert off["removed"] == 0, "without gc nothing is ever reclaimed"
    assert refcount["removed"] > 0, "refcounting should reclaim something"
    assert refcount["live_states"] <= off["live_states"]
    assert swept["live_states"] <= refcount["live_states"]
