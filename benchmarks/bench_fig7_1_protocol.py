"""E7 — Fig. 7.1: the paper's headline measurement.

For each system (Yacc-style LALR(1), PG, IPG) and each corpus input, run
the six-phase protocol: construct / parse / parse / modify / parse /
parse.  The whole-protocol benchmarks below give the statistically solid
totals; the report benchmark prints the full per-phase grid (the rows of
Fig. 7.1) and asserts the paper's qualitative shape:

* IPG construction ≈ 0 (no generation phase),
* IPG modification ≈ 0 (incremental MODIFY vs full reconstruction),
* IPG's first parse > second parse (the table is generated during it),
* Yacc's deterministic parser is the fastest *parser* (the paper: about
  twice as fast as the Tomita-style parsers of PG/IPG).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SYSTEMS, run_figure_7_1, run_protocol
from repro.bench.report import check_figure_7_1_shape, render_figure_7_1

INPUTS = ("exp.sdf", "Exam.sdf", "SDF.sdf", "ASF.sdf")


@pytest.mark.parametrize("system_name", ["yacc", "pg", "ipg"])
@pytest.mark.parametrize("input_name", INPUTS)
def test_protocol(benchmark, workload, system_name, input_name):
    """Whole six-phase protocol for one (system, input) cell."""

    def run():
        return run_protocol(SYSTEMS[system_name](), workload, input_name)

    result = benchmark(run)
    benchmark.extra_info.update(
        {f"phase_{phase}_ms": round(t * 1000, 3) for phase, t in result.times.items()}
    )
    benchmark.extra_info["system"] = system_name
    benchmark.extra_info["input"] = input_name


def test_figure_7_1_report(benchmark, workload):
    """Print the Fig. 7.1 grid and assert its shape holds."""

    def grid():
        return run_figure_7_1(workload, repeats=3)

    results = benchmark.pedantic(grid, rounds=1, iterations=1)
    print()
    print("Fig. 7.1 — construct/parse/parse/modify/parse/parse (this machine):")
    print(render_figure_7_1(results))
    problems = check_figure_7_1_shape(results)
    assert not problems, "\n".join(problems)


def test_lazy_generation_happens_in_first_parse(benchmark, workload):
    """The deterministic (noise-free) form of the parse1 > parse2 claim:
    table expansions happen during parse 1 and never during parse 2."""
    from repro.bench.harness import IPGSystem

    def counts():
        system = IPGSystem()
        grammar = workload.fresh_grammar()
        system.construct(grammar)
        graph = system.generator.graph
        after_construct = graph.stats.expansions
        tokens = workload.inputs["SDF.sdf"]
        assert system.parse(tokens)
        after_first = graph.stats.expansions
        assert system.parse(tokens)
        after_second = graph.stats.expansions
        return after_construct, after_first, after_second

    after_construct, after_first, after_second = benchmark.pedantic(
        counts, rounds=1, iterations=1
    )
    assert after_construct == 0, "construction must not expand anything"
    assert after_first > 0, "the first parse generates the table"
    assert after_second == after_first, "the second parse finds it warm"
