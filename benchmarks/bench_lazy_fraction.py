"""E5 — the §5.2 statistic: how much of the parse table is generated?

*"for a larger grammar like that of SDF only 60 percent of the parse table
had to be generated to parse the SDF definition of SDF itself"*.

The benchmark lazily parses each corpus input with a fresh IPG and reports
the fraction of the full LR(0) table that was actually expanded.  The
shape claims: the fraction is well below 1 for every input, grows with
input coverage, and — for SDF.sdf specifically — lands in the paper's
ballpark (we assert a generous 0.35–0.85 band around their 0.60; the exact
value depends on the reconstructed corpus).
"""

from __future__ import annotations

import pytest

from repro.core.ipg import IPG
from repro.core.metrics import table_fraction

INPUTS = ("exp.sdf", "Exam.sdf", "SDF.sdf", "ASF.sdf")


@pytest.mark.parametrize("input_name", INPUTS)
def test_lazy_fraction(benchmark, workload, tokens, input_name):
    stream = tokens[input_name]

    def parse_lazily():
        ipg = IPG(workload.fresh_grammar())
        assert ipg.parse(stream).accepted
        return ipg

    ipg = benchmark(parse_lazily)
    fraction = table_fraction(ipg.graph, ipg.grammar)
    benchmark.extra_info["table_fraction"] = round(fraction, 4)
    benchmark.extra_info["states_expanded"] = sum(
        1 for s in ipg.graph.states() if s.is_complete
    )
    assert fraction < 1.0, "laziness should never expand the whole table"
    if input_name == "SDF.sdf":
        assert 0.35 <= fraction <= 0.85, (
            f"SDF.sdf lazy fraction {fraction:.2f} far from the paper's ~0.60"
        )


def test_fraction_report(benchmark, workload, tokens):
    """Print the per-input fraction table (the §5.2 claim, quantified)."""

    def fractions():
        rows = []
        for input_name in INPUTS:
            ipg = IPG(workload.fresh_grammar())
            assert ipg.parse(tokens[input_name]).accepted
            rows.append((input_name, table_fraction(ipg.graph, ipg.grammar)))
        return rows

    rows = benchmark.pedantic(fractions, rounds=1, iterations=1)
    print()
    print("fraction of the full LR(0) table generated lazily (§5.2):")
    for input_name, fraction in rows:
        print(f"  {input_name:10s}  {fraction * 100:5.1f}%")
