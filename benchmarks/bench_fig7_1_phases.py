"""E7 (fine-grained) — the individual phases of Fig. 7.1.

Separate benchmarks per phase isolate the three claims the protocol-level
numbers aggregate:

* *construction*: Yacc's LALR(1) ≫ PG's LR(0) ≫ IPG's ≈ 0,
* *modification*: reconstruction (Yacc, PG) ≫ incremental MODIFY (IPG),
* *lazy warm-up*: IPG's first parse carries the generation cost, its
  second parse runs on the now-complete part of the table.

Phases that depend on earlier protocol state use ``benchmark.pedantic``
with a fresh setup per round, so no measurement sees a warmed cache it
should not.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SYSTEMS

INPUT = "SDF.sdf"


@pytest.mark.parametrize("system_name", ["yacc", "pg", "ipg"])
def test_construct(benchmark, workload, system_name):
    """Phase 1: table construction from a fresh grammar."""

    def setup():
        return (SYSTEMS[system_name](), workload.fresh_grammar()), {}

    def construct(system, grammar):
        system.construct(grammar)

    benchmark.pedantic(construct, setup=setup, rounds=10)
    benchmark.extra_info["system"] = system_name


@pytest.mark.parametrize("system_name", ["yacc", "pg", "ipg"])
def test_modify(benchmark, workload, system_name):
    """Phase 4: apply the grammar change (rebuild vs MODIFY)."""
    tokens = workload.inputs[INPUT]

    def setup():
        system = SYSTEMS[system_name]()
        grammar = workload.fresh_grammar()
        system.construct(grammar)
        system.parse(tokens)
        rule = workload.modification(grammar)
        return (system, rule), {}

    def modify(system, rule):
        system.modify(rule)

    benchmark.pedantic(modify, setup=setup, rounds=10)
    benchmark.extra_info["system"] = system_name


@pytest.mark.parametrize("which", ["first", "second"])
def test_ipg_lazy_parse(benchmark, workload, which):
    """IPG parse 1 (cold, generates the table) vs parse 2 (warm)."""
    tokens = workload.inputs[INPUT]

    def setup():
        system = SYSTEMS["ipg"]()
        system.construct(workload.fresh_grammar())
        if which == "second":
            system.parse(tokens)
        return (system,), {}

    def parse(system):
        assert system.parse(tokens)

    benchmark.pedantic(parse, setup=setup, rounds=10)
    benchmark.extra_info["which_parse"] = which
