"""Ablation — the Postscript trade-off: incremental LR(0) vs LALR(1).

*"We opted for a more efficient LR(0) table generation phase at the
expense of some loss in parsing efficiency for non-LR(0) languages (but
without restricting the class of acceptable grammars in any way)"* —
versus Horspool's incremental LALR(1), which pays in generation
complexity for deterministic parsing.

Measured here on the SDF grammar:

* table generation: LR(0) < SLR(1) < LALR(1) (lookahead computation is
  the expensive part — the very part that resists incrementality);
* parsing: the deterministic LALR parser beats the LR(0)+GLR combination
  (the paper's "Yacc ... about twice as fast"), because LR(0) reduce
  states fork the parallel parser on every terminal.
"""

from __future__ import annotations


from repro.lr.generator import ConventionalGenerator
from repro.lr.graph import ItemSetGraph
from repro.lr.lalr import lalr_table
from repro.lr.slr import slr_table
from repro.lr.table import TableControl, resolve_conflicts
from repro.runtime.lr_parse import SimpleLRParser
from repro.runtime.parallel import PoolParser


def test_generate_lr0(benchmark, workload):
    grammar = workload.fresh_grammar()

    def generate():
        graph = ItemSetGraph(grammar)
        graph.expand_all()
        return graph

    graph = benchmark(generate)
    benchmark.extra_info["states"] = len(graph)


def test_generate_slr(benchmark, workload):
    grammar = workload.fresh_grammar()
    table = benchmark(lambda: slr_table(grammar))
    benchmark.extra_info["states"] = len(table)


def test_generate_lalr(benchmark, workload):
    grammar = workload.fresh_grammar()
    table = benchmark(lambda: lalr_table(grammar))
    benchmark.extra_info["states"] = len(table)
    benchmark.extra_info["conflicts"] = len(table.conflicts())


def test_parse_lr0_glr(benchmark, workload, tokens):
    """LR(0) tables + parallel parser (the IPG/PG runtime)."""
    grammar = workload.fresh_grammar()
    control = ConventionalGenerator(grammar).generate()
    parser = PoolParser(control, grammar)
    stream = tokens["ASF.sdf"]
    result = benchmark(lambda: parser.parse(stream))
    assert result.accepted
    benchmark.extra_info["forks"] = result.stats.forks


def test_parse_lalr_deterministic(benchmark, workload, tokens):
    """LALR(1) table + simple LR parser (the Yacc runtime)."""
    grammar = workload.fresh_grammar()
    table, _ = resolve_conflicts(lalr_table(grammar))
    parser = SimpleLRParser(TableControl(table), grammar)
    stream = tokens["ASF.sdf"]
    result = benchmark(lambda: parser.parse(stream))
    assert result.accepted


def test_tradeoff_shape(benchmark, workload, tokens):
    """Both halves of the Postscript claim, asserted together."""
    import time

    grammar = workload.fresh_grammar()
    stream = tokens["SDF.sdf"]

    def measure():
        start = time.perf_counter()
        graph = ItemSetGraph(grammar)
        graph.expand_all()
        lr0_generation = time.perf_counter() - start

        start = time.perf_counter()
        table = lalr_table(grammar)
        lalr_generation = time.perf_counter() - start

        pool = PoolParser(ConventionalGenerator(grammar).generate(), grammar)
        det = SimpleLRParser(
            TableControl(resolve_conflicts(table)[0]), grammar
        )
        pool.parse(stream)  # warm
        start = time.perf_counter()
        pool.parse(stream)
        glr_parse = time.perf_counter() - start
        start = time.perf_counter()
        det.parse(stream)
        det_parse = time.perf_counter() - start
        return lr0_generation, lalr_generation, glr_parse, det_parse

    lr0_gen, lalr_gen, glr_parse, det_parse = benchmark.pedantic(
        measure, rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        {
            "lr0_gen_ms": round(lr0_gen * 1000, 2),
            "lalr_gen_ms": round(lalr_gen * 1000, 2),
            "glr_parse_ms": round(glr_parse * 1000, 2),
            "det_parse_ms": round(det_parse * 1000, 2),
        }
    )
    assert lr0_gen < lalr_gen, "LR(0) generation should be the cheap pole"
    assert det_parse < glr_parse, (
        "deterministic LALR parsing should beat LR(0)+GLR (the paper's 2x)"
    )
