"""ISG benches — the scanner-generator analog of the parser measurements.

[HKR87a]'s lazy/incremental scanner generator is part of the paper's
system (section 1: the editor's parsing component is ISG/IPG, generated on
the fly).  Mirroring the parser benches:

* *lazy generation*: scanning a corpus file materializes only part of the
  full DFA (the scanner's §5.2 fraction);
* *incremental modification*: changing one token definition invalidates a
  subset of DFA states, and rescanning restores only what is needed;
* *throughput*: warm scanning of the corpus, and equivalence with the
  hand-written bootstrap lexer.
"""

from __future__ import annotations

import pytest

from repro.lexing import scanner_from_sdf
from repro.lexing.regex import literal
from repro.sdf.corpus import CORPUS
from repro.sdf.corpus import sdf_definition
from repro.sdf.lexer import tokenize


@pytest.mark.parametrize("name", list(CORPUS))
def test_scan_corpus(benchmark, name):
    scanner = scanner_from_sdf(sdf_definition())
    text = CORPUS[name]
    lexemes = benchmark(lambda: scanner.scan(text))
    assert len(lexemes) == len(tokenize(text))
    benchmark.extra_info.update(scanner.stats())


def test_lazy_dfa_fraction(benchmark):
    """Scanning one file only materializes part of the full DFA."""

    def scan_once():
        scanner = scanner_from_sdf(sdf_definition())
        scanner.scan(CORPUS["exp.sdf"])
        return scanner

    scanner = benchmark.pedantic(scan_once, rounds=1, iterations=1)
    fraction = scanner.dfa.fraction_of_full()
    benchmark.extra_info["dfa_fraction"] = round(fraction, 4)
    print(f"\nlazy DFA after exp.sdf: {fraction * 100:.1f}% of the full DFA")
    assert fraction < 1.0


def test_incremental_invalidation(benchmark):
    """Modify one definition; only part of the DFA is re-derived."""

    def session():
        scanner = scanner_from_sdf(sdf_definition())
        scanner.scan(CORPUS["SDF.sdf"])
        before = scanner.dfa.materialized_states
        scanner.add_token("lit:)?", literal(")?"))  # the §7 modification!
        after_invalidate = scanner.dfa.materialized_states
        scanner.scan(CORPUS["SDF.sdf"])
        after_rescan = scanner.dfa.materialized_states
        return before, after_invalidate, after_rescan

    before, after_invalidate, after_rescan = benchmark.pedantic(
        session, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "states_before": before,
            "states_after_invalidate": after_invalidate,
            "states_after_rescan": after_rescan,
        }
    )
    print(
        f"\nDFA states: {before} -> {after_invalidate} (invalidate) "
        f"-> {after_rescan} (rescan)"
    )
    assert after_invalidate <= before, "invalidation never grows the DFA"
