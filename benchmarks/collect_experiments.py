#!/usr/bin/env python3
"""Collect every paper-vs-measured number for EXPERIMENTS.md in one run.

Not a pytest bench — a plain script whose output is pasted into
EXPERIMENTS.md (and re-runnable by anyone questioning those numbers):

    python benchmarks/collect_experiments.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.baselines.earley import EarleyParser
from repro.bench.harness import run_figure_7_1
from repro.bench.hotpath import collect_hotpath_report, render_hotpath
from repro.bench.report import (
    capability_matrix,
    check_figure_7_1_shape,
    render_capability_matrix,
    render_figure_7_1,
)
from repro.bench.workloads import sdf_workload
from repro.core.ipg import IPG
from repro.core.metrics import table_fraction
from repro.lexing import scanner_from_sdf
from repro.sdf.corpus import CORPUS, corpus_tokens, sdf_definition

REPO_ROOT = Path(__file__).resolve().parent.parent
HOTPATH_JSON = REPO_ROOT / "BENCH_parse_hotpath.json"


def main() -> None:
    workload = sdf_workload()
    tokens = corpus_tokens()

    print("=" * 72)
    print("E7 / Fig. 7.1 — the six-phase protocol (min of 3 repeats)")
    print("=" * 72)
    results = run_figure_7_1(workload, repeats=3)
    print(render_figure_7_1(results))
    problems = check_figure_7_1_shape(results)
    print("shape check:", "PASS" if not problems else problems)

    print()
    print("=" * 72)
    print("E5 / §5.2 — fraction of the full LR(0) table generated lazily")
    print("=" * 72)
    for name, stream in tokens.items():
        ipg = IPG(workload.fresh_grammar())
        assert ipg.parse(stream).accepted
        fraction = table_fraction(ipg.graph, ipg.grammar)
        print(f"  {name:10s} {fraction * 100:5.1f}%   (paper: ~60% for SDF.sdf)")

    print()
    print("=" * 72)
    print("E1 / Fig. 2.1 — measured capability matrix")
    print("=" * 72)
    rows, baseline = capability_matrix(scale=400)
    print(render_capability_matrix(rows, baseline))
    print(f"  ('fast' baseline: deterministic LALR on ASF.sdf, "
          f"{baseline * 1000:.2f} ms)")
    for name, row in rows.items():
        if row.parse_seconds is not None:
            print(f"  {name:26s} parse {row.parse_seconds * 1000:8.2f} ms")

    print()
    print("=" * 72)
    print("E8 / §7 — Earley vs IPG (the comparison the authors skipped)")
    print("=" * 72)
    stream = tokens["SDF.sdf"]
    earley = EarleyParser(workload.fresh_grammar())
    ipg = IPG(workload.fresh_grammar())
    ipg.recognize(stream)  # lazy generation happens here
    best_earley = min(
        _timed(lambda: earley.recognize(stream)) for _ in range(3)
    )
    best_ipg = min(_timed(lambda: ipg.recognize(stream)) for _ in range(3))
    print(f"  Earley parse of SDF.sdf:    {best_earley * 1000:8.2f} ms")
    print(f"  IPG (warm) parse of SDF.sdf:{best_ipg * 1000:8.2f} ms")
    print(f"  ratio: {best_earley / best_ipg:.1f}x "
          f"(paper predicted 'much inferior parsing performance')")

    print()
    print("=" * 72)
    print("Hot path — tokens/sec per control-plane tier (lazy → compiled → table)")
    print("=" * 72)
    hotpath = collect_hotpath_report(repeats=5)
    for report in hotpath["workloads"].values():
        print(render_hotpath(report))
        print()
    HOTPATH_JSON.write_text(json.dumps(hotpath, indent=2) + "\n")
    print(f"  wrote {HOTPATH_JSON} (tracked across PRs)")

    print()
    print("=" * 72)
    print("ISG — lazy scanner statistics on the corpus")
    print("=" * 72)
    scanner = scanner_from_sdf(sdf_definition())
    for name, text in CORPUS.items():
        scanner.scan(text)
    stats = scanner.stats()
    print(f"  after scanning all four files: {stats}")
    print(f"  lazy DFA fraction of full: "
          f"{scanner.dfa.fraction_of_full() * 100:.1f}%")


def _timed(thunk) -> float:
    start = time.perf_counter()
    assert thunk()
    return time.perf_counter() - start


if __name__ == "__main__":
    main()
