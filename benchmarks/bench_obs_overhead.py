#!/usr/bin/env python3
"""Telemetry overhead benchmark: the cost of repro.obs on the parse path.

Times the same warm recognition workload with telemetry stripped (call
sites monkeypatched to no-ops), disabled (the shipped default: counters
on, spans off) and enabled (process-wide tracing), and writes
``BENCH_obs_overhead.json`` at the repo root — including the §5.2
laziness numbers (states materialized vs the full table):

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

CI gate mode — fails when the disabled path costs more than the floor
file's ``obs_overhead.max_disabled_overhead`` fraction (default 2%):

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \\
        --floor benchmarks/hotpath_floor.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.bench.obs_overhead import (
        check_overhead,
        measure_obs_overhead,
        render_obs_overhead,
    )
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.obs_overhead import (
        check_overhead,
        measure_obs_overhead,
        render_obs_overhead,
    )

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_obs_overhead.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=7, help="interleaved timing rounds"
    )
    parser.add_argument(
        "--inner", type=int, default=5, help="recognitions timed per sample"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--no-output", action="store_true", help="skip writing the JSON file"
    )
    parser.add_argument(
        "--floor",
        type=Path,
        default=None,
        help="floor JSON holding the obs_overhead gate (exit 1 on breach)",
    )
    args = parser.parse_args(argv)

    report = measure_obs_overhead(rounds=args.rounds, inner=args.inner)
    print(render_obs_overhead(report))

    if not args.no_output:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.floor is not None:
        floor = json.loads(args.floor.read_text())
        problems = check_overhead(report, floor)
        if problems:
            print("overhead gate: FAIL")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("overhead gate: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
