#!/usr/bin/env python3
"""Incremental re-parsing benchmark: edit-size × input-size grid.

Measures ``IncrementalParser.reparse`` against a full re-parse of the
spliced input (compiled-control PoolParser, the production hot path) over
the SDF corpus, and writes ``BENCH_incremental.json`` at the repo root so
the incremental-parsing trajectory is tracked across PRs:

    PYTHONPATH=src python benchmarks/bench_incremental.py

CI mode — checked against the committed floor (same-run incremental/full
speedup ratios plus absolute ceilings at 3x slack):

    PYTHONPATH=src python benchmarks/bench_incremental.py \\
        --floor benchmarks/incremental_floor.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:
    from repro.bench.incremental import (
        check_floor,
        collect_incremental_report,
        render_incremental,
    )
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench.incremental import (
        check_floor,
        collect_incremental_report,
        render_incremental,
    )

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_incremental.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--repeats", type=int, default=7, help="timed warm runs per cell"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--no-output", action="store_true", help="skip writing the JSON file"
    )
    parser.add_argument(
        "--floor",
        type=Path,
        default=None,
        help="floor JSON to check against (exit 1 on a regression)",
    )
    args = parser.parse_args(argv)

    report = collect_incremental_report(repeats=args.repeats)
    print(render_incremental(report))

    if not args.no_output:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.floor is not None:
        floor = json.loads(args.floor.read_text())
        problems = check_floor(
            report, floor, max_regression=floor.get("max_regression", 3.0)
        )
        if problems:
            print("floor check: FAIL")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("floor check: PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
