#!/usr/bin/env bash
# Download one artifact from the last successful CI run on main.
#
#   fetch_prev_bench.sh <artifact-name> <dest-dir>
#
# Used by the bench-trend CI steps: the artifact's BENCH_*.json lands in
# <dest-dir> for benchmarks/bench_trend.py to diff against the current
# run.  Every "nothing to fetch" condition (first run on a repo, no
# successful main run yet, unauthenticated gh on a fork PR, artifact
# expired) exits 0 — the trend step must never fail a build over missing
# history — but each one also lands a visible note in the job summary via
# skip(), so an empty trend table is explained instead of silent.
# Requires GH_TOKEN (the workflow passes the built-in github.token).
set -uo pipefail

artifact_name="${1:?usage: fetch_prev_bench.sh <artifact-name> <dest-dir>}"
dest="${2:?usage: fetch_prev_bench.sh <artifact-name> <dest-dir>}"
repo="${GITHUB_REPOSITORY:-}"

# Note the reason on stdout (the job log) AND in $GITHUB_STEP_SUMMARY
# (the PR-facing summary) when it is set, then exit 0.
skip() {
  echo "no previous bench available: $1"
  if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    echo "no previous bench available: $1" >> "$GITHUB_STEP_SUMMARY"
  fi
  exit 0
}

if [ -z "$repo" ]; then
  skip "GITHUB_REPOSITORY unset — not running in CI"
fi

# On fork PRs the built-in token can lack API access, and gh then fails
# every call; surface that as the reason instead of the generic "no run"
# note its empty output would otherwise produce.
if ! gh auth status >/dev/null 2>&1 && [ -z "${GH_TOKEN:-}" ]; then
  skip "gh is not authenticated (fork PR without a usable GH_TOKEN?)"
fi

run_id=$(gh api \
  "repos/$repo/actions/workflows/ci.yml/runs?branch=main&status=success&per_page=1" \
  --jq '.workflow_runs[0].id' 2>/dev/null)
if [ -z "${run_id:-}" ] || [ "$run_id" = "null" ]; then
  skip "no successful main CI run to compare against (or the runs API call failed)"
fi

artifact_id=$(gh api "repos/$repo/actions/runs/$run_id/artifacts" \
  --jq ".artifacts[] | select(.name == \"$artifact_name\" and .expired == false) | .id" \
  2>/dev/null | head -n 1)
if [ -z "${artifact_id:-}" ]; then
  skip "run $run_id has no (unexpired) artifact named '$artifact_name'"
fi

mkdir -p "$dest"
if ! gh api "repos/$repo/actions/artifacts/$artifact_id/zip" \
    > "$dest/$artifact_name.zip" 2>/dev/null; then
  skip "download of artifact $artifact_id failed"
fi
if ! unzip -o -q -d "$dest" "$dest/$artifact_name.zip"; then
  skip "artifact $artifact_id did not unzip cleanly"
fi
echo "fetched '$artifact_name' from main run $run_id into $dest"
