#!/usr/bin/env bash
# Download one artifact from the last successful CI run on main.
#
#   fetch_prev_bench.sh <artifact-name> <dest-dir>
#
# Used by the bench-trend CI steps: the artifact's BENCH_*.json lands in
# <dest-dir> for benchmarks/bench_trend.py to diff against the current
# run.  Every "nothing to fetch" condition (first run on a repo, no
# successful main run yet, artifact expired) exits 0 with a note — the
# trend step must never fail a build over missing history.  Requires
# GH_TOKEN (the workflow passes the built-in github.token).
set -uo pipefail

artifact_name="${1:?usage: fetch_prev_bench.sh <artifact-name> <dest-dir>}"
dest="${2:?usage: fetch_prev_bench.sh <artifact-name> <dest-dir>}"
repo="${GITHUB_REPOSITORY:-}"

if [ -z "$repo" ]; then
  echo "GITHUB_REPOSITORY unset — not running in CI, nothing to fetch"
  exit 0
fi

run_id=$(gh api \
  "repos/$repo/actions/workflows/ci.yml/runs?branch=main&status=success&per_page=1" \
  --jq '.workflow_runs[0].id' 2>/dev/null)
if [ -z "${run_id:-}" ] || [ "$run_id" = "null" ]; then
  echo "no successful main CI run to compare against"
  exit 0
fi

artifact_id=$(gh api "repos/$repo/actions/runs/$run_id/artifacts" \
  --jq ".artifacts[] | select(.name == \"$artifact_name\" and .expired == false) | .id" \
  2>/dev/null | head -n 1)
if [ -z "${artifact_id:-}" ]; then
  echo "run $run_id has no (unexpired) artifact named '$artifact_name'"
  exit 0
fi

mkdir -p "$dest"
if ! gh api "repos/$repo/actions/artifacts/$artifact_id/zip" \
    > "$dest/$artifact_name.zip" 2>/dev/null; then
  echo "download of artifact $artifact_id failed — skipping trend"
  exit 0
fi
unzip -o -q -d "$dest" "$dest/$artifact_name.zip" || exit 0
echo "fetched '$artifact_name' from main run $run_id into $dest"
