"""Ablation — the paper's simplified pool parser vs Tomita's merged GSS.

Section 3.2 presents "a simplified version of Tomita's (pseudo-)parallel
LR parsing algorithm": one linear stack per parser, no merging.  Tomita's
full algorithm (and Rekers' implementation the authors actually used)
merges parsers that reach the same state into a graph-structured stack.

This bench quantifies what the simplification costs: on ambiguous inputs
the pool of linear stacks grows with the number of *parses* (Catalan
numbers here), while the GSS frontier is bounded by the number of parser
*states*.  On unambiguous inputs the two are comparable — which is why the
simplification is fine for the paper's SDF measurements.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import ambiguous_expression_grammar, ambiguous_sentence
from repro.lr.generator import ConventionalGenerator
from repro.runtime.gss import GSSParser
from repro.runtime.parallel import PoolParser

OPERATORS = (4, 8, 12)


def _control(grammar):
    return ConventionalGenerator(grammar).generate()


@pytest.mark.parametrize("operators", OPERATORS)
def test_pool_recognize_ambiguous(benchmark, operators):
    grammar = ambiguous_expression_grammar()
    parser = PoolParser(_control(grammar), grammar)
    tokens = ambiguous_sentence(operators)
    assert benchmark(lambda: parser.recognize(tokens))


@pytest.mark.parametrize("operators", OPERATORS)
def test_gss_recognize_ambiguous(benchmark, operators):
    grammar = ambiguous_expression_grammar()
    parser = GSSParser(_control(grammar))
    tokens = ambiguous_sentence(operators)
    assert benchmark(lambda: parser.recognize(tokens))
    benchmark.extra_info.update(parser.last_stats)


def test_gss_scales_past_pool(benchmark):
    """At 40 operators the pool is hopeless; the GSS shrugs."""
    grammar = ambiguous_expression_grammar()
    parser = GSSParser(_control(grammar))
    tokens = ambiguous_sentence(40)
    assert benchmark(lambda: parser.recognize(tokens))
    benchmark.extra_info.update(parser.last_stats)


def test_unambiguous_inputs_comparable(benchmark, workload, tokens):
    """On the (unambiguous) SDF corpus the pool parser is not the problem."""
    grammar = workload.fresh_grammar()
    pool = PoolParser(_control(grammar), grammar)
    gss = GSSParser(_control(workload.fresh_grammar()))
    stream = tokens["SDF.sdf"]

    import time

    def both():
        start = time.perf_counter()
        assert pool.recognize(stream)
        pool_time = time.perf_counter() - start
        start = time.perf_counter()
        assert gss.recognize(stream)
        gss_time = time.perf_counter() - start
        return pool_time, gss_time

    pool_time, gss_time = benchmark.pedantic(both, rounds=3, iterations=1)
    benchmark.extra_info["pool_ms"] = round(pool_time * 1000, 2)
    benchmark.extra_info["gss_ms"] = round(gss_time * 1000, 2)
    # Same order of magnitude: neither should be 20x the other.
    ratio = max(pool_time, gss_time) / max(min(pool_time, gss_time), 1e-9)
    assert ratio < 20, f"pool vs GSS ratio {ratio:.1f}x on unambiguous input"
