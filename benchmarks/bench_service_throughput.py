"""Service throughput: N sessions × M interleaved edit/parse requests.

Two measurement modes:

**Dispatcher mode** (the PR 1 claim): one single-threaded
:class:`~repro.service.Dispatcher` serving the interleaved workload, with
a cache-disabled run alongside so the result cache's contribution stays
visible.

**Concurrent mode** (the PR 4 claim): the same workload split across
concurrent client threads driving a sharded
:class:`~repro.service.Scheduler` — the engine behind
``repro serve --tcp`` — at 1 worker and at N workers.  Parse work is
pure-Python CPU, so the scaling comes from **process** shards (each shard
is a ``repro serve`` child owning its sessions outright); the headline
number is the N-worker / 1-worker throughput ratio *measured in the same
run on the same machine*.

``--floor benchmarks/service_floor.json`` turns the run into a CI gate:
the same-run ratio must clear a floor (scaled down when the runner has
fewer cores than workers — a 1-core container cannot exhibit a 4-way
speedup, and pretending otherwise would just make the gate meaningless
noise), and absolute requests/sec floors with ~3× slack catch gross
regressions that machine-independent ratios cannot.

Run under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py

or standalone (writes ``BENCH_service_throughput.json`` at the repo
root)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \\
        --floor benchmarks/service_floor.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

try:
    from repro.service import Dispatcher, Scheduler
except ImportError:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.service import Dispatcher, Scheduler

from repro.bench.workloads import service_requests
from repro.service.retry import call_with_retries, is_retryable

try:
    import pytest
except ImportError:  # standalone invocation needs no pytest
    pytest = None

SESSIONS = 20
REQUESTS_PER_SESSION = 30

#: Concurrent-mode workload (slightly smaller: it runs once per worker
#: count and the ratio, not the absolute size, is the headline).
CONCURRENT_SESSIONS = 16
CONCURRENT_REQUESTS = 25
CLIENTS = 8

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service_throughput.json"


def run_workload(requests, cache_capacity: int = 4096, table_cache=None):
    """Serve ``requests`` on a fresh dispatcher; returns a result dict."""
    dispatcher = Dispatcher(cache_capacity=cache_capacity, table_cache=table_cache)
    started = time.perf_counter()
    errors = 0
    for request in requests:
        response = dispatcher.handle(request)
        errors += "error" in response
    elapsed = time.perf_counter() - started
    stats = dispatcher.workspace.cache.stats
    return {
        "requests": len(requests),
        "errors": errors,
        "seconds": elapsed,
        "requests_per_second": len(requests) / elapsed if elapsed else 0.0,
        "cache_hit_rate": stats.hit_rate,
        "cache_hits": stats.hits,
        "cache_lookups": stats.lookups,
    }


# -- the concurrent-clients mode -------------------------------------------


def _partition_by_client(
    requests: List[Dict[str, Any]], clients: int
) -> List[List[Dict[str, Any]]]:
    """Split the stream into per-client slices along session lines.

    Each session's requests stay with one client **in order** (a real
    editor session is one connection), so per-session request ordering is
    identical to the sequential run; sessions are dealt round-robin to
    clients.  Requests without a session (the trailing global ``metrics``)
    are dropped here — the driver issues its own after timing.
    """
    session_order: List[str] = []
    by_session: Dict[str, List[Dict[str, Any]]] = {}
    for request in requests:
        session = request.get("session")
        if session is None:
            continue
        if session not in by_session:
            session_order.append(session)
            by_session[session] = []
        by_session[session].append(request)
    slices: List[List[Dict[str, Any]]] = [[] for _ in range(clients)]
    for index, session in enumerate(session_order):
        slices[index % clients].extend(by_session[session])
    return [chunk for chunk in slices if chunk]


def run_concurrent(
    requests: List[Dict[str, Any]],
    workers: int,
    clients: int = CLIENTS,
    mode: str = "process",
    cache_capacity: int = 4096,
    table_cache: Optional[str] = None,
) -> Dict[str, Any]:
    """Concurrent clients driving a sharded scheduler; returns a result dict.

    Every client thread is a synchronous caller (one request in flight at
    a time, like a blocking socket client); concurrency comes from having
    ``clients`` of them against ``workers`` shards.
    """
    slices = _partition_by_client(requests, clients)
    total = sum(len(chunk) for chunk in slices)
    scheduler = Scheduler(
        workers=workers,
        mode=mode,
        max_depth=4096,
        cache_capacity=cache_capacity,
        table_cache=table_cache,
    )
    try:
        # Warm-up: make every shard (and child process) answer once so
        # startup cost stays out of the throughput window.
        warmup = scheduler.handle({"cmd": "info"})
        if "error" in warmup:
            raise RuntimeError(f"scheduler warm-up failed: {warmup['error']}")
        errors_by_client = [0] * len(slices)
        retried_by_client = [0] * len(slices)

        def drive(client_index: int, chunk: List[Dict[str, Any]]) -> None:
            for request in chunk:
                # Real clients retry transient conditions (overloaded,
                # shard-restarting) with jittered backoff; the bench
                # clients do the same so a momentary queue spike is
                # back-pressure, not a counted failure.
                response = scheduler.handle(request)
                if is_retryable(response):
                    retried_by_client[client_index] += 1
                    response = call_with_retries(scheduler.handle, request)
                errors_by_client[client_index] += "error" in response

        threads = [
            threading.Thread(target=drive, args=(index, chunk))
            for index, chunk in enumerate(slices)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        metrics = scheduler.handle({"cmd": "metrics"})
        shard_metrics = metrics.get("scheduler", {})
        cache = metrics.get("cache", {})
        return {
            "workers": workers,
            "mode": mode,
            "clients": len(slices),
            "requests": total,
            "errors": sum(errors_by_client),
            "retried": sum(retried_by_client),
            "seconds": elapsed,
            "requests_per_second": total / elapsed if elapsed else 0.0,
            "cache_hit_rate": cache.get("hit_rate", 0.0),
            "coalesced": shard_metrics.get("coalesced", 0),
            "overloaded": shard_metrics.get("overloaded", 0),
            "generation": metrics.get("generation", {}),
        }
    finally:
        scheduler.close()


# -- floors ----------------------------------------------------------------


def effective_ratio_floor(floor: Dict[str, Any], cpu_count: int) -> float:
    """The ratio this machine must clear.

    ``min_ratio`` is what a runner with at least ``workers`` cores owes
    (the CI gate); machines with fewer cores cannot produce that speedup,
    so the demand degrades to ``ratio_per_core × cores``, never below
    ``single_core_ratio`` — on a 1-core box the check only asserts that
    sharding is not catastrophically slower than one worker.
    """
    scaled = floor.get("ratio_per_core", 0.6) * cpu_count
    return min(
        floor.get("min_ratio", 1.5),
        max(floor.get("single_core_ratio", 0.5), scaled),
    )


def check_floor(
    floor_path: str,
    concurrent: Dict[int, Dict[str, Any]],
    ratio: Optional[float],
) -> List[str]:
    """Violation messages (empty = the gate passes)."""
    with open(floor_path) as handle:
        floor = json.load(handle)
    failures: List[str] = []
    cpu_count = os.cpu_count() or 1
    for result in concurrent.values():
        if result["errors"]:
            failures.append(
                f"{result['errors']} request(s) errored at "
                f"workers={result['workers']}"
            )
    needed_ratio = effective_ratio_floor(floor, cpu_count)
    if ratio is None:
        failures.append("no ratio measured (need 2 worker counts)")
    elif ratio < needed_ratio:
        failures.append(
            f"throughput ratio {ratio:.2f} below floor {needed_ratio:.2f} "
            f"(committed {floor.get('min_ratio')}, scaled for "
            f"{cpu_count} cores)"
        )
    for key, minimum in floor.get("min_requests_per_second", {}).items():
        workers = int(key)
        result = concurrent.get(workers)
        if result is None:
            failures.append(f"no measurement for workers={workers}")
        elif result["requests_per_second"] < minimum:
            failures.append(
                f"workers={workers}: {result['requests_per_second']:.1f} "
                f"req/s below absolute floor {minimum} "
                f"(3x-slack sanity net)"
            )
    return failures


# -- pytest-benchmark hooks ------------------------------------------------


if pytest is not None:

    @pytest.fixture(scope="module")
    def traffic():
        return service_requests(
            sessions=SESSIONS, requests_per_session=REQUESTS_PER_SESSION, seed=0
        )

    @pytest.mark.parametrize(
        "cache_capacity", [4096, 1], ids=["cached", "uncached"]
    )
    def test_service_throughput(benchmark, traffic, cache_capacity):
        result = benchmark.pedantic(
            run_workload, args=(traffic, cache_capacity), rounds=3, iterations=1
        )
        assert result["errors"] == 0
        benchmark.extra_info.update(
            {
                "sessions": SESSIONS,
                "requests": result["requests"],
                "requests_per_second": round(result["requests_per_second"], 1),
                "cache_hit_rate": round(result["cache_hit_rate"], 4),
            }
        )
        if cache_capacity > 1:
            # The pool repeats sentences, so a real cache must actually hit.
            assert result["cache_hit_rate"] > 0.2


# -- standalone ------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        default="1,4",
        metavar="N,M",
        help="comma-separated worker counts for the concurrent mode "
        "(default: 1,4; the last/first pair defines the ratio)",
    )
    parser.add_argument(
        "--clients", type=int, default=CLIENTS, metavar="N",
        help=f"concurrent client threads (default: {CLIENTS})",
    )
    parser.add_argument(
        "--mode", choices=("process", "thread"), default="process",
        help="shard flavour for the concurrent mode (default: process)",
    )
    parser.add_argument(
        "--skip-dispatcher", action="store_true",
        help="skip the single-threaded dispatcher baseline modes",
    )
    parser.add_argument(
        "--floor", metavar="PATH",
        help="enforce the committed floor file; non-zero exit on violation",
    )
    parser.add_argument(
        "--no-output", action="store_true",
        help=f"do not write {OUTPUT_PATH.name}",
    )
    parser.add_argument(
        "--table-cache", metavar="DIR",
        help="warm-start every shard/session from (and write back to) the "
        "persistent table store under DIR; the report then carries the "
        "aggregated generation.saved_states counter",
    )
    options = parser.parse_args(argv)
    worker_counts = sorted({int(n) for n in options.workers.split(",") if n})

    report: Dict[str, Any] = {
        "bench": "service_throughput",
        "cpu_count": os.cpu_count(),
        "dispatcher": {},
        "concurrent": {},
    }

    if not options.skip_dispatcher:
        requests = service_requests(
            sessions=SESSIONS, requests_per_session=REQUESTS_PER_SESSION, seed=0
        )
        print(
            f"dispatcher mode — {SESSIONS} sessions × "
            f"{REQUESTS_PER_SESSION} interleaved edit/parse requests "
            f"({len(requests)} requests total)"
        )
        for label, capacity in (("cached", 4096), ("uncached", 1)):
            result = run_workload(
                requests,
                cache_capacity=capacity,
                table_cache=options.table_cache,
            )
            report["dispatcher"][label] = {
                key: round(value, 4) if isinstance(value, float) else value
                for key, value in result.items()
            }
            print(
                f"  {label:8s}: {result['requests_per_second']:>8.1f} req/s   "
                f"cache hit rate {result['cache_hit_rate']:.1%} "
                f"({result['cache_hits']}/{result['cache_lookups']})   "
                f"errors {result['errors']}"
            )

    concurrent_traffic = service_requests(
        sessions=CONCURRENT_SESSIONS,
        requests_per_session=CONCURRENT_REQUESTS,
        seed=1,
    )
    print(
        f"concurrent mode — {CONCURRENT_SESSIONS} sessions × "
        f"{CONCURRENT_REQUESTS} requests over {options.clients} client "
        f"threads, {options.mode} shards ({os.cpu_count()} cores)"
    )
    by_workers: Dict[int, Dict[str, Any]] = {}
    for workers in worker_counts:
        result = run_concurrent(
            concurrent_traffic,
            workers=workers,
            clients=options.clients,
            mode=options.mode,
            table_cache=options.table_cache,
        )
        by_workers[workers] = result
        report["concurrent"][str(workers)] = {
            key: round(value, 4) if isinstance(value, float) else value
            for key, value in result.items()
        }
        print(
            f"  workers={workers}: {result['requests_per_second']:>8.1f} req/s"
            f"   errors {result['errors']}   coalesced {result['coalesced']}"
            f"   overloaded {result['overloaded']}"
        )

    ratio: Optional[float] = None
    if len(worker_counts) >= 2:
        low, high = worker_counts[0], worker_counts[-1]
        base = by_workers[low]["requests_per_second"]
        if base:
            ratio = by_workers[high]["requests_per_second"] / base
            report["ratio"] = {
                "workers": [low, high],
                "value": round(ratio, 4),
            }
            print(f"  ratio   : {high}-worker / {low}-worker = {ratio:.2f}x")

    status = 0
    if options.floor:
        failures = check_floor(options.floor, by_workers, ratio)
        report["floor"] = {
            "path": options.floor,
            "failures": failures,
        }
        if failures:
            status = 1
            for failure in failures:
                print(f"FLOOR VIOLATION: {failure}", file=sys.stderr)
        else:
            print(f"floor check passed ({options.floor})")

    if not options.no_output:
        OUTPUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {OUTPUT_PATH}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
