"""E1 — Fig. 2.1: the algorithm-capability comparison, measured.

The paper's matrix rates seven algorithm families on four requirements
(powerful / fast / flexible / modular).  Instead of asserting the table,
this bench *measures* it: ambiguity and left-recursion probes for
"powerful", a timing ratio against the deterministic LALR parser for
"fast", the cost of a grammar edit relative to reconstruction for
"flexible", and a composition probe for "modular".

Asserted shape (the cells the paper's argument rests on):

* IPG is the only row with marks in *all four* columns;
* LR/LALR and LL have no "powerful" and no "flexible" marks;
* Earley has no trouble with power/flexibility but loses "fast" to the
  table-driven parsers on large inputs;
* Tomita is powerful and fast but not flexible (conventional tables).
"""

from __future__ import annotations

import pytest

from repro.bench.report import capability_matrix, render_capability_matrix

SCALE = 400  # ~800-token timing input; big enough to separate asymptotics


def test_capability_matrix(benchmark):
    rows, baseline = benchmark.pedantic(
        lambda: capability_matrix(scale=SCALE), rounds=1, iterations=1
    )
    print()
    print(f"Fig. 2.1 (measured, scale={SCALE}):")
    print(render_capability_matrix(rows, baseline))

    marks = {name: row.marks(baseline) for name, row in rows.items()}

    # IPG: the only all-four row.
    assert marks["IPG"]["powerful"] == "++"
    assert marks["IPG"]["fast"] != ""
    assert marks["IPG"]["flexible"] != ""
    assert marks["IPG"]["modular"] != ""

    # Deterministic-table rows: fast but neither powerful nor flexible.
    for name in ("LR(k), LALR(k)", "recursive descent, LL(k)"):
        assert marks[name]["powerful"] == ""
        assert marks[name]["fast"] == "++"
        assert marks[name]["flexible"] == ""

    # Earley: powerful and flexible; strictly the slowest table-free
    # parser.  (The paper leaves its "fast" cell blank; in Python the
    # interpreter constant compresses the gap, so the robust form of the
    # claim is relative: Earley is materially slower than every
    # table-driven row.)
    assert marks["Earley"]["powerful"] == "++"
    assert marks["Earley"]["flexible"] == "++"
    earley_seconds = rows["Earley"].parse_seconds
    assert earley_seconds is not None
    assert earley_seconds > 3 * baseline, (
        f"Earley ({earley_seconds:.4f}s) should be well behind the "
        f"deterministic LALR parser ({baseline:.4f}s)"
    )
    ipg_seconds = rows["IPG"].parse_seconds
    assert ipg_seconds is not None and earley_seconds > ipg_seconds

    # Tomita: powerful + fast, no flexibility marks.
    assert marks["Tomita"]["powerful"] == "++"
    assert marks["Tomita"]["flexible"] == ""


@pytest.mark.parametrize("row", ["Earley", "IPG"])
def test_parse_time_probe(benchmark, row):
    """The raw timing probe behind the "fast" column, benchmarked."""
    from repro.baselines.earley import EarleyParser
    from repro.bench.report import UNAMBIGUOUS, _expression_input
    from repro.core.ipg import IPG
    from repro.grammar.builders import grammar_from_text

    grammar = grammar_from_text(UNAMBIGUOUS)
    tokens = _expression_input(SCALE)
    if row == "Earley":
        parser = EarleyParser(grammar)
        benchmark(lambda: parser.recognize(tokens))
    else:
        ipg = IPG(grammar)
        ipg.parse(tokens)  # warm the lazy table first
        benchmark(lambda: ipg.recognize(tokens))
