"""Ablation — §3.2's stack-sharing implementation note.

*"It is important ... that the implementation of the copy operation for
parsers is such that the parse stacks become different objects which share
the states on them."*

Two measurements:

* the micro-cost: forking a depth-N stack is O(1) with cons cells and
  O(N) with flat-list copying — the crossover is immediate;
* the macro-effect: on an ambiguous input the pool parser's forks share
  almost all of their cells (quantified with ``shared_cells``), so peak
  memory scales with *distinct* stack suffixes, not with parser count.
"""

from __future__ import annotations


from repro.bench.workloads import ambiguous_expression_grammar, ambiguous_sentence
from repro.core.ipg import IPG
from repro.runtime.stacks import StackCell, shared_cells

DEPTH = 4096


def _deep_stack(depth: int) -> StackCell:
    stack = StackCell(0)
    for state in range(1, depth):
        stack = stack.push(state)
    return stack


def test_fork_shared(benchmark):
    """O(1) fork: copying the paper's way (share the cons chain)."""
    stack = _deep_stack(DEPTH)
    forked = benchmark(lambda: stack.push(DEPTH))
    assert shared_cells(stack, forked) == DEPTH


def test_fork_copying(benchmark):
    """O(N) fork: the naive flat-list alternative (the ablated design)."""
    stack = list(range(DEPTH))

    def fork():
        copy = stack[:]  # what 'copy(parser)' would cost without sharing
        copy.append(DEPTH)
        return copy

    forked = benchmark(fork)
    assert len(forked) == DEPTH + 1


def test_sharing_in_ambiguous_parse(benchmark):
    """Forks during a real ambiguous parse share their stack tails."""
    grammar = ambiguous_expression_grammar()
    tokens = ambiguous_sentence(8)  # Catalan(8) = 1430 parses

    def parse():
        ipg = IPG(grammar.copy())
        return ipg.parse(tokens)

    result = benchmark(parse)
    assert result.accepted
    assert len(result.trees) == 1430
    benchmark.extra_info["trees"] = len(result.trees)
    benchmark.extra_info["max_live_parsers"] = result.stats.max_live_parsers
    benchmark.extra_info["forks"] = result.stats.forks
