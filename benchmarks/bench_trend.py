#!/usr/bin/env python3
"""Render a markdown delta table between two BENCH_*.json reports.

CI uses this to make the bench trajectory visible per commit: the
previous successful main run's artifact (fetched by
``benchmarks/fetch_prev_bench.sh``) is compared against the current
run's report, and the table lands in the job summary.

    python benchmarks/bench_trend.py prev/BENCH_x.json BENCH_x.json \\
        --label "parse hotpath"

Missing or unreadable *previous* data is not an error — the tool prints a
note and exits 0, so the very first run (and artifact-expiry gaps) never
fail the job.  A missing *current* report is an error: the bench that was
supposed to produce it did not run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, Tuple

#: Leaves whose deltas are noise, not signal (workload-shape constants).
SKIP_KEYS = {"repeats", "time", "position", "edit_size", "converged_at", "tokens"}


def numeric_leaves(data: Any, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Every ``dotted.path -> number`` in a nested JSON structure."""
    if isinstance(data, dict):
        for key, value in sorted(data.items()):
            if key in SKIP_KEYS:
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from numeric_leaves(value, path)
    elif isinstance(data, bool):
        return
    elif isinstance(data, (int, float)):
        yield prefix, float(data)


def delta_table(
    previous: Dict[str, Any], current: Dict[str, Any], label: str
) -> str:
    """A GitHub-flavoured markdown table of shared numeric leaves."""
    old = dict(numeric_leaves(previous))
    new = dict(numeric_leaves(current))
    shared = [path for path in new if path in old]
    lines = [
        f"### Bench trend: {label}",
        "",
        "| metric | previous (main) | current | delta |",
        "|---|---:|---:|---:|",
    ]
    rows = 0
    for path in shared:
        before, after = old[path], new[path]
        if before == 0:
            delta = "n/a" if after else "0%"
        else:
            delta = f"{(after - before) / before * 100:+.1f}%"
        lines.append(f"| `{path}` | {before:,.4g} | {after:,.4g} | {delta} |")
        rows += 1
    appeared = sorted(set(new) - set(old))
    for path in appeared:
        lines.append(f"| `{path}` | — | {new[path]:,.4g} | new |")
    if not rows and not appeared:
        lines.append("| _no comparable metrics_ | | | |")
    return "\n".join(lines)


def laziness_footer(current: Dict[str, Any]) -> str:
    """The §5.2 headline when the report carries a ``laziness`` section.

    Reports produced by ``bench_obs_overhead.py`` (and anything else that
    samples the obs registry's lazy-generation gauges) record how much of
    the full LR table was ever materialized — the paper's measure of what
    laziness saves.  Empty string when the section is absent.
    """
    laziness = current.get("laziness")
    if not isinstance(laziness, dict):
        return ""
    materialized = laziness.get("states_materialized")
    full = laziness.get("full_table_states")
    if not isinstance(materialized, (int, float)) or not isinstance(
        full, (int, float)
    ):
        return ""
    fraction = laziness.get("table_fraction")
    if not isinstance(fraction, (int, float)):
        fraction = materialized / full if full else 0.0
    return (
        f"\n**Laziness (§5.2):** {materialized:,.0f} of {full:,.0f} LR "
        f"states materialized — {fraction:.1%} of the full table."
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous", type=Path, help="last main run's report")
    parser.add_argument("current", type=Path, help="this run's report")
    parser.add_argument(
        "--label", default=None, help="heading label (default: file name)"
    )
    args = parser.parse_args(argv)

    label = args.label if args.label is not None else args.current.name
    if not args.current.exists():
        print(f"error: current report {args.current} is missing", file=sys.stderr)
        return 1
    current = json.loads(args.current.read_text())
    footer = laziness_footer(current)
    if not args.previous.exists():
        print(f"### Bench trend: {label}\n\n_no previous main-run artifact "
              f"to compare against (first run, or artifact expired)_" + footer)
        return 0
    try:
        previous = json.loads(args.previous.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"### Bench trend: {label}\n\n_previous report unreadable: "
              f"{error}_" + footer)
        return 0
    print(delta_table(previous, current, label) + footer)
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # `... | head` should not stack-trace
        raise SystemExit(0)
