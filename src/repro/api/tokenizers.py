"""Tokenizers: the lexical half of a :class:`~repro.api.language.Language`.

The paper's system is ISG *and* IPG — the scanner generator and the parser
generator are two halves of one incremental front end.  A tokenizer binds
them: it turns raw source text into a stream of
:class:`~repro.lexing.scanner.Lexeme` (each with its character offset, for
diagnostics) and maps every lexeme onto the
:class:`~repro.grammar.symbols.Terminal` the parser sees.

Three implementations cover the repo's scenarios:

* :class:`WhitespaceTokenizer` — the historical ``IPG.parse`` convention
  (whitespace-separated terminal names), now with real offsets;
* :class:`ScannerTokenizer` via :meth:`ScannerTokenizer.from_sdf` — the
  ISG scanner compiled from an SDF definition's lexical syntax, so
  ``Language.from_sdf(text).parse(raw)`` runs end to end;
* :class:`ScannerTokenizer` via :meth:`ScannerTokenizer.from_grammar` —
  an ISG scanner whose token sorts are the grammar's own terminal
  literals, *kept in sync with grammar edits* through
  :meth:`Grammar.subscribe` — ADD-RULE of a rule mentioning a new keyword
  makes that keyword scannable immediately, the live-language scenario of
  section 1 transposed to scanning.
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import Terminal
from ..lexing.chars import CharSet
from ..lexing.regex import Sym, literal, plus
from ..lexing.scanner import Lexeme, ScanError, Scanner
from ..lexing.sdf_bridge import scanner_from_sdf
from ..sdf.ast import SdfDefinition

__all__ = [
    "Tokenizer",
    "WhitespaceTokenizer",
    "ScannerTokenizer",
    "ScanError",
]

#: Sort-name prefix the SDF bridge gives literal tokens; a ``lit:`` lexeme's
#: terminal is its spelled text, any other lexeme's terminal is its sort.
LITERAL_PREFIX = "lit:"


class Tokenizer:
    """Text → lexeme stream → terminal stream (the lexical protocol)."""

    #: registry-style identifier, shown by the CLI ``lexer`` command
    name = "abstract"

    def tokenize(self, text: str) -> List[Lexeme]:
        """Scan ``text`` completely; raises :class:`ScanError` on garbage."""
        raise NotImplementedError

    def terminal_of(self, lexeme: Lexeme) -> Terminal:
        """The grammar terminal a lexeme denotes."""
        raise NotImplementedError

    def terminals(self, text: str) -> List[Terminal]:
        """Convenience: ``tokenize`` + ``terminal_of`` in one call."""
        return [self.terminal_of(lexeme) for lexeme in self.tokenize(text)]

    def describe(self) -> str:
        return self.name


class WhitespaceTokenizer(Tokenizer):
    """Split on whitespace; every run of non-blank characters is a token.

    This is the tokenizer the classic ``IPG.parse("true and true")``
    convention implies, upgraded to carry character offsets so rejected
    parses can still point at a line and column.  An empty (or blank)
    text is simply the empty sentence — with a real tokenizer there is no
    ambiguity between "no input" and "empty program".
    """

    name = "whitespace"
    _WORD = re.compile(r"\S+")

    def tokenize(self, text: str) -> List[Lexeme]:
        return [
            Lexeme(match.group(), match.group(), match.start())
            for match in self._WORD.finditer(text)
        ]

    def terminal_of(self, lexeme: Lexeme) -> Terminal:
        return Terminal(lexeme.text)

    def describe(self) -> str:
        return "whitespace (each blank-separated word is one terminal)"


def _lexeme_terminal(lexeme: Lexeme) -> Terminal:
    if lexeme.sort.startswith(LITERAL_PREFIX):
        return Terminal(lexeme.sort[len(LITERAL_PREFIX):])
    return Terminal(lexeme.sort)


#: The default layout definition of scanner-backed tokenizers: blanks,
#: tabs, newlines and carriage returns, skipped silently.
_LAYOUT_CHARS = CharSet(" \t\n\r")


class ScannerTokenizer(Tokenizer):
    """A tokenizer backed by the lazy & incremental ISG scanner."""

    name = "scanner"

    def __init__(
        self,
        scanner: Scanner,
        description: Optional[str] = None,
    ) -> None:
        self.scanner = scanner
        self._description = description or "ISG scanner"
        self._unsubscribe: Optional[Callable[[], None]] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_sdf(cls, definition: SdfDefinition) -> "ScannerTokenizer":
        """The scanner of an SDF definition's lexical syntax (Appendix B).

        A definition that declares no layout sorts (``exp.sdf`` has no
        lexical section at all) gets implicit whitespace layout — raw
        text with blanks must still be scannable.
        """
        scanner = scanner_from_sdf(definition)
        if not scanner.layout_sorts:
            scanner.add_token("implicit-layout", plus(Sym(_LAYOUT_CHARS)), layout=True)
        return cls(
            scanner,
            description=f"ISG scanner from SDF module {definition.name!r}",
        )

    @classmethod
    def from_grammar(
        cls,
        grammar: Grammar,
        follow_edits: bool = True,
    ) -> "ScannerTokenizer":
        """A literal scanner over the grammar's own terminals.

        Every terminal of ``grammar`` becomes a literal token sort, with
        whitespace as layout, so punctuation needs no surrounding blanks:
        a grammar with terminals ``(``, ``)``, ``n``, ``+`` scans
        ``"(n+n)"`` directly.  With ``follow_edits`` the scanner observes
        the grammar: rules added or deleted at runtime add or remove
        literal definitions incrementally (ISG's MODIFY next to IPG's).
        """
        scanner = Scanner()
        scanner.add_token("LAYOUT", plus(Sym(_LAYOUT_CHARS)), layout=True)
        tokenizer = cls(
            scanner,
            description="ISG scanner over the grammar's terminal literals",
        )
        for terminal in sorted(grammar.terminals):
            tokenizer._add_literal(terminal.name)
        if follow_edits:
            tokenizer._unsubscribe = grammar.subscribe(tokenizer._on_modify)
        return tokenizer

    # -- the incremental half ---------------------------------------------

    def _add_literal(self, text: str) -> None:
        self.scanner.add_token(LITERAL_PREFIX + text, literal(text))

    def _on_modify(self, grammar: Grammar, rule: Rule, added: bool) -> None:
        """Keep the literal sorts equal to the grammar's terminal set."""
        del rule, added
        wanted = {LITERAL_PREFIX + t.name for t in grammar.terminals}
        have = {s for s in self.scanner.sorts if s.startswith(LITERAL_PREFIX)}
        for sort in sorted(wanted - have):
            self._add_literal(sort[len(LITERAL_PREFIX):])
        for sort in sorted(have - wanted):
            self.scanner.remove_token(sort)

    def close(self) -> None:
        """Detach from the observed grammar, if any."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- the protocol ------------------------------------------------------

    def tokenize(self, text: str) -> List[Lexeme]:
        return self.scanner.scan(text)

    def terminal_of(self, lexeme: Lexeme) -> Terminal:
        return _lexeme_terminal(lexeme)

    def describe(self) -> str:
        return self._description
