"""The Engine protocol and registry: one uniform way to drive every parser.

The repo grew four parsing runtimes (the paper's parallel pool, its
compiled-control variant, dense-table LR(0), the graph-structured-stack
recognizer) plus the Earley baseline — and until now the service, the CLI,
the benches and the tests each hand-wired their favourite.  An
:class:`Engine` packages one runtime behind ``recognize`` / ``parse`` /
``invalidate``; the registry makes them discoverable
(:func:`engines`) and selectable per call (``Language.parse(...,
engine="gss")``).

Engines are constructed against a :class:`~repro.api.language.Language`
and share its incremental infrastructure: the ``lazy`` and ``compiled``
engines run over the *same* item-set graph (so laziness and MODIFY behave
exactly as in the paper), ``gss`` runs full GLR with shared packed
forests over the same compiled control, while ``dense`` snapshots the
grammar into a frozen LR(0) table that ``invalidate`` throws away on
every edit — the conventional-generator trade-off, deliberately preserved
for comparison.  ``earley`` reads the live grammar and needs no tables at
all.

Each engine declares its capabilities (``supports_trees``,
``supports_ambiguity``, ``supports_reparse``); asking a recognizer-only
engine for trees raises :class:`~repro.runtime.errors.CapabilityError`
instead of silently answering with an empty forest.

Every engine reports rejections through the same death-site protocol:
:func:`expected_terminals` probes the ACTION row of each state the run
died in, which is where the diagnostics layer gets its *expected set*.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type, Union

from ..baselines.earley import EarleyParser
from ..grammar.symbols import END, Terminal
from ..lr.actions import Accept, Reduce, Shift
from ..lr.table import TableControl, lr0_table
from ..runtime.errors import CapabilityError
from ..runtime.forest import ParseForest
from ..runtime.gss import GSSParser
from ..runtime.incremental import Edit, IncrementalOutcome, IncrementalParser
from ..runtime.parallel import ParseFailure, ParseResult, PoolParser
from ..runtime.stacks import StackCell
from .diagnostics import expected_names

__all__ = [
    "Engine",
    "EngineReport",
    "engines",
    "engine_descriptions",
    "create_engine",
    "register_engine",
    "expected_terminals",
]


class EngineReport:
    """Normalized result every engine returns from ``recognize``/``parse``.

    ``forest`` is a :class:`~repro.runtime.forest.ParseForest` handle over
    the derivations of an accepting *parse* (``None`` for recognition,
    rejections, and tree-less engines) — never an eagerly materialized
    tree list.  ``failure`` is ``None`` on acceptance; otherwise
    ``(token_index, expected_terminal_names)`` with the index counting
    input tokens (== input length when the input ended too early).
    ``incremental`` carries the opaque checkpoint handle when the call
    went through the incremental layer (``parse_incremental``/
    ``reparse``), and ``reuse`` its reuse accounting — both ``None`` on
    ordinary parses.
    """

    __slots__ = ("accepted", "forest", "stats", "failure", "incremental", "reuse")

    def __init__(
        self,
        accepted: bool,
        forest: Optional[ParseForest] = None,
        stats: Optional[Dict[str, int]] = None,
        failure: Optional[Tuple[int, Tuple[str, ...]]] = None,
        incremental: Optional[Any] = None,
        reuse: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.accepted = accepted
        self.forest = forest
        self.stats = stats
        self.failure = failure
        self.incremental = incremental
        self.reuse = reuse

    def __repr__(self) -> str:
        return f"EngineReport(accepted={self.accepted}, forest={self.forest!r})"


def _sweep_states(control: Any, failure: ParseFailure) -> List[Any]:
    """Every state the fatal sweep visited (or could have visited).

    Replays PAR-PARSE's reduce closure from the sweep-start stacks.
    LR(0) reduce actions are lookahead-independent — a reduce fires on
    *every* terminal — so the chain explored on the failing symbol is the
    chain any other lookahead would explore, and the union of visited
    states therefore covers every configuration from which some terminal
    could have been shifted.  The replay only re-treads reductions the
    dying sweep already performed, so on a lazy control every state it
    touches is already expanded (and ``action`` would expand it anyway).
    """
    visited: List[Any] = []
    visited_ids: set = set()
    seen_stacks: set = set()
    work = list(failure.stacks)
    budget = 100_000  # cyclic grammars raise before ever producing a failure
    while work and budget:
        budget -= 1
        stack = work.pop()
        if stack in seen_stacks:
            continue
        seen_stacks.add(stack)
        state = stack.state
        if id(state) not in visited_ids:
            visited_ids.add(id(state))
            visited.append(state)
        for action in control.action(state, failure.symbol):
            if isinstance(action, Reduce):
                below, _children = stack.pop(len(action.rule.rhs))
                goto_state = control.goto(below.state, action.rule.lhs)
                work.append(StackCell(goto_state, below, None))
    for state in failure.states:
        if id(state) not in visited_ids:
            visited_ids.add(id(state))
            visited.append(state)
    return visited


def expected_terminals(
    control: Any,
    failure: ParseFailure,
    terminals: Sequence[Terminal],
) -> Tuple[str, ...]:
    """The viable continuation set at a :class:`ParseFailure`.

    For every state the fatal sweep visited (sweep-start stacks plus
    their replayed reduce closure — see :func:`_sweep_states`), a
    terminal with a *shift* action there would have let some parser make
    progress; an *accept* reachable on the end-marker makes ``$`` (end of
    input) expected.  Reduce cells deliberately do not count: LR(0)
    reduces fire on every terminal, and the state the reduce leads to is
    itself part of the replayed closure.  Works against any control
    (graph-backed, compiled, dense table): they all answer ``action``.
    """
    states = _sweep_states(control, failure)
    expected: List[Terminal] = []
    seen = set()
    for state in states:
        for terminal in terminals:
            if terminal in seen:
                continue
            if any(
                isinstance(action, Shift)
                for action in control.action(state, terminal)
            ):
                seen.add(terminal)
                expected.append(terminal)
        if END not in seen and any(
            isinstance(action, Accept)
            for action in control.action(state, END)
        ):
            seen.add(END)
            expected.append(END)
    return expected_names(expected)


class Engine:
    """One parsing runtime behind the uniform protocol.

    Subclasses are constructed with the owning
    :class:`~repro.api.language.Language` and read their infrastructure
    (grammar, generator, compiled control) from it.
    """

    #: registry key, e.g. ``"lazy"``
    name = "abstract"
    #: one-line description for ``repro.api.engine_descriptions()``
    summary = ""
    #: whether ``parse`` builds derivation forests; on engines that leave
    #: this False, ``parse`` raises
    #: :class:`~repro.runtime.errors.CapabilityError` — use ``recognize``
    supports_trees = True
    #: whether the engine can report derivation counts / enumerate
    #: ambiguous derivations (implies ``supports_trees``)
    supports_ambiguity = True
    #: whether ``reparse`` actually reuses checkpoints; engines that leave
    #: this False still answer ``reparse`` correctly (full re-parse of the
    #: spliced input — the correct-by-construction fallback)
    supports_reparse = False

    def __init__(self, language: Any) -> None:
        self.language = language

    @property
    def provides_trees(self) -> bool:
        """Deprecated alias of :attr:`supports_trees`."""
        return self.supports_trees

    # -- the protocol ------------------------------------------------------

    def recognize(self, terminals: Sequence[Terminal]) -> EngineReport:
        raise NotImplementedError

    def parse(self, terminals: Sequence[Terminal]) -> EngineReport:
        raise NotImplementedError

    def parse_incremental(
        self, terminals: Sequence[Terminal], build_trees: bool = True
    ) -> EngineReport:
        """A parse whose report carries a checkpoint handle for ``reparse``.

        The default (non-incremental engines) is an ordinary parse with no
        handle — a later ``reparse`` against it simply re-parses in full.
        """
        return self.parse(terminals) if build_trees else self.recognize(terminals)

    def reparse(
        self,
        base: Optional[Any],
        edit: Edit,
        spliced: Sequence[Terminal],
        build_trees: bool = True,
    ) -> EngineReport:
        """Parse ``spliced`` (= the edited input), reusing ``base`` if able.

        ``base`` is the ``incremental`` handle of a previous report from
        this engine (or ``None``).  The default implementation is the
        correct-by-construction fallback: a full parse of the spliced
        token sequence, ignoring the handle.
        """
        del base, edit
        return self.parse(spliced) if build_trees else self.recognize(spliced)

    def invalidate(self) -> None:
        """Called after every grammar modification (MODIFY)."""

    def prepare(self) -> None:
        """Build whatever the engine builds ahead of parsing.

        A no-op for the lazy family and Earley; the dense engine
        generates its full table here.  The bench harness calls this in
        the §7 ``construct`` phase so up-front generation cost lands in
        the phase the paper measures it under.
        """

    # -- shared plumbing ---------------------------------------------------

    def _report(
        self, result: ParseResult, control: Any, build_trees: bool = True
    ) -> EngineReport:
        failure = None
        if not result.accepted and result.failure is not None:
            failure = (
                result.failure.token_index,
                self._expected(control, result.failure),
            )
        forest = None
        if build_trees and result.accepted:
            forest = ParseForest(result.trees)
        return EngineReport(
            result.accepted, forest, result.stats.snapshot(), failure
        )

    def _expected(self, control: Any, failure: ParseFailure) -> Tuple[str, ...]:
        return expected_terminals(
            control, failure, sorted(self.language.grammar.terminals)
        )


_REGISTRY: Dict[str, Type[Engine]] = {}


def register_engine(cls: Type[Engine]) -> Type[Engine]:
    """Class decorator: make an engine selectable by name."""
    if cls.name in _REGISTRY:
        raise ValueError(f"engine {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def engines(
    detail: bool = False,
) -> Union[Tuple[str, ...], Dict[str, Dict[str, Any]]]:
    """Every registered engine name, in registration order.

    With ``detail=True``, returns ``name -> capability record`` instead:
    the one-line summary plus the ``supports_trees`` /
    ``supports_ambiguity`` / ``supports_reparse`` flags, so callers can
    pick an engine by what it can do rather than by name.
    """
    if not detail:
        return tuple(_REGISTRY)
    return {
        name: {
            "summary": cls.summary,
            "supports_trees": cls.supports_trees,
            "supports_ambiguity": cls.supports_ambiguity,
            "supports_reparse": cls.supports_reparse,
        }
        for name, cls in _REGISTRY.items()
    }


def engine_descriptions() -> Dict[str, str]:
    """name → one-line summary, for UIs (CLI ``engine`` command, README)."""
    return {name: cls.summary for name, cls in _REGISTRY.items()}


def create_engine(name: str, language: Any) -> Engine:
    """Instantiate a registered engine against a language."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ValueError(f"unknown engine {name!r} — known engines: {known}")
    return cls(language)


class _CheckpointMixin:
    """Incremental re-parsing for pool-backed engines.

    Lazily builds one :class:`IncrementalParser` over the engine's own
    control (so checkpoints see exactly the automaton the engine parses
    with) and wires its outcomes through the report protocol.  The parser
    subscribes to the grammar, so a MODIFY between parse and reparse
    invalidates every outstanding checkpoint; ``invalidate`` additionally
    drops the parser itself (closing its subscription), which keeps
    engines whose control is rebuilt on edits — the dense table — honest.
    """

    supports_reparse = True
    #: True for engines whose control object is rebuilt on a grammar edit
    #: (the dense table): their checkpoint parser must be discarded with
    #: the control it indexes.  Graph-backed engines keep one parser for
    #: the language's lifetime; its epoch (bumped via ``Grammar.subscribe``)
    #: already invalidates outstanding checkpoints.
    _control_rebuilt_on_modify = False

    def __init__(self, language: Any) -> None:
        super().__init__(language)
        self._incremental: Optional[IncrementalParser] = None
        # Same audit as Language._engines_lock: ``invalidate`` fires from
        # Grammar.subscribe during an edit while another thread's first
        # checkpointed parse constructs the parser — without the lock the
        # racers could each subscribe a parser and leak one observer.
        self._incremental_lock = threading.Lock()

    def _incremental_parser(self) -> IncrementalParser:
        with self._incremental_lock:
            if self._incremental is None:
                self._incremental = IncrementalParser(
                    self.pool.control,
                    self.language.grammar,
                    max_sweep_steps=self.language.max_sweep_steps,
                )
            return self._incremental

    def _incremental_report(
        self, outcome: IncrementalOutcome, build_trees: bool = True
    ) -> EngineReport:
        result = outcome.result
        failure = None
        if not result.accepted and result.failure is not None:
            control = self._incremental_parser().control
            failure = (
                result.failure.token_index,
                self._expected(control, result.failure),
            )
        forest = None
        if build_trees and result.accepted:
            forest = ParseForest(result.trees)
        return EngineReport(
            result.accepted,
            forest,
            result.stats.snapshot(),
            failure,
            incremental=outcome,
            reuse=dict(outcome.reuse),
        )

    def parse_incremental(
        self, terminals: Sequence[Terminal], build_trees: bool = True
    ) -> EngineReport:
        outcome = self._incremental_parser().parse(
            tuple(terminals), build_trees=build_trees
        )
        return self._incremental_report(outcome, build_trees)

    def reparse(
        self,
        base: Optional[Any],
        edit: Edit,
        spliced: Sequence[Terminal],
        build_trees: bool = True,
    ) -> EngineReport:
        parser = self._incremental_parser()
        if isinstance(base, IncrementalOutcome):
            outcome = parser.reparse(
                base, edit, build_trees=build_trees, spliced=spliced
            )
        else:
            outcome = parser.parse(tuple(spliced), build_trees=build_trees)
            outcome.reuse["fallback"] = "no-checkpoint"
        return self._incremental_report(outcome, build_trees)

    def invalidate(self) -> None:
        if self._control_rebuilt_on_modify:
            self.close_incremental()
        super().invalidate()

    def close_incremental(self) -> None:
        """Release the checkpoint parser's grammar subscription."""
        with self._incremental_lock:
            if self._incremental is not None:
                self._incremental.close()
                self._incremental = None


# ---------------------------------------------------------------------------
# The five registered engines.
# ---------------------------------------------------------------------------


@register_engine
class LazyEngine(_CheckpointMixin, Engine):
    """The paper's system as presented: lazy generation + parallel parsing.

    Runs the pool parser directly over the lazy/incremental graph control
    (no compiled ACTION memo), which is exactly the seed's hot path —
    kept as a registered engine so the compiled layer's speedup stays
    measurable through the same API it is used through.
    """

    name = "lazy"
    summary = "parallel LR over the lazy/incremental graph (sections 5-6)"

    def __init__(self, language: Any) -> None:
        super().__init__(language)
        self.pool = PoolParser(
            language.generator.control,
            language.grammar,
            max_sweep_steps=language.max_sweep_steps,
        )

    def recognize(self, terminals: Sequence[Terminal]) -> EngineReport:
        return self._report(
            self.pool.recognize_result(terminals),
            self.pool.control,
            build_trees=False,
        )

    def parse(self, terminals: Sequence[Terminal]) -> EngineReport:
        return self._report(self.pool.parse(terminals), self.pool.control)


@register_engine
class CompiledEngine(_CheckpointMixin, Engine):
    """Lazy + incremental generation behind the compiled control plane.

    The default engine: ACTION results are memoized into shared tuples
    and invalidated precisely on MODIFY (see :mod:`repro.lr.compiled`);
    deterministic stretches run the Elkhound-style plain-LR fast loop.
    """

    name = "compiled"
    summary = "the default: lazy graph + memoized ACTION + fast-path LR"

    def __init__(self, language: Any) -> None:
        super().__init__(language)
        self.pool = PoolParser(
            language.control,
            language.grammar,
            max_sweep_steps=language.max_sweep_steps,
        )

    def recognize(self, terminals: Sequence[Terminal]) -> EngineReport:
        return self._report(
            self.pool.recognize_result(terminals),
            self.pool.control,
            build_trees=False,
        )

    def parse(self, terminals: Sequence[Terminal]) -> EngineReport:
        return self._report(self.pool.parse(terminals), self.pool.control)


@register_engine
class DenseTableEngine(_CheckpointMixin, Engine):
    """Conventional generation into a dense integer LR(0) table.

    The PG/Yacc deployment shape: the whole automaton is generated up
    front and frozen into packed integer rows
    (:class:`~repro.lr.table.DenseTable`); a grammar edit throws the
    table away and the next parse regenerates it from scratch — the cost
    profile section 7 measures for non-incremental generators.
    """

    name = "dense"
    summary = "full LR(0) generation into a frozen dense integer table"
    _control_rebuilt_on_modify = True

    def __init__(self, language: Any) -> None:
        super().__init__(language)
        self._pool: Optional[PoolParser] = None

    @property
    def pool(self) -> PoolParser:
        """The (lazily built) pool parser — the trace-capable runtime.

        Exposed under the same name as the other pool-backed engines so
        ``Language.parse(..., trace=...)`` routes through it uniformly.
        """
        return self._parser()

    def _parser(self) -> PoolParser:
        if self._pool is None:
            store = getattr(self.language, "table_store", None)
            table = store.load_table(self.language.grammar) if store else None
            if table is None:
                from ..lr.generator import ConventionalGenerator

                # Generate against a copy: expansion must not leak
                # observers onto (or expansion work into) the language's
                # live graph.
                generator = ConventionalGenerator(self.language.grammar.copy())
                generator.generate()
                table = lr0_table(generator.graph)
                if store is not None:
                    store.save_table(self.language.grammar, table)
            self._pool = PoolParser(
                TableControl(table),
                self.language.grammar,
                max_sweep_steps=self.language.max_sweep_steps,
            )
        return self._pool

    def recognize(self, terminals: Sequence[Terminal]) -> EngineReport:
        pool = self._parser()
        return self._report(
            pool.recognize_result(terminals), pool.control, build_trees=False
        )

    def parse(self, terminals: Sequence[Terminal]) -> EngineReport:
        pool = self._parser()
        return self._report(pool.parse(terminals), pool.control)

    def invalidate(self) -> None:
        self._pool = None
        super().invalidate()  # drop checkpoints tied to the discarded table

    def prepare(self) -> None:
        self._parser()


@register_engine
class GSSEngine(Engine):
    """Tomita/Rekers GLR over a graph-structured stack with packed forests.

    Runs over the *same* compiled control as the default engine (memoized
    ACTION cells, step-cache probes, Elkhound-style deterministic
    stretches), merging parsers that reach the same state so the number
    of live stack tops stays bounded on ambiguous inputs.  ``parse``
    builds a shared packed parse forest whose tree count may be
    exponential in the input length — enumeration is lazy and capped.
    """

    name = "gss"
    summary = "merged-stack GLR with shared packed forests (compiled control)"

    def __init__(self, language: Any) -> None:
        super().__init__(language)
        self.gss = GSSParser(
            language.control,
            max_steps_per_token=language.max_sweep_steps,
            grammar=language.grammar,
        )
        #: kept for the uniform trace path: ``Language.parse(...,
        #: trace=...)`` replays LR moves through a pool over the same
        #: control, so traced runs see the identical automaton.
        self.pool = PoolParser(
            language.control,
            language.grammar,
            max_sweep_steps=language.max_sweep_steps,
        )

    def _gss_report(self, result: Any, build_trees: bool) -> EngineReport:
        failure = None
        if not result.accepted and result.failure is not None:
            # The GSS failure record carries the fatal sweep's visited
            # states directly (no linear stacks to replay): LR(0) reduces
            # are lookahead-independent, so that sweep's reduce closure
            # already covers every viable continuation.
            failure = (
                result.failure.token_index,
                self._expected(self.gss.control, result.failure),
            )
        forest = result.forest if build_trees else None
        return EngineReport(
            result.accepted, forest, result.stats.snapshot(), failure
        )

    def recognize(self, terminals: Sequence[Terminal]) -> EngineReport:
        return self._gss_report(
            self.gss.recognize_result(terminals), build_trees=False
        )

    def parse(self, terminals: Sequence[Terminal]) -> EngineReport:
        return self._gss_report(self.gss.parse(terminals), build_trees=True)


@register_engine
class EarleyEngine(Engine):
    """The Earley baseline: no generation phase, chart-driven recognition.

    Reads the live grammar on every call, so modification costs nothing
    — and parsing costs the most (the trade-off of section 2.1).
    Recognition only: ``parse`` raises a
    :class:`~repro.runtime.errors.CapabilityError`.
    """

    name = "earley"
    summary = "Earley chart recognition straight off the live grammar"
    supports_trees = False
    supports_ambiguity = False

    def __init__(self, language: Any) -> None:
        super().__init__(language)
        self._parser: Optional[EarleyParser] = None

    def _earley(self) -> EarleyParser:
        # The chart parser caches nullability analysis, which a grammar
        # edit outdates; invalidate() drops the instance.
        if self._parser is None:
            self._parser = EarleyParser(self.language.grammar)
        return self._parser

    def recognize(self, terminals: Sequence[Terminal]) -> EngineReport:
        parser = self._earley()
        accepted = parser.recognize(terminals)
        failure = None
        if not accepted and parser.last_failure is not None:
            failure = parser.last_failure
        return EngineReport(
            accepted, None, {"chart_size": parser.last_chart_size}, failure
        )

    def parse(self, terminals: Sequence[Terminal]) -> EngineReport:
        raise CapabilityError(
            f"engine {self.name!r} builds no trees; use recognize() or a "
            f"tree-building engine (supports_trees in engines(detail=True))"
        )

    def invalidate(self) -> None:
        self._parser = None
