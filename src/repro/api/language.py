"""`Language`: one object binding lexical syntax, grammar, and parser.

This is the paper's user-level promise made concrete: *"an environment
where language definitions are developed (and modified) interactively"*
needs a single handle that couples the ISG scanner, the context-free
grammar, and the incrementally generated parser — and survives edits to
any of them.  A :class:`Language` is that handle::

    from repro.api import Language

    lang = Language.from_sdf(EXP_SDF)        # lexical + context-free syntax
    outcome = lang.parse("true and not false")   # raw text, end to end
    assert outcome.accepted

    lang.add_rule("EXP ::= maybe")           # incremental MODIFY
    bad = lang.parse("true and")             # rejected, with a diagnostic
    print(bad.diagnostic.describe())         # ... expected: ..., maybe, ...

Engines are selectable per call (``lang.parse(text, engine="gss")``) and
discoverable via :func:`repro.api.engines`; tokenizers are swappable via
:meth:`use_tokenizer`.  An SDF-derived scanner is compiled from the
definition's *lexical* syntax and is not affected by context-free rule
edits — for a scanner that follows grammar edits live, use
:meth:`ScannerTokenizer.from_grammar <repro.api.tokenizers.ScannerTokenizer.from_grammar>`.
The classic :class:`~repro.core.ipg.IPG` facade is now a thin wrapper
over this class.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .. import obs
from ..grammar.builders import grammar_from_text, rule_from_text
from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import Terminal
from ..lexing.scanner import Lexeme, ScanError
from ..lr.compiled import CompiledControl
from ..core.incremental import IncrementalGenerator
from ..core.metrics import graph_summary, table_fraction
from ..runtime.trace import Trace
from .diagnostics import Diagnostic, ParseOutcome, line_and_column
from .engines import Engine, create_engine, engines
from .tokenizers import ScannerTokenizer, Tokenizer, WhitespaceTokenizer

__all__ = ["Language", "LexedInput", "DEFAULT_ENGINE"]

#: The engine used when none is named: the compiled control plane.
DEFAULT_ENGINE = "compiled"

TokenInput = Union[str, Iterable[Union[str, Terminal]]]
RuleInput = Union[Rule, str]

# -- telemetry (repro.obs) -------------------------------------------------
#
# Instruments are created once at import and cached in plain module
# globals, so the per-parse cost is a handful of lock-guarded integer
# increments — cheap enough to stay on unconditionally (the spans, which
# do allocate, are off unless tracing is enabled).  Live Language
# instances register in a WeakSet; a snapshot-time collector sums their
# generator and compiled-control stats under the dotted catalog names.

_LIVE_LANGUAGES: "weakref.WeakSet[Language]" = weakref.WeakSet()

_PARSE_SECONDS = obs.histogram("repro.parse.seconds")
_PARSE_ACCEPTED = obs.counter("repro.parse.accepted")
_PARSE_REJECTED = obs.counter("repro.parse.rejected")
_LEX_TOKENS = obs.counter("repro.lexer.tokens")
_LEX_ERRORS = obs.counter("repro.lexer.errors")

#: ParseStats keys mirrored as global engine-work counters.
_ENGINE_STAT_KEYS = (
    "sweeps",
    "action_calls",
    "shifts",
    "reduces",
    "forks",
    "duplicates_dropped",
)
_ENGINE_COUNTERS = tuple(
    (key, obs.counter("repro.engine." + key)) for key in _ENGINE_STAT_KEYS
)

# Small label-value caches so the hot path never rebuilds label tuples;
# benign races just create the same instrument twice (the registry
# deduplicates by key).
_REQUEST_COUNTERS: Dict[str, obs.Counter] = {}
_REUSE_COUNTERS: Dict[Tuple[str, str], obs.Counter] = {}
_MODIFY_COUNTERS: Dict[str, obs.Counter] = {}


def _requests_counter(engine: str) -> obs.Counter:
    counter = _REQUEST_COUNTERS.get(engine)
    if counter is None:
        counter = _REQUEST_COUNTERS[engine] = obs.counter(
            "repro.parse.requests", engine=engine
        )
    return counter


def _reuse_counter(outcome: str, reason: str) -> obs.Counter:
    counter = _REUSE_COUNTERS.get((outcome, reason))
    if counter is None:
        counter = _REUSE_COUNTERS[(outcome, reason)] = obs.counter(
            "repro.incremental.reparse", outcome=outcome, reason=reason
        )
    return counter


def _modify_counter(op: str) -> obs.Counter:
    counter = _MODIFY_COUNTERS.get(op)
    if counter is None:
        counter = _MODIFY_COUNTERS[op] = obs.counter(
            "repro.generator.modify", op=op
        )
    return counter


def _record_parse(outcome: "ParseOutcome", reparsed: bool = False) -> None:
    """Fold one finished parse into the global registry.

    ``reparsed`` marks outcomes of :meth:`Language.reparse` — only those
    feed the incremental reuse counters (a *fresh* checkpointed parse
    also carries a ``reuse`` dict, but resumed nothing).
    """
    _requests_counter(outcome.engine).inc()
    (_PARSE_ACCEPTED if outcome.accepted else _PARSE_REJECTED).inc()
    _PARSE_SECONDS.observe(outcome.elapsed)
    stats = outcome.stats
    if stats:
        for key, counter in _ENGINE_COUNTERS:
            value = stats.get(key)
            if value:
                counter.inc(value)
    if reparsed and outcome.reuse is not None:
        fallback = outcome.reuse.get("fallback")
        if fallback:
            _reuse_counter("fallback", str(fallback)).inc()
        else:
            _reuse_counter("resumed", "none").inc()


def _collect_language_stats():
    """Snapshot-time collector: sum stats over live Language instances.

    Exported counters are sums over *live* languages — long-lived holders
    (service sessions) dominate; a language garbage-collected mid-flight
    takes its contribution with it.
    """
    graph_totals = {"expansions": 0, "states_created": 0, "states_removed": 0,
                    "closure_items": 0, "states_restored": 0}
    states = complete = 0
    warm_saved = warm_cold = 0
    compiled_totals: Dict[str, int] = {}
    for language in list(_LIVE_LANGUAGES):
        graph = language.generator.graph
        snapshot = graph.stats.snapshot()
        for key in graph_totals:
            graph_totals[key] += snapshot.get(key, 0)
        warm_saved += language.saved_states
        warm_cold += snapshot.get("expansions", 0)
        for state in graph.states():
            states += 1
            complete += state.is_complete
        for key, value in language.control.stats.snapshot().items():
            if isinstance(value, (int, float)) and key != "hit_rate":
                compiled_totals[key] = compiled_totals.get(key, 0) + value
    for key, value in graph_totals.items():
        yield ("repro.generator." + key, None, "counter", value)
    yield ("repro.generator.states", None, "gauge", states)
    yield ("repro.generator.states_complete", None, "gauge", complete)
    yield ("repro.generator.warm_saved_states", None, "gauge", warm_saved)
    yield ("repro.generator.warm_cold_states", None, "gauge", warm_cold)
    for key, value in compiled_totals.items():
        # action_cache_hits -> repro.compiled.action_cache.hits
        dotted = key.replace("action_cache_", "action_cache.", 1)
        yield ("repro.compiled." + dotted, None, "counter", value)


obs.register_collector(_collect_language_stats)


class LexedInput:
    """One tokenized input: lexemes, their terminals, and the source text.

    ``text`` is ``None`` when the input arrived as an explicit token
    sequence — then the lexemes are synthetic and carry no positions.
    """

    __slots__ = ("text", "lexemes", "terminals")

    def __init__(
        self,
        text: Optional[str],
        lexemes: Tuple[Lexeme, ...],
        terminals: Tuple[Terminal, ...],
    ) -> None:
        self.text = text
        self.lexemes = lexemes
        self.terminals = terminals

    def __len__(self) -> int:
        return len(self.terminals)

    def __repr__(self) -> str:
        return f"LexedInput({[t.name for t in self.terminals]})"


class Language:
    """A grammar + a tokenizer + the engine registry, live and editable.

    Threading contract (audited for the sharded parse service): a
    ``Language`` is **single-writer** — all parses and grammar edits must
    come from one thread at a time (the service guarantees this by
    pinning each session to one shard).  The one structure that crosses
    that line is the engine map: :meth:`engine` lazily instantiates
    engines while :meth:`_on_modify` (fired from ``Grammar.subscribe``
    during an edit) iterates it to invalidate them, so both run under
    ``_engines_lock`` — without it an edit concurrent with a first-use
    ``create_engine`` on another thread could miss the new engine's
    invalidation and leave it serving tables from the pre-edit grammar.
    Everything else (graph, control plane, tokenizer) is intentionally
    lock-free under the single-writer rule.
    """

    def __init__(
        self,
        grammar: Optional[Grammar] = None,
        tokenizer: Optional[Tokenizer] = None,
        engine: str = DEFAULT_ENGINE,
        gc: bool = True,
        max_sweep_steps: int = 1_000_000,
        sorts: Iterable[str] = (),
        table_store: Optional[Any] = None,
    ) -> None:
        if engine not in engines():
            raise ValueError(
                f"unknown engine {engine!r} — known engines: "
                f"{', '.join(engines())}"
            )
        self.grammar = grammar if grammar is not None else Grammar()
        self.tokenizer: Tokenizer = (
            tokenizer if tokenizer is not None else WhitespaceTokenizer()
        )
        self.default_engine = engine
        self.max_sweep_steps = max_sweep_steps
        #: declared sort names (forward references in rule text)
        self.sorts = set(sorts)
        self.generator = IncrementalGenerator(self.grammar, gc=gc)
        # The compiled control plane over the lazy graph; the generator
        # subscribed to the grammar first, so MODIFY marks states before
        # the cache flush inspects them (see repro.lr.compiled).
        self.control = CompiledControl(self.generator.control, self.grammar)
        #: the persistent content-addressed cache (repro.lr.tablestore),
        #: or None for a purely in-memory language
        self.table_store = table_store
        #: states adopted from the store at construction — the warm start
        self.saved_states = 0
        self._persisted_key: Optional[Tuple[int, int]] = None
        if table_store is not None:
            # Warm-start before anything subscribes: adopted states are
            # indistinguishable from freshly expanded ones to every layer
            # above (lazy control, compiled memo, engines).
            self.saved_states = table_store.restore_graph(
                self.generator.graph, self.control
            )
        self._engines: Dict[str, Engine] = {}
        self._engines_lock = threading.Lock()
        #: the parsed SDF module when built via :meth:`from_sdf`
        self.definition = None
        # Subscribed last: engines are invalidated after the generator and
        # the compiled cache have already settled the graph.
        self._unsubscribe = self.grammar.subscribe(self._on_modify)
        _LIVE_LANGUAGES.add(self)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(
        cls,
        text: str,
        sorts: Iterable[str] = (),
        **kwargs: Any,
    ) -> "Language":
        """Build from the paper's BNF notation (``A ::= x y z`` lines)."""
        return cls(grammar_from_text(text, sorts=sorts), sorts=sorts, **kwargs)

    @classmethod
    def from_rules(cls, rules: Iterable[Rule], **kwargs: Any) -> "Language":
        return cls(Grammar(rules), **kwargs)

    @classmethod
    def from_sdf(
        cls,
        text: str,
        start_sort: Optional[str] = None,
        **kwargs: Any,
    ) -> "Language":
        """The full ISG/IPG pipeline from one SDF definition.

        Parses ``text`` as an SDF module (Appendix B syntax), normalizes
        its context-free syntax into the grammar, and compiles its
        lexical syntax into the ISG scanner — so ``parse`` takes raw
        program text with no manual lexing anywhere.
        """
        from ..sdf.normalize import normalize
        from ..sdf.parser import parse_sdf

        definition = parse_sdf(text)
        language = cls(
            normalize(definition, start_sort=start_sort),
            tokenizer=ScannerTokenizer.from_sdf(definition),
            **kwargs,
        )
        language.definition = definition
        return language

    # -- lexing ------------------------------------------------------------

    def lex(self, tokens: TokenInput) -> LexedInput:
        """Tokenize raw text (via the tokenizer) or coerce a token sequence.

        Raw strings go through the tokenizer — offsets and all.  Explicit
        sequences may mix terminal names, :class:`Terminal` objects and
        :class:`Lexeme` s; they are taken as given (no scanning).
        """
        if isinstance(tokens, str):
            with obs.span("tokenize") as sp:
                lexemes = tuple(self.tokenizer.tokenize(tokens))
                terminals = tuple(
                    self.tokenizer.terminal_of(lexeme) for lexeme in lexemes
                )
                if sp.recording:
                    sp.set(tokens=len(terminals), chars=len(tokens))
            _LEX_TOKENS.inc(len(terminals))
            return LexedInput(tokens, lexemes, terminals)
        lexemes_list: List[Lexeme] = []
        terminals_list: List[Terminal] = []
        for part in tokens:
            if isinstance(part, Terminal):
                terminal = part
            elif isinstance(part, Lexeme):
                lexemes_list.append(part)
                terminal = self.tokenizer.terminal_of(part)
            elif isinstance(part, str):
                terminal = Terminal(part)
            else:
                raise TypeError(f"cannot use {part!r} as a token")
            terminals_list.append(terminal)
        if len(lexemes_list) != len(terminals_list):
            lexemes_list = []  # mixed/positionless input: no offsets
        return LexedInput(None, tuple(lexemes_list), tuple(terminals_list))

    def use_tokenizer(self, tokenizer: Tokenizer) -> None:
        """Swap the lexical front end (closing an observing scanner)."""
        old = self.tokenizer
        self.tokenizer = tokenizer
        close = getattr(old, "close", None)
        if close is not None:
            close()

    # -- engines -----------------------------------------------------------

    def engine(self, name: Optional[str] = None) -> Engine:
        """The (cached) engine instance for ``name``."""
        key = name if name is not None else self.default_engine
        with self._engines_lock:
            instance = self._engines.get(key)
            if instance is None:
                instance = create_engine(key, self)
                self._engines[key] = instance
            return instance

    def use_engine(self, name: str) -> Engine:
        """Make ``name`` the default engine (validating it exists)."""
        instance = self.engine(name)
        self.default_engine = name
        return instance

    # -- parsing -----------------------------------------------------------

    def parse(
        self,
        tokens: TokenInput,
        engine: Optional[str] = None,
        trace: Optional[Trace] = None,
        checkpoint: bool = False,
    ) -> ParseOutcome:
        """Parse raw text (or a token sequence); always returns an outcome.

        Lexical errors do not raise: they come back as a rejected outcome
        whose diagnostic has ``kind="lexical"`` — errors are data at this
        layer, exactly as in the service protocol.

        ``trace`` records the parser's moves and is honored by every
        pool-backed engine (lazy/compiled/dense/gss); the Earley engine
        has no LR moves to record and leaves the trace empty.

        With ``checkpoint=True`` (and an engine that supports re-parsing)
        the outcome carries per-token-boundary checkpoints, and a later
        :meth:`reparse` against it resumes instead of starting over.
        ``trace`` and ``checkpoint`` are mutually exclusive.
        """
        return self._run(
            tokens, engine, build_trees=True, trace=trace, checkpoint=checkpoint
        )

    def recognize(
        self,
        tokens: TokenInput,
        engine: Optional[str] = None,
        checkpoint: bool = False,
    ) -> ParseOutcome:
        """Accept/reject without building trees (same outcome shape)."""
        return self._run(
            tokens, engine, build_trees=False, trace=None, checkpoint=checkpoint
        )

    def reparse(
        self,
        prev: ParseOutcome,
        start: int,
        end: int,
        replacement: TokenInput = (),
        engine: Optional[str] = None,
    ) -> ParseOutcome:
        """Re-parse ``prev``'s input after splicing ``replacement`` over
        ``tokens[start:end]`` — reusing the previous run where possible.

        Exactly equivalent to parsing the spliced token sequence from
        scratch (trees, ambiguity, diagnostics); when ``prev`` carries a
        checkpoint handle (``parse(..., checkpoint=True)`` or an earlier
        ``reparse``) and the grammar has not changed since, the engine
        resumes from the last checkpoint before the edit instead of
        re-running the prefix.  Engines without incremental support — and
        any invalidated checkpoint — fall back to a full re-parse;
        ``outcome.reuse`` reports which path was taken.

        The edit is in *token* coordinates over ``prev.terminals``.  The
        result is a token-level outcome: diagnostics carry token indices
        and expected sets, but no line/column (there is no single source
        text for a spliced input).
        """
        from ..runtime.errors import ParseError
        from ..runtime.incremental import Edit

        started = time.perf_counter()
        if engine is not None:
            # Explicit names are validated (unknown ones raise, exactly
            # as in ``parse``); only the *inherited* engine falls back —
            # prev.engine can be a non-registry label like the service's
            # SLR fast path.
            engine_name = engine
        elif prev.engine in engines():
            engine_name = prev.engine
        else:
            engine_name = self.default_engine
        selected = self.engine(engine_name)
        replacement_lexed = self.lex(replacement)
        base_terminals = prev.terminals
        if not 0 <= start <= end <= len(base_terminals):
            raise ParseError(
                f"edit range [{start}:{end}] does not fit the "
                f"{len(base_terminals)}-token previous input"
            )
        edit = Edit(start, end, replacement_lexed.terminals)
        spliced = edit.apply(base_terminals)
        build_trees = prev.trees_built
        handle = prev.incremental if engine is None or engine == prev.engine else None
        with obs.span("reparse", engine=engine_name) as sp:
            if selected.supports_reparse:
                report = selected.reparse(handle, edit, spliced, build_trees)
            else:
                report = selected.reparse(None, edit, spliced, build_trees)
                report.reuse = {"fallback": "engine-without-reparse"}
            if sp.recording and report.reuse is not None:
                sp.set(**{k: v for k, v in report.reuse.items() if v is not None})
        lexed = LexedInput(None, (), spliced)
        return self._outcome_from_report(
            lexed, report, selected, build_trees, started, reparsed=True
        )

    def parse_lexed(
        self,
        lexed: LexedInput,
        engine: Optional[str] = None,
        build_trees: bool = True,
        checkpoint: bool = False,
    ) -> ParseOutcome:
        """Parse an already tokenized input (the service's cache path)."""
        started = time.perf_counter()
        with obs.span("parse", tokens=len(lexed)):
            return self._outcome(
                lexed, self.engine(engine), build_trees, started, checkpoint
            )

    def _run(
        self,
        tokens: TokenInput,
        engine_name: Optional[str],
        build_trees: bool,
        trace: Optional[Trace],
        checkpoint: bool = False,
    ) -> ParseOutcome:
        started = time.perf_counter()
        if trace is not None and checkpoint:
            # The checkpointing runner records frontiers, not move events;
            # silently dropping either request would lie to the caller.
            raise ValueError(
                "trace and checkpoint are mutually exclusive — tracing "
                "runs through the pool parser, which records no checkpoints"
            )
        selected = self.engine(engine_name)
        with obs.span("parse"):
            try:
                lexed = self.lex(tokens)
            except ScanError as error:
                return self._scan_failure(
                    tokens if isinstance(tokens, str) else "", error, selected, started
                )
            if trace is not None:
                # Tracing is a pool-parser feature; route through the
                # engine's pool when it has one.
                pool = getattr(selected, "pool", None)
                if pool is not None:
                    with obs.span("engine", engine=selected.name):
                        result = pool.parse(lexed.terminals, trace=trace)
                    report = selected._report(result, pool.control)
                    return self._outcome_from_report(
                        lexed, report, selected, build_trees, started
                    )
            return self._outcome(lexed, selected, build_trees, started, checkpoint)

    def _outcome(
        self,
        lexed: LexedInput,
        selected: Engine,
        build_trees: bool,
        started: float,
        checkpoint: bool = False,
    ) -> ParseOutcome:
        sp = obs.span("engine", engine=selected.name)
        with sp:
            if sp.recording:
                graph_stats = self.generator.graph.stats
                expansions_before = graph_stats.expansions
            if checkpoint:
                report = selected.parse_incremental(
                    lexed.terminals, build_trees=build_trees
                )
            else:
                report = (
                    selected.parse(lexed.terminals)
                    if build_trees
                    else selected.recognize(lexed.terminals)
                )
            if sp.recording:
                sp.set(lazy_expansions=graph_stats.expansions - expansions_before)
                if report.stats:
                    sp.set(**{
                        key: report.stats[key]
                        for key in ("shifts", "reduces", "forks", "sweeps")
                        if key in report.stats
                    })
        return self._outcome_from_report(
            lexed, report, selected, build_trees, started
        )

    def _outcome_from_report(
        self,
        lexed: LexedInput,
        report: Any,
        selected: Engine,
        build_trees: bool,
        started: float,
        reparsed: bool = False,
    ) -> ParseOutcome:
        diagnostic = None
        if not report.accepted:
            diagnostic = self._diagnose(lexed, report.failure)
        outcome = ParseOutcome(
            accepted=report.accepted,
            forest=report.forest,
            engine=selected.name,
            elapsed=time.perf_counter() - started,
            diagnostic=diagnostic,
            lexemes=lexed.lexemes,
            stats=report.stats,
            trees_built=build_trees and selected.supports_trees,
            terminals=lexed.terminals,
            incremental=getattr(report, "incremental", None),
            reuse=getattr(report, "reuse", None),
        )
        _record_parse(outcome, reparsed=reparsed)
        return outcome

    # -- diagnostics -------------------------------------------------------

    def _diagnose(
        self,
        lexed: LexedInput,
        failure: Optional[Tuple[int, Tuple[str, ...]]],
    ) -> Optional[Diagnostic]:
        if failure is None:
            return None
        token_index, expected = failure
        at_end = token_index >= len(lexed.terminals)
        token: Optional[str] = None
        offset: Optional[int] = None
        line: Optional[int] = None
        column: Optional[int] = None
        if at_end:
            message = "unexpected end of input"
            if lexed.text is not None:
                offset = len(lexed.text)
        else:
            terminal = lexed.terminals[token_index]
            if token_index < len(lexed.lexemes):
                lexeme = lexed.lexemes[token_index]
                token = lexeme.text
                offset = lexeme.position
            else:
                token = terminal.name
            message = f"unexpected {token!r}"
        if lexed.text is not None and offset is not None:
            line, column = line_and_column(lexed.text, offset)
        return Diagnostic(
            message,
            kind="syntax",
            token_index=token_index,
            token=token,
            offset=offset,
            line=line,
            column=column,
            expected=expected,
        )

    def _scan_failure(
        self,
        text: str,
        error: ScanError,
        selected: Engine,
        started: float,
    ) -> ParseOutcome:
        _LEX_ERRORS.inc()
        line, column = line_and_column(text, error.position)
        diagnostic = Diagnostic(
            str(error).splitlines()[0],
            kind="lexical",
            token_index=None,
            token=None,
            offset=error.position,
            line=line,
            column=column,
            expected=(),
        )
        return ParseOutcome(
            accepted=False,
            engine=selected.name,
            elapsed=time.perf_counter() - started,
            diagnostic=diagnostic,
            trees_built=False,
        )

    # -- grammar modification ----------------------------------------------

    def coerce_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> Rule:
        """A Rule from a Rule or ``"A ::= body"`` text (see ADD-RULE).

        In rule text, a name is a non-terminal iff the grammar already
        defines it, it was declared via ``sorts``, or it is the rule's own
        left-hand side.
        """
        if isinstance(rule, Rule):
            return rule
        known = {nt.name for nt in self.grammar.nonterminals}
        known.update(self.sorts)
        known.update(sorts)
        return rule_from_text(rule, known)

    def add_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> bool:
        """ADD-RULE; accepts a Rule or ``"A ::= b c"`` text."""
        self.sorts.update(sorts)
        with obs.span("modify", op="add"):
            applied = self.generator.add_rule(self.coerce_rule(rule))
        if applied:
            _modify_counter("add").inc()
        return applied

    def delete_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> bool:
        """DELETE-RULE; accepts a Rule or ``"A ::= b c"`` text."""
        self.sorts.update(sorts)
        with obs.span("modify", op="delete"):
            applied = self.generator.delete_rule(self.coerce_rule(rule))
        if applied:
            _modify_counter("delete").inc()
        return applied

    def collect_garbage(self, force_sweep: bool = False) -> int:
        return self.generator.collect_garbage(force_sweep=force_sweep)

    def persist_tables(self) -> int:
        """Write newly materialized states back to the table store.

        Cheap to call after every parse: when neither the grammar revision
        nor the number of complete states moved since the last write-back,
        nothing is touched.  Returns the number of store entries written.
        """
        if self.table_store is None:
            return 0
        graph = self.generator.graph
        complete = sum(1 for state in graph.states() if state.is_complete)
        key = (self.grammar.revision, complete)
        if key == self._persisted_key:
            return 0
        written = self.table_store.save_graph(graph, self.control)
        self._persisted_key = key
        return written

    def _on_modify(self, grammar: Grammar, rule: Rule, added: bool) -> None:
        del grammar, rule, added
        with self._engines_lock:
            for instance in self._engines.values():
                instance.invalidate()

    def close(self) -> None:
        """Detach from the grammar's observer chain."""
        self._unsubscribe()
        with self._engines_lock:
            # Engines may hold grammar subscriptions of their own (the
            # incremental checkpoint layer); release them.
            for instance in self._engines.values():
                release = getattr(instance, "close_incremental", None)
                if release is not None:
                    release()
        close = getattr(self.tokenizer, "close", None)
        if close is not None:
            close()

    # -- introspection -----------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone grammar version (bumped by every successful MODIFY)."""
        return self.grammar.revision

    @property
    def graph(self):
        return self.generator.graph

    def summary(self) -> Dict[str, int]:
        data = graph_summary(self.generator.graph)
        data.update(self.control.stats.snapshot())
        # The warm-start ledger: states adopted from the persistent store
        # at construction vs. states this process expanded itself.
        data["saved_states"] = self.saved_states
        data["cold_states"] = self.generator.graph.stats.expansions
        return data

    def table_fraction(self) -> float:
        return table_fraction(self.generator.graph, self.grammar)

    def __repr__(self) -> str:
        return (
            f"Language({len(self.grammar)} rules, "
            f"tokenizer={self.tokenizer.name}, "
            f"engine={self.default_engine})"
        )
