"""Structured parse outcomes and rejection diagnostics.

``IPG.parse`` historically answered a rejection with a bare
``accepted=False`` — fine for the §7 measurements, useless for the
interactive language-definition environment the paper is actually about.
:class:`ParseOutcome` is the uniform answer every front end (library,
service, CLI, bench) receives: acceptance, the derivations, ambiguity,
wall-clock time, engine identity, and — on rejection — a
:class:`Diagnostic` that names the offending token, its line/column (from
:attr:`~repro.lexing.scanner.Lexeme.position`) and the *expected terminal
set* read off the ACTION rows of the states the parser died in.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..grammar.symbols import Terminal
from ..lexing.scanner import Lexeme
from ..runtime.forest import TreeNode, bracketed

__all__ = ["Diagnostic", "ParseOutcome", "line_and_column"]


def line_and_column(text: str, offset: int) -> Tuple[int, int]:
    """1-based (line, column) of character ``offset`` in ``text``."""
    offset = max(0, min(offset, len(text)))
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    return line, offset - last_newline


class Diagnostic:
    """Why (and where) an input was rejected.

    ``token_index`` indexes the lexeme stream; an index equal to the
    stream length means the input ended too early (the offending "token"
    is the end of input and ``token`` is ``None``).  ``line``/``column``
    are 1-based and present whenever the input came as raw text;
    token-list inputs have no source positions.  ``expected`` holds the
    terminal names that *would* have been accepted at the failure point —
    ``$`` stands for the end of input.
    """

    __slots__ = (
        "message",
        "kind",
        "token_index",
        "token",
        "offset",
        "line",
        "column",
        "expected",
    )

    def __init__(
        self,
        message: str,
        kind: str = "syntax",
        token_index: Optional[int] = None,
        token: Optional[str] = None,
        offset: Optional[int] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
        expected: Sequence[str] = (),
    ) -> None:
        self.message = message
        self.kind = kind
        self.token_index = token_index
        self.token = token
        self.offset = offset
        self.line = line
        self.column = column
        self.expected = tuple(expected)

    def describe(self) -> str:
        """One human-readable line (the CLI's rejection detail)."""
        where = ""
        if self.line is not None and self.column is not None:
            where = f" at line {self.line}, column {self.column}"
        elif self.token_index is not None:
            where = f" at token {self.token_index}"
        detail = f"{self.message}{where}"
        if self.expected:
            detail += f"; expected: {', '.join(self.expected)}"
        return detail

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able rendering (the service's ``diagnostics`` field)."""
        return {
            "message": self.message,
            "kind": self.kind,
            "token_index": self.token_index,
            "token": self.token,
            "offset": self.offset,
            "line": self.line,
            "column": self.column,
            "expected": list(self.expected),
        }

    def __repr__(self) -> str:
        return f"Diagnostic({self.describe()!r})"


class ParseOutcome:
    """The structured result of one ``Language.parse``/``recognize`` call."""

    __slots__ = (
        "accepted",
        "trees",
        "engine",
        "elapsed",
        "diagnostic",
        "lexemes",
        "stats",
        "trees_built",
        "terminals",
        "incremental",
        "reuse",
    )

    def __init__(
        self,
        accepted: bool,
        trees: Tuple[TreeNode, ...] = (),
        engine: str = "",
        elapsed: float = 0.0,
        diagnostic: Optional[Diagnostic] = None,
        lexemes: Tuple[Lexeme, ...] = (),
        stats: Optional[Dict[str, int]] = None,
        trees_built: bool = True,
        terminals: Tuple[Terminal, ...] = (),
        incremental: Optional[Any] = None,
        reuse: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.accepted = accepted
        self.trees = trees
        self.engine = engine
        self.elapsed = elapsed
        self.diagnostic = diagnostic
        self.lexemes = lexemes
        self.stats = stats
        #: False for recognition-only calls and tree-less engines: their
        #: empty ``trees`` means "not built", not "zero derivations".
        self.trees_built = trees_built
        #: the parsed terminal sequence — what ``Language.reparse`` splices
        self.terminals = terminals
        #: opaque checkpoint handle (set by checkpointed/incremental
        #: parses); feeding it back via ``Language.reparse`` reuses work
        self.incremental = incremental
        #: reuse accounting of an incremental call (``None`` otherwise)
        self.reuse = reuse

    # -- convenience views -------------------------------------------------

    @property
    def ambiguity(self) -> int:
        """Number of distinct derivations (0 for rejected inputs)."""
        return len(self.trees)

    @property
    def is_ambiguous(self) -> bool:
        return len(self.trees) > 1

    @property
    def tree(self) -> Optional[TreeNode]:
        """The unique tree, if there is exactly one."""
        return self.trees[0] if len(self.trees) == 1 else None

    def brackets(self) -> List[str]:
        """Every derivation in bracketed text form, deterministically sorted."""
        return sorted(bracketed(tree) for tree in self.trees)

    def __bool__(self) -> bool:
        return self.accepted

    # -- serialization -----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-able payload the parse service caches and returns."""
        payload: Dict[str, Any] = {
            "accepted": self.accepted,
            "trees": self.brackets(),
            "engine": self.engine,
        }
        if not self.trees_built:
            payload["trees_built"] = False
        if self.diagnostic is not None:
            payload["diagnostics"] = self.diagnostic.to_payload()
        if self.reuse is not None:
            payload["reuse"] = dict(self.reuse)
        return payload

    def __repr__(self) -> str:
        detail = f"{len(self.trees)} trees" if self.accepted else "rejected"
        return f"ParseOutcome({self.engine}: accepted={self.accepted}, {detail})"


def expected_names(terminals: Iterable[Terminal]) -> Tuple[str, ...]:
    """Sorted, deduplicated terminal names (the end-marker prints as ``$``)."""
    return tuple(sorted({t.name for t in terminals}))
