"""Structured parse outcomes and rejection diagnostics.

``IPG.parse`` historically answered a rejection with a bare
``accepted=False`` — fine for the §7 measurements, useless for the
interactive language-definition environment the paper is actually about.
:class:`ParseOutcome` is the uniform answer every front end (library,
service, CLI, bench) receives: acceptance, the derivations, ambiguity,
wall-clock time, engine identity, and — on rejection — a
:class:`Diagnostic` that names the offending token, its line/column (from
:attr:`~repro.lexing.scanner.Lexeme.position`) and the *expected terminal
set* read off the ACTION rows of the states the parser died in.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..grammar.symbols import Terminal
from ..lexing.scanner import Lexeme
from ..runtime.forest import ENUMERATION_CAP, ParseForest, TreeNode

__all__ = ["Diagnostic", "ParseOutcome", "line_and_column"]

#: How many derivations the deprecated :attr:`ParseOutcome.trees` property
#: materializes at most.  Code that needs more (or needs to know the real
#: count) must move to the :attr:`ParseOutcome.forest` handle.
DEPRECATED_TREES_CAP = 256


def line_and_column(text: str, offset: int) -> Tuple[int, int]:
    """1-based (line, column) of character ``offset`` in ``text``."""
    offset = max(0, min(offset, len(text)))
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    return line, offset - last_newline


class Diagnostic:
    """Why (and where) an input was rejected.

    ``token_index`` indexes the lexeme stream; an index equal to the
    stream length means the input ended too early (the offending "token"
    is the end of input and ``token`` is ``None``).  ``line``/``column``
    are 1-based and present whenever the input came as raw text;
    token-list inputs have no source positions.  ``expected`` holds the
    terminal names that *would* have been accepted at the failure point —
    ``$`` stands for the end of input.
    """

    __slots__ = (
        "message",
        "kind",
        "token_index",
        "token",
        "offset",
        "line",
        "column",
        "expected",
    )

    def __init__(
        self,
        message: str,
        kind: str = "syntax",
        token_index: Optional[int] = None,
        token: Optional[str] = None,
        offset: Optional[int] = None,
        line: Optional[int] = None,
        column: Optional[int] = None,
        expected: Sequence[str] = (),
    ) -> None:
        self.message = message
        self.kind = kind
        self.token_index = token_index
        self.token = token
        self.offset = offset
        self.line = line
        self.column = column
        self.expected = tuple(expected)

    def describe(self) -> str:
        """One human-readable line (the CLI's rejection detail)."""
        where = ""
        if self.line is not None and self.column is not None:
            where = f" at line {self.line}, column {self.column}"
        elif self.token_index is not None:
            where = f" at token {self.token_index}"
        detail = f"{self.message}{where}"
        if self.expected:
            detail += f"; expected: {', '.join(self.expected)}"
        return detail

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able rendering (the service's ``diagnostics`` field)."""
        return {
            "message": self.message,
            "kind": self.kind,
            "token_index": self.token_index,
            "token": self.token,
            "offset": self.offset,
            "line": self.line,
            "column": self.column,
            "expected": list(self.expected),
        }

    def __repr__(self) -> str:
        return f"Diagnostic({self.describe()!r})"


class ParseOutcome:
    """The structured result of one ``Language.parse``/``recognize`` call.

    Derivations live behind the :attr:`forest` handle
    (:class:`~repro.runtime.forest.ParseForest`): ``tree_count()`` is
    cheap even when the count is exponential, and ``trees(limit=...)``
    enumerates lazily.  The former eager ``trees`` tuple survives as a
    deprecated property capped at :data:`DEPRECATED_TREES_CAP`.
    """

    __slots__ = (
        "accepted",
        "forest",
        "engine",
        "elapsed",
        "diagnostic",
        "lexemes",
        "stats",
        "trees_built",
        "terminals",
        "incremental",
        "reuse",
    )

    def __init__(
        self,
        accepted: bool,
        forest: Optional[ParseForest] = None,
        engine: str = "",
        elapsed: float = 0.0,
        diagnostic: Optional[Diagnostic] = None,
        lexemes: Tuple[Lexeme, ...] = (),
        stats: Optional[Dict[str, int]] = None,
        trees_built: bool = True,
        terminals: Tuple[Terminal, ...] = (),
        incremental: Optional[Any] = None,
        reuse: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.accepted = accepted
        #: the packed derivations of an accepting parse; ``None`` on
        #: rejection and for recognition-only calls
        self.forest = forest
        self.engine = engine
        self.elapsed = elapsed
        self.diagnostic = diagnostic
        self.lexemes = lexemes
        self.stats = stats
        #: False for recognition-only calls: their missing ``forest``
        #: means "not built", not "zero derivations".
        self.trees_built = trees_built
        #: the parsed terminal sequence — what ``Language.reparse`` splices
        self.terminals = terminals
        #: opaque checkpoint handle (set by checkpointed/incremental
        #: parses); feeding it back via ``Language.reparse`` reuses work
        self.incremental = incremental
        #: reuse accounting of an incremental call (``None`` otherwise)
        self.reuse = reuse

    # -- convenience views -------------------------------------------------

    @property
    def ambiguity(self) -> int:
        """Number of distinct derivations (0 for rejected inputs)."""
        return self.forest.tree_count() if self.forest is not None else 0

    @property
    def is_ambiguous(self) -> bool:
        return self.ambiguity > 1

    @property
    def tree(self) -> Optional[TreeNode]:
        """The unique tree, if there is exactly one."""
        if self.forest is None or self.forest.tree_count() != 1:
            return None
        return next(iter(self.forest.trees(1)))

    @property
    def trees(self) -> Tuple[TreeNode, ...]:
        """Deprecated: eagerly materialized derivations.

        Enumerates at most :data:`DEPRECATED_TREES_CAP` trees out of
        :attr:`forest`; use the handle directly for lazy iteration or
        real counts.
        """
        warnings.warn(
            "ParseOutcome.trees is deprecated; use ParseOutcome.forest "
            "(tree_count() / trees(limit=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if self.forest is None:
            return ()
        return tuple(self.forest.trees(DEPRECATED_TREES_CAP))

    def brackets(self, limit: Optional[int] = None) -> List[str]:
        """Derivations in bracketed text form, deterministically sorted."""
        if self.forest is None:
            return []
        return self.forest.brackets(limit)

    def __bool__(self) -> bool:
        return self.accepted

    # -- serialization -----------------------------------------------------

    def to_payload(self, max_trees: Optional[int] = None) -> Dict[str, Any]:
        """The JSON-able payload the parse service caches and returns.

        ``max_trees`` caps how many derivations are rendered into
        ``trees``; ``ambiguity`` always reports the true count and
        whether the rendering was truncated.  With ``max_trees=None`` the
        rendering is still bounded by the forest enumeration cap.
        """
        tree_count = self.ambiguity
        if max_trees is None:
            enumerated = min(tree_count, ENUMERATION_CAP)
        else:
            enumerated = min(tree_count, max_trees)
        payload: Dict[str, Any] = {
            "accepted": self.accepted,
            "trees": self.brackets(enumerated),
            "engine": self.engine,
        }
        if self.trees_built:
            payload["ambiguity"] = {
                "tree_count": tree_count,
                "enumerated": enumerated,
                "truncated": enumerated < tree_count,
            }
        else:
            payload["trees_built"] = False
        if self.diagnostic is not None:
            payload["diagnostics"] = self.diagnostic.to_payload()
        if self.reuse is not None:
            payload["reuse"] = dict(self.reuse)
        return payload

    def __repr__(self) -> str:
        detail = f"{self.ambiguity} trees" if self.accepted else "rejected"
        return f"ParseOutcome({self.engine}: accepted={self.accepted}, {detail})"


def expected_names(terminals: Iterable[Terminal]) -> Tuple[str, ...]:
    """Sorted, deduplicated terminal names (the end-marker prints as ``$``)."""
    return tuple(sorted({t.name for t in terminals}))
