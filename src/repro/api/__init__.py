"""``repro.api`` — the unified public surface of the reproduction.

Three pillars (one PR, one protocol, every front end):

* :class:`Language` — binds a grammar, a tokenizer (whitespace, ISG
  scanner from SDF, or grammar-literal scanner) and an engine choice;
  ``Language.from_sdf(text).parse("true and false")`` runs the full
  ISG/IPG pipeline on raw text.
* the **engine registry** — ``lazy`` / ``compiled`` / ``dense`` / ``gss``
  / ``earley`` behind one ``recognize``/``parse``/``invalidate``
  protocol, discoverable via :func:`engines` and selectable per call.
* :class:`ParseOutcome` — structured results everywhere: acceptance,
  trees, ambiguity, timing, and on rejection a :class:`Diagnostic` with
  token index, line/column and the expected terminal set.

The library facade (:class:`repro.IPG`), the parse service, the CLI REPL
and the bench harness all drive their parsing through this package.
"""

from .diagnostics import Diagnostic, ParseOutcome
from .engines import (
    Engine,
    EngineReport,
    create_engine,
    engine_descriptions,
    engines,
    expected_terminals,
    register_engine,
)
from ..runtime.errors import CapabilityError
from ..runtime.forest import ParseForest
from ..runtime.incremental import Edit
from .language import DEFAULT_ENGINE, Language, LexedInput
from .tokenizers import (
    ScanError,
    ScannerTokenizer,
    Tokenizer,
    WhitespaceTokenizer,
)

__all__ = [
    "Language",
    "LexedInput",
    "DEFAULT_ENGINE",
    "Edit",
    "ParseOutcome",
    "ParseForest",
    "CapabilityError",
    "Diagnostic",
    "Engine",
    "EngineReport",
    "engines",
    "engine_descriptions",
    "create_engine",
    "register_engine",
    "expected_terminals",
    "Tokenizer",
    "WhitespaceTokenizer",
    "ScannerTokenizer",
    "ScanError",
]
