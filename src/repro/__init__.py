"""repro — a reproduction of Heering, Klint & Rekers,
*Incremental Generation of Parsers* (PLDI 1989 / CWI report CS-R8822).

The package implements the paper's system IPG — a lazy and incremental
LR(0) parse-table generator driving a Tomita-style parallel LR parser —
together with every substrate and baseline its evaluation relies on:

========================  ====================================================
``repro.grammar``         symbols, rules, mutable grammars, FIRST/FOLLOW
``repro.lr``              item sets, CLOSURE/EXPAND, PG, SLR(1), LALR(1)
``repro.runtime``         LR-PARSE, PAR-PARSE (pool), GSS GLR, parse forests
``repro.core``            lazy generation, incremental MODIFY, GC, **IPG**
``repro.baselines``       Earley, Cigale-style trie, OBJ-style backtracking
                          recursive descent, LL(1)
``repro.sdf``             the SDF front end and the section-7 corpus
``repro.lexing``          ISG: regex → NFA → lazy DFA incremental scanner
``repro.bench``           the Fig. 7.1 measurement harness
``repro.service``         the multi-session parse service (workspace,
                          JSON protocol, result cache, snapshots)
========================  ====================================================

Quickstart::

    from repro import IPG

    ipg = IPG.from_text('''
        B ::= true
        B ::= false
        B ::= B or B
        B ::= B and B
        START ::= B
    ''')
    result = ipg.parse("true or false")
    assert result.accepted
"""

from .core.ipg import IPG
from .grammar import (
    Grammar,
    GrammarBuilder,
    NonTerminal,
    Rule,
    Terminal,
    grammar_from_text,
)

__version__ = "1.1.0"

__all__ = [
    "Grammar",
    "GrammarBuilder",
    "IPG",
    "NonTerminal",
    "Rule",
    "Terminal",
    "grammar_from_text",
    "__version__",
]
