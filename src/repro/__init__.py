"""repro — a reproduction of Heering, Klint & Rekers,
*Incremental Generation of Parsers* (PLDI 1989 / CWI report CS-R8822).

The package implements the paper's system IPG — a lazy and incremental
LR(0) parse-table generator driving a Tomita-style parallel LR parser —
together with every substrate and baseline its evaluation relies on:

========================  ====================================================
``repro.api``             **the public surface**: Language, the engine
                          registry, ParseOutcome/Diagnostic, tokenizers
``repro.grammar``         symbols, rules, mutable grammars, FIRST/FOLLOW
``repro.lr``              item sets, CLOSURE/EXPAND, PG, SLR(1), LALR(1)
``repro.runtime``         LR-PARSE, PAR-PARSE (pool), GSS GLR, parse forests
``repro.core``            lazy generation, incremental MODIFY, GC, **IPG**
``repro.baselines``       Earley, Cigale-style trie, OBJ-style backtracking
                          recursive descent, LL(1)
``repro.sdf``             the SDF front end and the section-7 corpus
``repro.lexing``          ISG: regex → NFA → lazy DFA incremental scanner
``repro.bench``           the Fig. 7.1 measurement harness
``repro.service``         the multi-session parse service (workspace,
                          JSON protocol, result cache, snapshots)
========================  ====================================================

Quickstart::

    from repro import Language

    lang = Language.from_text('''
        B ::= true
        B ::= false
        B ::= B or B
        B ::= B and B
        START ::= B
    ''')
    outcome = lang.parse("true or false")
    assert outcome.accepted

(:class:`repro.IPG` remains available as a thin compatibility facade over
:class:`Language`.)
"""

from .api import Diagnostic, Language, ParseOutcome, engines
from .core.ipg import IPG
from .grammar import (
    Grammar,
    GrammarBuilder,
    NonTerminal,
    Rule,
    Terminal,
    grammar_from_text,
)

__version__ = "1.2.0"

__all__ = [
    "Diagnostic",
    "Grammar",
    "GrammarBuilder",
    "IPG",
    "Language",
    "NonTerminal",
    "ParseOutcome",
    "Rule",
    "Terminal",
    "engines",
    "grammar_from_text",
    "__version__",
]
