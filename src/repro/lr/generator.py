"""The conventional parser generator PG and the graph-backed parser control.

This is section 4 of the paper: ``GENERATE-PARSER`` builds the complete
graph of item sets up front, and ``ACTION``/``GOTO`` read it during parsing.
The functions are packaged as :class:`ConventionalGenerator` (PG of the
measurements in section 7) and :class:`GraphControl`, the object the parsing
runtimes of :mod:`repro.runtime` are parameterized with.

``GraphControl`` is also the superclass of the lazy control of section 5 —
the only override there is ``action`` (expand-on-demand), exactly mirroring
how the paper derives its lazy generator from this conventional one.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import NonTerminal, Terminal
from .actions import ACCEPT_ACTION, Action, ActionSet, Reduce, Shift
from .graph import ItemSetGraph
from .states import ACCEPT, ItemSet


class GotoOnNonCompleteState(AssertionError):
    """GOTO was called on a state that is not complete.

    Appendix A proves this never happens for LR-PARSE and PAR-PARSE; the
    control raises (rather than silently expanding) so that any violation
    of the invariant is loud.  ``tests/core/test_appendix_a_invariant.py``
    exercises this across random grammars.
    """


class GraphControl:
    """ACTION and GOTO over a graph of item sets (section 4).

    The runtimes call :meth:`action` with the current state and input
    terminal and :meth:`goto` after reductions.  This conventional variant
    requires every state it touches to be complete already.
    """

    def __init__(self, graph: ItemSetGraph) -> None:
        self.graph = graph

    @property
    def start_state(self) -> ItemSet:
        return self.graph.start

    # -- the paper's ACTION -------------------------------------------------

    def action(self, state: ItemSet, symbol: Terminal) -> ActionSet:
        """All actions the parser can perform in ``state`` on ``symbol``.

        Returns a *set* of actions (as a tuple, reductions first): the
        parallel parser forks on every member; the simple LR parser demands
        at most one.
        """
        if state.needs_expansion:
            raise GotoOnNonCompleteState(
                f"conventional ACTION reached unexpanded state {state!r}; "
                f"use the lazy control for on-demand generation"
            )
        return self._actions_of(state, symbol)

    @staticmethod
    def _actions_of(state: ItemSet, symbol: Terminal) -> ActionSet:
        actions: Tuple[Action, ...] = tuple(
            Reduce(rule) for rule in state.reductions
        )
        target = state.transitions.get(symbol)
        if target is ACCEPT:
            actions += (ACCEPT_ACTION,)
        elif isinstance(target, ItemSet):
            actions += (Shift(target),)
        return actions

    # -- the paper's GOTO ---------------------------------------------------

    def goto(self, state: ItemSet, symbol: NonTerminal) -> ItemSet:
        """The state after reducing a rule that delivered ``symbol``.

        *"Because we assume the graph of item sets to have been generated
        correctly, we can be sure that there is exactly one transition for
        symbol in state.transitions."*  Appendix A guarantees ``state`` is
        complete, which we assert.
        """
        if state.needs_expansion:
            raise GotoOnNonCompleteState(
                f"GOTO called on non-complete state {state!r} "
                f"(violates the Appendix A invariant)"
            )
        target = state.transitions.get(symbol)
        if not isinstance(target, ItemSet):
            raise LookupError(
                f"no GOTO transition on {symbol} from state #{state.uid}"
            )
        return target


class ConventionalGenerator:
    """PG: generate the whole graph of item sets before parsing (section 4).

    Usage::

        pg = ConventionalGenerator(grammar)
        control = pg.generate()        # the expensive up-front phase
        PoolParser(control).parse(tokens)
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self.graph: Optional[ItemSetGraph] = None

    def generate(self) -> GraphControl:
        """Build the complete graph; returns the parser control.

        This is GENERATE-PARSER of section 4: seed the start state, then
        expand while any initial state remains.
        """
        self.graph = ItemSetGraph(self.grammar)
        self.graph.expand_all()
        return GraphControl(self.graph)

    def regenerate(self) -> GraphControl:
        """Throw the old graph away and build a new one.

        This is what a *non*-incremental generator must do after every
        grammar change — the cost the measurements of section 7 put on PG's
        'modify' phase.
        """
        return self.generate()
