"""Dotted rules ("items") — the atoms of LR parse-table construction.

Section 4: *"The kernel field of a set of items contains the rules that are
potentially being recognized by the parser in that state/set of items.  The
dots indicate how far the parser has progressed in each rule."*

An :class:`Item` is an immutable ``(rule, dot)`` pair.  A *kernel* is a
frozen set of items; kernels identify item sets, which is exactly the lookup
``EXPAND`` performs ("When a set of items with kernel kernel' does not yet
exist...").
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Tuple

from ..grammar.rules import Rule
from ..grammar.symbols import Symbol


class Item:
    """A rule with a recognition cursor: ``A ::= alpha . beta``."""

    __slots__ = ("rule", "dot", "_hash")

    def __init__(self, rule: Rule, dot: int = 0) -> None:
        if not 0 <= dot <= len(rule.rhs):
            raise ValueError(f"dot {dot} out of range for {rule}")
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "dot", dot)
        object.__setattr__(self, "_hash", hash((rule, dot)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Item is immutable")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Item):
            return NotImplemented
        return self.dot == other.dot and self.rule == other.rule

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Item") -> bool:
        if not isinstance(other, Item):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self):
        return (*self.rule.sort_key(), self.dot)

    # -- cursor queries ----------------------------------------------------

    @property
    def at_end(self) -> bool:
        """True when the rule has been recognized completely."""
        return self.dot == len(self.rule.rhs)

    @property
    def next_symbol(self) -> Optional[Symbol]:
        """The symbol just after the dot, or None when at the end."""
        if self.at_end:
            return None
        return self.rule.rhs[self.dot]

    def advanced(self) -> "Item":
        """The item with the dot moved one symbol to the right."""
        if self.at_end:
            raise ValueError(f"cannot advance completed item {self}")
        return Item(self.rule, self.dot + 1)

    @property
    def before_dot(self) -> Tuple[Symbol, ...]:
        return self.rule.rhs[: self.dot]

    @property
    def after_dot(self) -> Tuple[Symbol, ...]:
        return self.rule.rhs[self.dot :]

    def __repr__(self) -> str:
        return f"Item({self!s})"

    def __str__(self) -> str:
        parts = [str(s) for s in self.rule.rhs]
        parts.insert(self.dot, "•")
        return f"{self.rule.lhs} ::= {' '.join(parts)}"


Kernel = FrozenSet[Item]


def kernel_of(items: Iterable[Item]) -> Kernel:
    """Freeze ``items`` into a kernel (the identity of an item set)."""
    return frozenset(items)


def sorted_items(items: Iterable[Item]) -> Tuple[Item, ...]:
    """Items in the stable order used throughout for determinism."""
    return tuple(sorted(items))
