"""LR substrate: items, item sets, the graph of item sets, and generators.

* :mod:`repro.lr.graph` — CLOSURE/EXPAND and the graph object (section 4).
* :mod:`repro.lr.generator` — the conventional generator PG plus the
  graph-backed ACTION/GOTO control.
* :mod:`repro.lr.table` — tabular parse tables (Fig. 4.1(b)).
* :mod:`repro.lr.slr` / :mod:`repro.lr.lalr` — SLR(1) and LALR(1)
  constructions (the Yacc baseline of section 7).
"""

from .actions import ACCEPT_ACTION, Accept, Action, ActionSet, Reduce, Shift
from .compiled import CompiledControl, CompiledStats
from .conflicts import Conflict, report
from .generator import ConventionalGenerator, GotoOnNonCompleteState, GraphControl
from .graph import GraphStats, ItemSetGraph
from .items import Item, Kernel, kernel_of, sorted_items
from .lalr import compute_lalr_lookaheads, lalr_table, lalr_table_from_graph
from .serialize import dumps, load_table, loads, save_table, table_from_dict, table_to_dict
from .slr import slr_table, slr_table_from_graph
from .states import ACCEPT, ItemSet, StateType
from .table import (
    DenseTable,
    ParseTable,
    TableControl,
    TableRow,
    lr0_table,
    resolve_conflicts,
)

__all__ = [
    "ACCEPT",
    "ACCEPT_ACTION",
    "Accept",
    "Action",
    "ActionSet",
    "CompiledControl",
    "CompiledStats",
    "Conflict",
    "ConventionalGenerator",
    "DenseTable",
    "GotoOnNonCompleteState",
    "GraphControl",
    "GraphStats",
    "Item",
    "ItemSet",
    "ItemSetGraph",
    "Kernel",
    "ParseTable",
    "Reduce",
    "Shift",
    "StateType",
    "TableControl",
    "TableRow",
    "compute_lalr_lookaheads",
    "kernel_of",
    "lalr_table",
    "lalr_table_from_graph",
    "lr0_table",
    "resolve_conflicts",
    "report",
    "dumps",
    "load_table",
    "loads",
    "save_table",
    "slr_table",
    "slr_table_from_graph",
    "sorted_items",
    "table_from_dict",
    "table_to_dict",
]
