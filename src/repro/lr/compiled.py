"""The compiled control plane: memoized ACTION over a graph-backed control.

The lazy/incremental generators make the parse-time ACTION/GOTO loop the
system's steady state, yet the graph controls recompute
``GraphControl._actions_of`` — a fresh tuple of :class:`Reduce`/
:class:`Shift` objects — on *every* call.  :class:`CompiledControl` wraps
any graph-backed control (conventional or lazy) and memoizes ACTION
results per ``(state, terminal)`` into per-state dicts of pre-built,
shared action tuples, so warm traffic pays two dict lookups per step.

Laziness and incremental MODIFY are preserved exactly:

* a cache miss delegates to the wrapped control, so an initial/dirty state
  is still expanded on demand (section 5) before its actions are cached;
* the wrapper subscribes to :meth:`Grammar.subscribe` and, on every edit,
  flushes precisely the entries of states the generator's MODIFY
  un-expanded (dirty/initial again) or the collector removed.  The
  generator subscribes to the grammar *before* the wrapper is built, so by
  the time the wrapper's observer runs the affected states are already
  marked and the flush is exact — no version counters, no over-flushing.

Only complete states ever have cache entries (ACTION completes a state
before returning), so a surviving entry is always consistent with the
current grammar.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import NonTerminal, Terminal
from .actions import ActionSet, Reduce, Shift
from .graph import ItemSetGraph
from .states import ItemSet

#: uid -> (state object, per-terminal memo of shared action tuples).  The
#: stored state reference both pins the object (uids are never reused, ids
#: could be) and lets the flush re-check the state's life-cycle type.
_StateEntry = Tuple[ItemSet, Dict[Terminal, ActionSet]]

#: Pre-decoded single-action cells (the *step cache* protocol shared with
#: :class:`~repro.lr.table.TableControl`): a deterministic cell is stored
#: as ``(STEP_SHIFT, target)``, ``(STEP_REDUCE, rule, arity, lhs)`` or
#: ``(STEP_ACCEPT,)``; a conflicted or empty cell as ``False``.  Runtime
#: fast paths dispatch on the leading int without touching the action
#: objects at all.
STEP_SHIFT = 1
STEP_REDUCE = 2
STEP_ACCEPT = 3

Step = Any  # Tuple[int, ...] or the False sentinel


def encode_step(actions: ActionSet) -> Step:
    """Pre-decode an ACTION cell for the step-cache protocol."""
    if len(actions) != 1:
        return False
    action = actions[0]
    if isinstance(action, Shift):
        return (STEP_SHIFT, action.target)
    if isinstance(action, Reduce):
        rule = action.rule
        return (STEP_REDUCE, rule, len(rule.rhs), rule.lhs)
    return (STEP_ACCEPT,)


class CompiledStats:
    """ACTION-cache counters, merged into ``IPG.summary()`` and the
    service ``metrics`` command."""

    __slots__ = (
        "action_cache_hits",
        "action_cache_misses",
        "action_cache_flushes",
        "action_cache_evicted",
    )

    def __init__(self) -> None:
        self.action_cache_hits = 0
        self.action_cache_misses = 0
        self.action_cache_flushes = 0
        self.action_cache_evicted = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.action_cache_hits + self.action_cache_misses
        return self.action_cache_hits / lookups if lookups else 0.0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"CompiledStats({self.snapshot()})"


class CompiledControl:
    """Memoizing ACTION/GOTO wrapper around a graph-backed control.

    Parameters
    ----------
    inner:
        The wrapped control (typically a
        :class:`~repro.core.lazy.LazyControl`); must expose
        ``start_state``/``action``/``goto`` and a ``graph``.
    grammar:
        The grammar to observe for invalidation.  Defaults to the wrapped
        graph's grammar.  The wrapper must be constructed *after* the
        generator that repairs the graph has subscribed, so its flush
        observes the post-MODIFY state types.
    """

    def __init__(self, inner: Any, grammar: Optional[Grammar] = None) -> None:
        self.inner = inner
        self.graph: ItemSetGraph = inner.graph
        self.stats = CompiledStats()
        #: The memo itself, exposed read-only as the zero-call probe
        #: surface for runtime fast paths: a parser loop may look up
        #: ``action_cache.get(state.uid)`` and, after verifying the entry's
        #: state identity, read the per-terminal dict directly — reporting
        #: the hits it took via :meth:`count_probe_hits`.  Misses must go
        #: through :meth:`action`.
        self.action_cache: Dict[int, _StateEntry] = {}
        #: state -> {terminal -> pre-decoded step}; keyed by the state
        #: object itself (identity hash) and kept in lock-step with
        #: :attr:`action_cache` by both the miss path and the flush.
        self.fast_step_cache: Dict[ItemSet, Dict[Terminal, Step]] = {}
        if grammar is None:
            grammar = self.graph.grammar
        self._unsubscribe: Callable[[], None] = grammar.subscribe(self._on_edit)

    def close(self) -> None:
        """Detach from the grammar's observer list."""
        self._unsubscribe()

    # -- the control interface -------------------------------------------

    @property
    def start_state(self) -> ItemSet:
        return self.inner.start_state

    def action(self, state: ItemSet, symbol: Terminal) -> ActionSet:
        entry = self.action_cache.get(state.uid)
        if entry is not None and entry[0] is state:
            per_state = entry[1]
            cached = per_state.get(symbol)
            if cached is not None:
                self.stats.action_cache_hits += 1
                return cached
        else:
            per_state = {}
            self.action_cache[state.uid] = (state, per_state)
        self.stats.action_cache_misses += 1
        # Delegation expands initial/dirty states on demand (section 5/6),
        # so after this call the state is complete and the result stable
        # until the next grammar edit flushes it.
        actions = self.inner.action(state, symbol)
        per_state[symbol] = actions
        steps = self.fast_step_cache.get(state)
        if steps is None:
            steps = {}
            self.fast_step_cache[state] = steps
        steps[symbol] = encode_step(actions)
        return actions

    def count_probe_hits(self, hits: int) -> None:
        """Credit ``hits`` direct :attr:`action_cache` probes to the stats.

        Runtime fast paths that bypass :meth:`action` report their hit
        batches here so ``metrics`` still reflects the real hit rate.
        """
        self.stats.action_cache_hits += hits

    def goto(self, state: ItemSet, symbol: NonTerminal) -> ItemSet:
        # GOTO is a single dict probe on a complete state (Appendix A
        # guarantees completeness).  Non-complete states have empty
        # transitions, so every irregular case — missing transition,
        # unexpanded state, accept sentinel — misses the probe and falls
        # through to the wrapped control's strict error handling.
        target = state.transitions.get(symbol)
        if isinstance(target, ItemSet):
            return target
        return self.inner.goto(state, symbol)

    # -- precise invalidation ----------------------------------------------

    def _on_edit(self, _grammar: Grammar, _rule: Rule, _added: bool) -> None:
        """Flush entries of states this MODIFY un-expanded or removed.

        The generator's own observer already ran (it subscribed first), so
        every affected state is dirty/initial — or gone from the graph —
        by now.  Entries of untouched complete states survive: a MODIFY
        only costs the cache what it cost the graph.
        """
        graph = self.graph
        stale = [
            uid
            for uid, (state, _) in self.action_cache.items()
            if state.needs_expansion or state not in graph
        ]
        for uid in stale:
            state = self.action_cache.pop(uid)[0]
            self.fast_step_cache.pop(state, None)
        self.stats.action_cache_flushes += 1
        self.stats.action_cache_evicted += len(stale)

    # -- introspection -----------------------------------------------------

    def cached_states(self) -> int:
        return len(self.action_cache)

    def cached_cells(self) -> int:
        return sum(len(entry[1]) for entry in self.action_cache.values())

    def __repr__(self) -> str:
        return (
            f"CompiledControl({self.cached_states()} states, "
            f"{self.cached_cells()} cells, hit_rate={self.stats.hit_rate:.2f})"
        )
