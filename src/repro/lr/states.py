"""Item sets — the states of the LR automaton, with the paper's life cycle.

Section 4 defines a set of items as an object with fields ``kernel``,
``transitions``, ``reductions`` and ``type``; section 6.2 adds a reference
count and the *dirty* state.  The complete life cycle implemented here:

::

              EXPAND                    MODIFY (gc off)
    initial ─────────► complete ──────────────────────► initial
        ▲                  │
        │                  │ MODIFY (gc on: transitions stashed)
        │   RE-EXPAND      ▼
        └──────────────  dirty

``transitions`` maps a symbol to either another :class:`ItemSet` (a shift
edge for terminals, a GOTO edge for non-terminals) or the :data:`ACCEPT`
sentinel on the end-marker — the paper's special ``($ accept)`` transition.

Item sets compare by *identity*: two distinct states may transiently carry
equal kernels only during start-state re-keying, and the graph enforces
kernel uniqueness.  Identity semantics is also what lets parse stacks share
states (section 3.2).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple, Union

from ..grammar.rules import Rule
from ..grammar.symbols import Symbol
from .items import Item, Kernel, sorted_items


class _AcceptSentinel:
    """Target of the special ``($ accept)`` transition."""

    _instance: Optional["_AcceptSentinel"] = None

    def __new__(cls) -> "_AcceptSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ACCEPT"


#: The accept transition target (section 4: "The transition ($ accept) is a
#: special case, the accept action").
ACCEPT = _AcceptSentinel()

TransitionTarget = Union["ItemSet", _AcceptSentinel]


class StateType(enum.Enum):
    """The ``type`` field of a set of items.

    * ``INITIAL`` — kernel known, transitions/reductions not yet computed
      (open circle in the paper's diagrams).
    * ``COMPLETE`` — fully expanded (black circle).
    * ``DIRTY`` — made initial by ``MODIFY`` but retaining its old
      transitions for the reference-count bookkeeping of section 6.2.
    """

    INITIAL = "initial"
    COMPLETE = "complete"
    DIRTY = "dirty"


class ItemSet:
    """One state of the (partially generated) LR automaton."""

    __slots__ = (
        "uid",
        "kernel",
        "transitions",
        "reductions",
        "type",
        "refcount",
        "old_transitions",
    )

    def __init__(self, uid: int, kernel: Kernel) -> None:
        self.uid = uid
        self.kernel: Kernel = kernel
        self.transitions: Dict[Symbol, TransitionTarget] = {}
        self.reductions: Tuple[Rule, ...] = ()
        self.type = StateType.INITIAL
        self.refcount = 0
        #: Transitions held before this state was made dirty; consumed by
        #: RE-EXPAND to decrement reference counts (section 6.2).
        self.old_transitions: Optional[Dict[Symbol, TransitionTarget]] = None

    # -- type queries -------------------------------------------------

    @property
    def is_initial(self) -> bool:
        return self.type is StateType.INITIAL

    @property
    def is_complete(self) -> bool:
        return self.type is StateType.COMPLETE

    @property
    def is_dirty(self) -> bool:
        return self.type is StateType.DIRTY

    @property
    def needs_expansion(self) -> bool:
        """True for states ACTION must expand before use (initial/dirty)."""
        return self.type is not StateType.COMPLETE

    # -- structure queries ----------------------------------------------

    def successors(self) -> Tuple["ItemSet", ...]:
        """Item sets this state points to (accept sentinel excluded)."""
        return tuple(
            t for t in self.transitions.values() if isinstance(t, ItemSet)
        )

    def has_transition_on(self, symbol: Symbol) -> bool:
        return symbol in self.transitions

    def accepts_on_end(self) -> bool:
        return any(t is ACCEPT for t in self.transitions.values())

    def kernel_items(self) -> Tuple[Item, ...]:
        return sorted_items(self.kernel)

    # -- display -----------------------------------------------------------

    def describe(self) -> str:
        """Multi-line rendering in the style of the paper's figures."""
        marker = {
            StateType.INITIAL: "o",
            StateType.COMPLETE: "*",
            StateType.DIRTY: "~",
        }[self.type]
        lines = [f"({marker}{self.uid})"]
        for item in self.kernel_items():
            flag = "  <reduce>" if item.rule in self.reductions else ""
            lines.append(f"    {item}{flag}")
        for symbol, target in self.transitions.items():
            if target is ACCEPT:
                lines.append(f"    --{symbol}--> accept")
            else:
                lines.append(f"    --{symbol}--> {target.uid}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ItemSet(#{self.uid}, {self.type.value}, {len(self.kernel)} kernel items)"
