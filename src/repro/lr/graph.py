"""The graph of item sets: CLOSURE and EXPAND (section 4).

This module is shared verbatim by all three generators of the paper:

* the conventional generator **PG** (section 4) expands every state before
  parsing starts,
* the lazy generator (section 5) expands states from inside ``ACTION``,
* the incremental generator (section 6) additionally un-expands states via
  ``MODIFY`` and lets the lazy machinery re-expand them.

Determinism: closures are produced in a stable order (sorted kernel, then
breadth-first discovery with sorted rule lists), and ``EXPAND`` creates
successor states in first-occurrence order of the symbol after the dot.
Together with a FIFO expansion queue in PG this reproduces the exact state
numbering of the paper's Fig. 4.1 — which the test suite checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import END, NonTerminal, Symbol
from .items import Item, Kernel, kernel_of, sorted_items
from .states import ACCEPT, ItemSet, StateType


class GraphStats:
    """Counters the benchmarks and EXPERIMENTS.md report on.

    ``expansions`` counts every EXPAND call (including re-expansions after
    a grammar modification); ``states_created`` counts item sets ever
    allocated; ``states_removed`` counts garbage-collected ones;
    ``states_restored`` counts states whose EXPAND result was adopted from
    a persistent table store instead of being recomputed.
    """

    __slots__ = (
        "expansions",
        "states_created",
        "states_removed",
        "closure_items",
        "states_restored",
    )

    def __init__(self) -> None:
        self.expansions = 0
        self.states_created = 0
        self.states_removed = 0
        self.closure_items = 0
        self.states_restored = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "expansions": self.expansions,
            "states_created": self.states_created,
            "states_removed": self.states_removed,
            "closure_items": self.closure_items,
            "states_restored": self.states_restored,
        }

    def __repr__(self) -> str:
        return f"GraphStats({self.snapshot()})"


class ItemSetGraph:
    """Holds the paper's global variables ``Itemsets`` and ``Grammar``.

    Section 5.1: *"The implementation of the lazy parser generator has to
    treat variables Itemsets and Grammar of GENERATE-PARSER as global
    variables, because they are needed during the expansion of sets of
    items."*  Here they are instance state instead, so several independent
    parsers can coexist.
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self._by_kernel: Dict[Kernel, ItemSet] = {}
        self._states: Dict[int, ItemSet] = {}
        self._next_uid = 0
        self.stats = GraphStats()
        self.start = self._create_state(self._start_kernel())
        # The start state is pinned: the root of the graph is never garbage.
        self.start.refcount += 1

    # -- kernel bookkeeping ---------------------------------------------

    def _start_kernel(self) -> Kernel:
        """Kernel of the start state: all START rules with the dot in front.

        GENERATE-PARSER: *"The kernel field of start-itemset is composed of
        all rules in Grammar with START as left-hand side, with the dot
        placed before the first symbol of the right-hand side."*
        """
        return kernel_of(
            Item(rule, 0) for rule in self.grammar.start_rules()
        )

    def refresh_start_kernel(self) -> None:
        """Re-derive the start kernel after a START-rule modification.

        MODIFY's special case: when the modified rule defines ``START``,
        only the start state can contain ``START ::= .beta`` in its kernel,
        so its kernel is updated in place and the state is made initial.
        """
        new_kernel = self._start_kernel()
        if new_kernel == self.start.kernel:
            return
        del self._by_kernel[self.start.kernel]
        self.start.kernel = new_kernel
        self._by_kernel[new_kernel] = self.start

    # -- state access ------------------------------------------------------

    def states(self) -> Tuple[ItemSet, ...]:
        """All live item sets, in creation order (the paper's Itemsets)."""
        return tuple(self._states[uid] for uid in sorted(self._states))

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, itemset: ItemSet) -> bool:
        return self._states.get(itemset.uid) is itemset

    def state_by_kernel(self, kernel: Kernel) -> Optional[ItemSet]:
        return self._by_kernel.get(kernel)

    def complete_states(self) -> Tuple[ItemSet, ...]:
        return tuple(s for s in self.states() if s.is_complete)

    def pending_states(self) -> Tuple[ItemSet, ...]:
        """States with type initial or dirty (awaiting (re-)expansion)."""
        return tuple(s for s in self.states() if s.needs_expansion)

    def _create_state(self, kernel: Kernel) -> ItemSet:
        existing = self._by_kernel.get(kernel)
        if existing is not None:
            raise ValueError(f"state with this kernel already exists: {existing!r}")
        state = ItemSet(self._next_uid, kernel)
        self._next_uid += 1
        self._states[state.uid] = state
        self._by_kernel[kernel] = state
        self.stats.states_created += 1
        return state

    def remove_state(self, itemset: ItemSet) -> None:
        """Drop a state from Itemsets (used by the garbage collector)."""
        if itemset is self.start:
            raise ValueError("the start state is pinned and cannot be removed")
        self._states.pop(itemset.uid, None)
        if self._by_kernel.get(itemset.kernel) is itemset:
            del self._by_kernel[itemset.kernel]
        self.stats.states_removed += 1

    # -- CLOSURE (section 4) ---------------------------------------------

    def closure(self, kernel: Iterable[Item]) -> Tuple[Item, ...]:
        """Extend ``kernel`` with all rules that may become applicable.

        *"If there is a rule A ::= alpha . B beta in the kernel it means
        that non-terminal B may become applicable.  Hence, the kernel can be
        extended with all rules B ::= .gamma."*

        Returns the closure as an ordered tuple: sorted kernel items first,
        then discovered items in breadth-first order.  The order is what
        downstream state numbering inherits.
        """
        ordered: List[Item] = list(sorted_items(kernel))
        seen: Set[Item] = set(ordered)
        queue_index = 0
        while queue_index < len(ordered):
            item = ordered[queue_index]
            queue_index += 1
            symbol = item.next_symbol
            if not isinstance(symbol, NonTerminal):
                continue
            for rule in self.grammar.rules_for(symbol):
                fresh = Item(rule, 0)
                if fresh not in seen:
                    seen.add(fresh)
                    ordered.append(fresh)
        self.stats.closure_items += len(ordered)
        return tuple(ordered)

    # -- EXPAND (section 4) ------------------------------------------------

    def expand(self, itemset: ItemSet) -> None:
        """Transform an initial (or dirty) set of items into a complete one.

        Follows EXPAND of section 4 exactly: compute the closure, partition
        it by the symbol after the dot, link (or create) the successor
        state for each partition, then derive reductions (and the accept
        transition) from items with the dot at the end.

        Reference counts of link targets are incremented here, as section
        6.2 prescribes ("Routine EXPAND sets and increments the refcount
        fields of the sets of items it creates transitions to").  Dirty
        states are *not* special-cased here — RE-EXPAND in
        :mod:`repro.core.gc` wraps this routine and settles the old
        transitions afterwards.
        """
        closure_items = self.closure(itemset.kernel)

        by_symbol: Dict[Symbol, List[Item]] = {}
        symbol_order: List[Symbol] = []
        completed: List[Item] = []
        for item in closure_items:
            symbol = item.next_symbol
            if symbol is None:
                completed.append(item)
                continue
            bucket = by_symbol.get(symbol)
            if bucket is None:
                by_symbol[symbol] = [item]
                symbol_order.append(symbol)
            else:
                bucket.append(item)

        itemset.transitions = {}
        reductions: List[Rule] = []

        for symbol in symbol_order:
            advanced = kernel_of(item.advanced() for item in by_symbol[symbol])
            target = self._by_kernel.get(advanced)
            if target is None:
                target = self._create_state(advanced)
            itemset.transitions[symbol] = target
            target.refcount += 1

        for item in completed:
            if item.rule.lhs == self.grammar.start:
                itemset.transitions[END] = ACCEPT
            elif item.rule not in reductions:
                reductions.append(item.rule)

        itemset.reductions = tuple(reductions)
        itemset.type = StateType.COMPLETE
        self.stats.expansions += 1

    # -- warm restore (persistent table store) ----------------------------

    def materialize(self, kernel: Kernel) -> ItemSet:
        """Get-or-create the state for ``kernel`` *without* expanding it.

        The persistent table store resolves transition targets through this
        before adopting a stored EXPAND result: targets that were never
        expanded in the saving session come back as plain initial states,
        exactly as a fresh EXPAND would have created them.
        """
        state = self._by_kernel.get(kernel)
        if state is None:
            state = self._create_state(kernel)
        return state

    def adopt_expansion(
        self,
        itemset: ItemSet,
        transitions: Iterable[Tuple[Symbol, object]],
        reductions: Iterable[Rule],
    ) -> None:
        """Install a previously computed EXPAND result on an initial state.

        The caller (:mod:`repro.lr.tablestore`) has already validated that
        the stored result describes *this* kernel under *this* grammar, so
        the routine mirrors :meth:`expand` exactly — transition dict built
        in the given order, reference counts of linked targets incremented,
        reductions frozen, state marked complete — but performs no closure
        computation.  Only initial states may adopt: dirty states carry old
        transitions that RE-EXPAND must settle, so they always re-expand.
        """
        if itemset.type is not StateType.INITIAL:
            raise ValueError(
                f"only initial states can adopt a stored expansion: {itemset!r}"
            )
        itemset.transitions = {}
        for symbol, target in transitions:
            itemset.transitions[symbol] = target
            if target is not ACCEPT:
                target.refcount += 1
        itemset.reductions = tuple(reductions)
        itemset.type = StateType.COMPLETE
        self.stats.states_restored += 1

    # -- whole-graph helpers ---------------------------------------------

    def expand_all(self) -> None:
        """Expand until no initial states remain (PG's generation loop).

        A FIFO queue over creation order gives the breadth-first numbering
        of the paper's figures.
        """
        from collections import deque

        queue = deque(s for s in self.states() if s.needs_expansion)
        while queue:
            state = queue.popleft()
            if state.uid not in self._states or not state.needs_expansion:
                continue
            before = self._next_uid
            self.expand(state)
            queue.extend(
                self._states[uid] for uid in range(before, self._next_uid)
            )

    def fraction_complete(self) -> float:
        """Fraction of live states that are complete (the §5.2 metric)."""
        total = len(self._states)
        if not total:
            return 0.0
        done = sum(1 for s in self._states.values() if s.is_complete)
        return done / total

    def validate(self) -> None:
        """Internal consistency checks (used by tests, not hot paths)."""
        for state in self._states.values():
            assert self._by_kernel.get(state.kernel) is state, (
                f"kernel index out of sync for {state!r}"
            )
            if state.is_complete:
                for symbol, target in state.transitions.items():
                    if target is ACCEPT:
                        assert symbol == END
                        continue
                    assert isinstance(target, ItemSet)
                    assert target.uid in self._states, (
                        f"{state!r} points at removed state {target!r}"
                    )

    def to_dot(self) -> str:
        """Graphviz rendering of the current graph (debugging aid)."""
        lines = ["digraph itemsets {", "  node [shape=box, fontname=monospace];"]
        for state in self.states():
            shape = "filled" if state.is_complete else "dashed"
            label = "\\l".join(str(i) for i in state.kernel_items()) + "\\l"
            lines.append(
                f'  s{state.uid} [label="{state.uid}\\n{label}", style={shape}];'
            )
            for symbol, target in state.transitions.items():
                if target is ACCEPT:
                    lines.append(
                        f'  s{state.uid} -> accept [label="{symbol}"];'
                    )
                else:
                    lines.append(
                        f'  s{state.uid} -> s{target.uid} [label="{symbol}"];'
                    )
        lines.append("}")
        return "\n".join(lines)
