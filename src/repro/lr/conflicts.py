"""Parse-table conflict descriptions.

LR(0) tables for interesting grammars are full of conflicts — the booleans
table of Fig. 4.1(b) contains ``s5/r3``-style entries — and that is fine for
the parallel parser, which forks on them.  The deterministic baselines
(Yacc-style LALR(1), the simple LR-PARSE) instead require a conflict-free
table, so conflicts must be detectable and reportable.
"""

from __future__ import annotations

from typing import Sequence

from ..grammar.symbols import Terminal
from .actions import Action, Reduce, Shift


class Conflict:
    """Several possible actions in one (state, terminal) table cell."""

    __slots__ = ("state", "terminal", "actions")

    def __init__(self, state: int, terminal: Terminal, actions: Sequence[Action]) -> None:
        self.state = state
        self.terminal = terminal
        self.actions = tuple(actions)

    @property
    def kind(self) -> str:
        """``shift/reduce`` or ``reduce/reduce`` (or both)."""
        shifts = sum(1 for a in self.actions if isinstance(a, Shift))
        reduces = sum(1 for a in self.actions if isinstance(a, Reduce))
        if shifts and reduces:
            return "shift/reduce"
        if reduces > 1:
            return "reduce/reduce"
        return "other"

    def __repr__(self) -> str:
        return (
            f"Conflict(state={self.state}, on={self.terminal}, "
            f"kind={self.kind}, {len(self.actions)} actions)"
        )

    def describe(self) -> str:
        lines = [f"state {self.state}, on {self.terminal!s} ({self.kind}):"]
        for action in self.actions:
            lines.append(f"    {action!r}")
        return "\n".join(lines)


def report(conflicts: Sequence[Conflict]) -> str:
    """Human-readable multi-conflict report (Yacc's 'n conflicts' message)."""
    if not conflicts:
        return "no conflicts"
    shift_reduce = sum(1 for c in conflicts if c.kind == "shift/reduce")
    reduce_reduce = sum(1 for c in conflicts if c.kind == "reduce/reduce")
    header = (
        f"{len(conflicts)} conflicts "
        f"({shift_reduce} shift/reduce, {reduce_reduce} reduce/reduce)"
    )
    return "\n".join([header] + [c.describe() for c in conflicts])
