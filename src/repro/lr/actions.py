"""Parser actions: shift, reduce, accept.

Section 3.1: *"An action can be either a 'shift', 'reduce', 'accept', or
'error'."*  Errors are represented, as in the paper, by an *empty* action
set rather than an explicit object.

The same action classes serve both control styles:

* graph-backed control (``Shift.target`` is an ``ItemSet``), used by PG and
  IPG, and
* table-backed control (``Shift.target`` is an integer state number), used
  by the tabular LR parser of the Yacc baseline.
"""

from __future__ import annotations

from typing import Any, Tuple

from ..grammar.rules import Rule


class Action:
    """Base class; instances are immutable value objects."""

    __slots__ = ()


class Shift(Action):
    """Advance one step and move to ``target`` (an item set or state id)."""

    __slots__ = ("target",)

    def __init__(self, target: Any) -> None:
        object.__setattr__(self, "target", target)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Shift is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Shift) and other.target == self.target

    def __hash__(self) -> int:
        return hash(("shift", self.target))

    def __repr__(self) -> str:
        return f"Shift({self.target!r})"


class Reduce(Action):
    """The rule ``rule`` has been recognized completely."""

    __slots__ = ("rule",)

    def __init__(self, rule: Rule) -> None:
        object.__setattr__(self, "rule", rule)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Reduce is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Reduce) and other.rule == self.rule

    def __hash__(self) -> int:
        return hash(("reduce", self.rule))

    def __repr__(self) -> str:
        return f"Reduce({self.rule!s})"


class Accept(Action):
    """The whole input has been recognized."""

    __slots__ = ()

    _instance = None

    def __new__(cls) -> "Accept":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Accept)

    def __hash__(self) -> int:
        return hash("accept")

    def __repr__(self) -> str:
        return "Accept()"


ACCEPT_ACTION = Accept()

ActionSet = Tuple[Action, ...]
