"""LALR(1) table construction — the Yacc baseline of section 7.

The paper's measurements pit IPG against Yacc, which *"generates LALR(1)
tables"*; its Postscript contrasts IPG's incremental LR(0) approach with
Horspool's incremental LALR(1), noting that lookahead sets are what make
incremental LALR generation hard.  This module provides the conventional,
non-incremental LALR(1) generator those comparisons need.

Algorithm: the classic lookahead propagation scheme over the LR(0)
automaton (Aho–Sethi–Ullman, Algorithm 4.12 — the paper's reference
[ASU86]):

1. build the full LR(0) graph;
2. for every kernel item, run an LR(1) closure with a *dummy* lookahead to
   discover which lookaheads are generated **spontaneously** and which
   **propagate** along transitions;
3. iterate propagation to a fixpoint;
4. derive per-state reduce lookaheads by an LR(1) closure of each state's
   kernel items with their final lookahead sets.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..grammar.analysis import GrammarAnalysis
from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import END, NonTerminal, Terminal
from .graph import ItemSetGraph
from .items import Item
from .states import ACCEPT, ItemSet
from .table import ParseTable, TableRow, _index_graph

#: Dummy lookahead used to detect propagation; the NUL prefix keeps it from
#: colliding with any user terminal.
_DUMMY = Terminal("\x00#")


def _lr1_closure(
    seeds: Iterable[Tuple[Item, Terminal]],
    grammar: Grammar,
    analysis: GrammarAnalysis,
) -> FrozenSet[Tuple[Item, Terminal]]:
    """LR(1) closure of ``(item, lookahead)`` pairs.

    For an item ``A ::= alpha . B beta`` with lookahead ``a``, every rule
    ``B ::= gamma`` enters the closure with each lookahead in
    FIRST(beta a).
    """
    closure: Set[Tuple[Item, Terminal]] = set(seeds)
    work: List[Tuple[Item, Terminal]] = list(closure)
    while work:
        item, lookahead = work.pop()
        symbol = item.next_symbol
        if not isinstance(symbol, NonTerminal):
            continue
        tail = item.after_dot[1:]
        lookaheads: Set[Terminal] = set(analysis.first_of(tail))
        if analysis.sequence_nullable(tail):
            lookaheads.add(lookahead)
        for rule in grammar.rules_for(symbol):
            fresh_item = Item(rule, 0)
            for la in lookaheads:
                pair = (fresh_item, la)
                if pair not in closure:
                    closure.add(pair)
                    work.append(pair)
    return frozenset(closure)


def compute_lalr_lookaheads(
    graph: ItemSetGraph,
) -> Dict[Tuple[int, Item], FrozenSet[Terminal]]:
    """Lookahead sets for every kernel item of every state."""
    grammar = graph.grammar
    analysis = GrammarAnalysis(grammar)

    lookaheads: Dict[Tuple[int, Item], Set[Terminal]] = {}
    propagates: Dict[Tuple[int, Item], Set[Tuple[int, Item]]] = {}

    states = graph.states()
    for state in states:
        for kernel_item in state.kernel_items():
            source = (state.uid, kernel_item)
            lookaheads.setdefault(source, set())
            for item, la in _lr1_closure(
                [(kernel_item, _DUMMY)], grammar, analysis
            ):
                symbol = item.next_symbol
                if symbol is None:
                    continue
                target_state = state.transitions.get(symbol)
                if not isinstance(target_state, ItemSet):
                    continue
                target = (target_state.uid, item.advanced())
                if la == _DUMMY:
                    propagates.setdefault(source, set()).add(target)
                else:
                    lookaheads.setdefault(target, set()).add(la)

    for kernel_item in graph.start.kernel_items():
        lookaheads.setdefault((graph.start.uid, kernel_item), set()).add(END)

    changed = True
    while changed:
        changed = False
        for source, targets in propagates.items():
            source_las = lookaheads.get(source, set())
            for target in targets:
                target_las = lookaheads.setdefault(target, set())
                before = len(target_las)
                target_las |= source_las
                if len(target_las) != before:
                    changed = True

    return {key: frozenset(las) for key, las in lookaheads.items()}


def lalr_table(grammar: Grammar) -> ParseTable:
    """Build the full LALR(1) parse table (the Yacc construction phase)."""
    graph = ItemSetGraph(grammar)
    graph.expand_all()
    return lalr_table_from_graph(graph)


def lalr_table_from_graph(graph: ItemSetGraph) -> ParseTable:
    grammar = graph.grammar
    analysis = GrammarAnalysis(grammar)
    kernel_lookaheads = compute_lalr_lookaheads(graph)

    mapping, states = _index_graph(graph)
    rows: List[TableRow] = []
    for state in states:
        row = TableRow()
        for symbol, target in state.transitions.items():
            if target is ACCEPT:
                row.accepts = True
            elif isinstance(symbol, Terminal):
                row.shifts[symbol] = mapping[target.uid]
            else:
                row.gotos[symbol] = mapping[target.uid]

        # Reduce lookaheads come from the LR(1) closure of the kernel with
        # its final LALR lookahead sets (this also covers epsilon rules,
        # whose completed items only ever appear in closures).
        seeds: List[Tuple[Item, Terminal]] = []
        for kernel_item in state.kernel_items():
            for la in kernel_lookaheads.get((state.uid, kernel_item), ()):
                seeds.append((kernel_item, la))
        reduce_lookaheads: Dict[Rule, Set[Terminal]] = {}
        for item, la in _lr1_closure(seeds, grammar, analysis):
            if item.at_end and item.rule.lhs != grammar.start and la != _DUMMY:
                reduce_lookaheads.setdefault(item.rule, set()).add(la)
        row.reduces = [
            (rule, frozenset(las))
            for rule, las in sorted(
                reduce_lookaheads.items(), key=lambda kv: kv[0].sort_key()
            )
        ]
        rows.append(row)

    rule_numbers = {rule: i for i, rule in enumerate(sorted(grammar.rules))}
    return ParseTable(
        rows,
        start=mapping[graph.start.uid],
        terminals=sorted(grammar.terminals),
        nonterminals=sorted(grammar.nonterminals - {grammar.start}),
        rule_numbers=rule_numbers,
    )
