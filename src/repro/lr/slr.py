"""SLR(1) table construction.

SLR(1) refines the LR(0) table by restricting each reduction ``A ::= beta``
to the terminals in FOLLOW(A).  It sits between the paper's two poles —
LR(0) (what IPG generates incrementally) and LALR(1) (what Yacc generates) —
and the ablation bench ``bench_ablation_lr0_vs_lalr`` uses all three to show
the generation-time/parse-determinism trade-off the Postscript discusses.
"""

from __future__ import annotations

from typing import List

from ..grammar.analysis import GrammarAnalysis
from ..grammar.grammar import Grammar
from ..grammar.symbols import Terminal
from .graph import ItemSetGraph
from .states import ACCEPT
from .table import ParseTable, TableRow, _index_graph


def slr_table(grammar: Grammar) -> ParseTable:
    """Build the full LR(0) automaton, then attach FOLLOW-restricted reduces."""
    graph = ItemSetGraph(grammar)
    graph.expand_all()
    return slr_table_from_graph(graph)


def slr_table_from_graph(graph: ItemSetGraph) -> ParseTable:
    grammar = graph.grammar
    analysis = GrammarAnalysis(grammar)
    mapping, states = _index_graph(graph)
    rows: List[TableRow] = []
    for state in states:
        if state.needs_expansion:
            raise ValueError(f"state #{state.uid} not expanded")
        row = TableRow()
        for symbol, target in state.transitions.items():
            if target is ACCEPT:
                row.accepts = True
            elif isinstance(symbol, Terminal):
                row.shifts[symbol] = mapping[target.uid]
            else:
                row.gotos[symbol] = mapping[target.uid]
        row.reduces = [
            (rule, analysis.follow(rule.lhs)) for rule in state.reductions
        ]
        rows.append(row)
    rule_numbers = {rule: i for i, rule in enumerate(sorted(grammar.rules))}
    return ParseTable(
        rows,
        start=mapping[graph.start.uid],
        terminals=sorted(grammar.terminals),
        nonterminals=sorted(grammar.nonterminals - {grammar.start}),
        rule_numbers=rule_numbers,
    )
