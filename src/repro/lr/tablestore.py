"""Persistent content-addressed store for materialized LR control state.

Section 4 frames a parse table as *"a program running on an LR-parsing
machine"*; this module is the program cache.  Every state the lazy or
conventional generator materializes is an EXPAND result that depends only
on (a) the state's kernel and (b) the rules of the non-terminals reachable
through the closure from that kernel.  Hash exactly those two things and
the result becomes content-addressed: a new process, a respawned
process-mode shard child, a corpus worker session, or the next CI run can
adopt the stored expansion instead of recomputing it — and two sessions
whose grammars merely *share a subgrammar* hit the same entries.

Layout under the store root::

    states/<state_key>.json      one EXPAND result (shared across grammars)
    manifests/<grammar_key>.json the state keys one grammar materialized
    tables/<grammar_key>.json    the dense LR(0) table for one grammar

Keys are SHA-256 hex digests.  ``state_key`` hashes the canonicalized
kernel plus the *relevant rules* — all rules of every non-terminal
reachable from the kernel's dotted non-terminals through leftmost-symbol
closure edges — plus the start-symbol name (which decides accept vs
reduce).  Any grammar edit that could change the EXPAND result changes the
key, so entries are self-invalidating: there is no invalidation protocol,
stale entries are simply never addressed again.

Trust model: nothing read from disk is trusted.  Entries are decoded
defensively, re-keyed under the *current* grammar (a mismatch means the
entry belongs to a different subgrammar and is skipped), and corrupt or
version-mismatched files are unlinked so the next write-back repairs them.
Writes go through :func:`~repro.lr.serialize.save_payload`
(temp + fsync + rename), so concurrent writers — two shard children
materializing the same state — race safely: both write identical content
and the rename is atomic.
"""

from __future__ import annotations

import hashlib
import os
import weakref
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import END, NonTerminal, Terminal
from .actions import ACCEPT_ACTION, Accept, ActionSet, Reduce, Shift
from .graph import ItemSetGraph
from .items import Item, Kernel, kernel_of, sorted_items
from .serialize import (
    _rule_from_json,
    _rule_to_json,
    _symbol_from_json,
    _symbol_to_json,
    load_payload,
    save_payload,
    table_from_dict,
    table_to_dict,
)
from .states import ACCEPT, ItemSet, StateType
from .table import DenseTable, ParseTable

__all__ = ["STORE_FORMAT_VERSION", "TableStore"]

#: Version stamp of every stored payload.  It is also mixed into the
#: content keys, so a format bump orphans old entries instead of having to
#: detect and migrate them — the store is a cache, regeneration is cheap.
STORE_FORMAT_VERSION = 1

_ReachMemo = Dict[NonTerminal, Set[NonTerminal]]

#: Decoded transition target: either the ACCEPT sentinel or a kernel.
_Target = Any


class _PassMemo:
    """Scratch caches for one save/restore pass over one grammar revision.

    Neighbouring states overwhelmingly share closure-reachable sets, so
    both the reachability relation and the rendered relevant-rules text
    block (the expensive half of :meth:`TableStore.state_key`) are
    memoized for the duration of a pass and thrown away with it.
    """

    __slots__ = ("reach", "rules_text")

    def __init__(self) -> None:
        self.reach: _ReachMemo = {}
        self.rules_text: Dict[FrozenSet[NonTerminal], str] = {}


def _closure_reach(
    seed: NonTerminal, grammar: Grammar, memo: _ReachMemo
) -> Set[NonTerminal]:
    """Non-terminals whose rules CLOSURE can pull in starting from ``seed``.

    CLOSURE adds ``B ::= .gamma`` for a dotted ``B``, and the freshly added
    item immediately exposes ``gamma[0]`` — so the reachability relation is
    ``B -> rhs[0]`` over ``B``'s rules.  Memoized per seed for the duration
    of one save/restore pass (``memo`` is keyed per grammar revision by the
    caller).
    """
    cached = memo.get(seed)
    if cached is not None:
        return cached
    reached: Set[NonTerminal] = {seed}
    stack: List[NonTerminal] = [seed]
    while stack:
        current = stack.pop()
        for rule in grammar.rules_for(current):
            first = rule.rhs[0] if rule.rhs else None
            if isinstance(first, NonTerminal) and first not in reached:
                reached.add(first)
                stack.append(first)
    memo[seed] = reached
    return reached


def _relevant_rules(
    kernel: Kernel, grammar: Grammar, memo: _ReachMemo
) -> Tuple[Rule, ...]:
    """Every rule that can influence the EXPAND result of ``kernel``."""
    reached: Set[NonTerminal] = set()
    for item in kernel:
        symbol = item.next_symbol
        if isinstance(symbol, NonTerminal):
            reached |= _closure_reach(symbol, grammar, memo)
    rules: Set[Rule] = set()
    for nonterminal in reached:
        rules.update(grammar.rules_for(nonterminal))
    return tuple(sorted(rules))


def _relevant_rules_text(
    kernel: Kernel, grammar: Grammar, memo: _PassMemo
) -> str:
    """The relevant-rules block of a state key, memoized per reach set."""
    reached: Set[NonTerminal] = set()
    for item in kernel:
        symbol = item.next_symbol
        if isinstance(symbol, NonTerminal):
            reached |= _closure_reach(symbol, grammar, memo.reach)
    key = frozenset(reached)
    text = memo.rules_text.get(key)
    if text is None:
        rules: Set[Rule] = set()
        for nonterminal in reached:
            rules.update(grammar.rules_for(nonterminal))
        text = "\n".join(str(rule) for rule in sorted(rules))
        memo.rules_text[key] = text
    return text


def _encode_kernel(kernel: Kernel) -> List[List[Any]]:
    return [
        [_rule_to_json(item.rule), item.dot] for item in sorted_items(kernel)
    ]


def compute_grammar_key(grammar: Grammar) -> str:
    """The raw (unmemoized) whole-grammar content hash."""
    payload = "\n".join(
        [
            f"store {STORE_FORMAT_VERSION}",
            f"start {grammar.start.name}",
            grammar.pretty(),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TableStore:
    """On-disk content-addressed cache of LR control-plane state.

    One instance may be shared by many languages, sessions, and processes;
    all methods are safe under concurrent readers and writers (atomic
    renames, defensive decoding — see the module docstring).
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        self._states_dir = os.path.join(self.root, "states")
        self._manifests_dir = os.path.join(self.root, "manifests")
        self._tables_dir = os.path.join(self.root, "tables")
        for directory in (
            self._states_dir,
            self._manifests_dir,
            self._tables_dir,
        ):
            os.makedirs(directory, exist_ok=True)
        #: states adopted / entries written since construction (telemetry)
        self.restored_states = 0
        self.written_states = 0
        #: (id(grammar) -> (weakref, revision, key)) grammar-key memo
        self._grammar_keys: Dict[int, Tuple[Any, int, str]] = {}

    def __repr__(self) -> str:
        return f"TableStore({self.root!r})"

    # -- content keys ------------------------------------------------------

    def grammar_key(self, grammar: Grammar) -> str:
        """Content hash of a whole grammar (manifest / dense-table key).

        Memoized per (grammar identity, revision): a warm start consults
        it several times — manifest walk, table load — and ``pretty()``
        renders the whole grammar each time.  The weakref guards against
        ``id()`` reuse after a grammar is collected.
        """
        ident = id(grammar)
        cached = self._grammar_keys.get(ident)
        if cached is not None:
            ref, revision, key = cached
            if ref() is grammar and revision == grammar.revision:
                return key
        key = compute_grammar_key(grammar)
        try:
            self._grammar_keys[ident] = (
                weakref.ref(grammar),
                grammar.revision,
                key,
            )
        except TypeError:  # pragma: no cover - non-weakrefable stub
            pass
        return key

    @staticmethod
    def state_key(
        kernel: Kernel, grammar: Grammar, memo: Optional[_PassMemo] = None
    ) -> str:
        """Content hash of one state's EXPAND inputs.

        Kernel (canonically sorted) + relevant rules (sorted) + start
        symbol.  Two grammars sharing a subgrammar produce identical keys
        for the states inside it, which is what makes entries shareable
        across sessions and tenants.
        """
        if memo is None:
            memo = _PassMemo()
        lines = [
            f"store {STORE_FORMAT_VERSION}",
            f"start {grammar.start.name}",
            "kernel",
        ]
        lines.extend(str(item) for item in sorted_items(kernel))
        lines.append("rules")
        lines.append(_relevant_rules_text(kernel, grammar, memo))
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()

    # -- paths and raw IO --------------------------------------------------

    def _state_path(self, key: str) -> str:
        return os.path.join(self._states_dir, f"{key}.json")

    def _manifest_path(self, key: str) -> str:
        return os.path.join(self._manifests_dir, f"{key}.json")

    def _table_path(self, key: str) -> str:
        return os.path.join(self._tables_dir, f"{key}.json")

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _load(self, path: str) -> Optional[Dict[str, Any]]:
        """Read a payload; unlink and ignore anything unreadable.

        A half-written file cannot exist (atomic rename), so an unreadable
        one is corruption — dropping it lets the next save repair the
        entry instead of shadowing it forever.
        """
        try:
            payload = load_payload(path)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if payload.get("format") != STORE_FORMAT_VERSION:
            self._discard(path)
            return None
        return payload

    # -- state entries -----------------------------------------------------

    def _encode_state(
        self, state: ItemSet, control: Optional[Any]
    ) -> Dict[str, Any]:
        transitions: List[List[Any]] = []
        for symbol, target in state.transitions.items():
            if target is ACCEPT:
                transitions.append([_symbol_to_json(symbol), "accept"])
            else:
                transitions.append(
                    [_symbol_to_json(symbol), _encode_kernel(target.kernel)]
                )
        hot: List[str] = []
        if control is not None:
            cached = getattr(control, "action_cache", {}).get(state.uid)
            if cached is not None and cached[0] is state:
                hot = sorted(terminal.name for terminal in cached[1])
        return {
            "format": STORE_FORMAT_VERSION,
            "kernel": _encode_kernel(state.kernel),
            "transitions": transitions,
            "reductions": [_rule_to_json(rule) for rule in state.reductions],
            "hot": hot,
        }

    @staticmethod
    def _decode_items(
        encoded: Any, canon: Dict[Rule, Rule]
    ) -> Optional[List[Item]]:
        items: List[Item] = []
        for rule_json, dot in encoded:
            rule = canon.get(_rule_from_json(rule_json))
            if rule is None or not 0 <= dot <= len(rule.rhs):
                return None
            items.append(Item(rule, dot))
        return items or None

    def _decode_state(
        self, entry: Dict[str, Any], canon: Dict[Rule, Rule]
    ) -> Optional[
        Tuple[
            Kernel,
            List[Tuple[Any, _Target]],
            List[Rule],
            Tuple[str, ...],
        ]
    ]:
        """Decode an entry against the current grammar; None if inapplicable.

        ``None`` covers both corruption and entries whose rules simply do
        not exist in this grammar (valid entries of *another* grammar — the
        caller decides whether to discard based on which case it is, via
        the re-keying check).
        """
        try:
            kernel_items = self._decode_items(entry["kernel"], canon)
            if kernel_items is None:
                return None
            kernel = kernel_of(kernel_items)
            transitions: List[Tuple[Any, _Target]] = []
            for symbol_json, target in entry["transitions"]:
                symbol = _symbol_from_json(symbol_json)
                if target == "accept":
                    if symbol is not END:
                        return None
                    transitions.append((symbol, ACCEPT))
                else:
                    target_items = self._decode_items(target, canon)
                    if target_items is None:
                        return None
                    transitions.append((symbol, kernel_of(target_items)))
            reductions: List[Rule] = []
            for rule_json in entry["reductions"]:
                rule = canon.get(_rule_from_json(rule_json))
                if rule is None:
                    return None
                reductions.append(rule)
            hot = tuple(str(name) for name in entry.get("hot", ()))
        except (KeyError, TypeError, ValueError, IndexError):
            return None
        return kernel, transitions, reductions, hot

    # -- graph save/restore ------------------------------------------------

    def save_graph(
        self, graph: ItemSetGraph, control: Optional[Any] = None
    ) -> int:
        """Persist every complete state of ``graph``; return entries written.

        Existing entries are skipped (same key ⇒ same content), so the
        steady-state cost of a warm session re-saving is one manifest
        write.  The manifest unions with whatever a concurrent session
        already listed for this grammar — manifests only grow, toward the
        full automaton.
        """
        grammar = graph.grammar
        memo = _PassMemo()
        keys: List[str] = []
        written = 0
        if control is not None:
            # Hot-terminal lists ride on the compiled control's memo.
            control = control if hasattr(control, "action_cache") else None
        for state in graph.states():
            if not state.is_complete:
                continue
            key = self.state_key(state.kernel, grammar, memo)
            keys.append(key)
            path = self._state_path(key)
            if os.path.exists(path):
                continue
            save_payload(self._encode_state(state, control), path)
            written += 1
        if keys:
            manifest_path = self._manifest_path(self.grammar_key(grammar))
            merged = dict.fromkeys(keys)
            existing = self._load(manifest_path)
            if existing is not None:
                previous = existing.get("states")
                if isinstance(previous, list):
                    for key in previous:
                        if isinstance(key, str):
                            merged.setdefault(key)
            save_payload(
                {"format": STORE_FORMAT_VERSION, "states": list(merged)},
                manifest_path,
            )
        self.written_states += written
        return written

    def restore_graph(
        self, graph: ItemSetGraph, control: Optional[Any] = None
    ) -> int:
        """Adopt every applicable stored expansion; return states restored.

        Walks the grammar's manifest, re-keys each decoded entry under the
        *current* grammar (the staleness check: an edit that changed any
        relevant rule changes the key, so the entry no longer addresses
        this kernel), and installs matching expansions via
        :meth:`ItemSetGraph.adopt_expansion`.  With a compiled ``control``,
        the stored hot-terminal lists are replayed through
        ``control.action`` afterwards, rebuilding the memoized step cells
        byte-identically (same encoder, same complete states).
        """
        grammar = graph.grammar
        manifest = self._load(self._manifest_path(self.grammar_key(grammar)))
        if manifest is None:
            return 0
        keys = manifest.get("states")
        if not isinstance(keys, list):
            return 0
        memo = _PassMemo()
        canon: Dict[Rule, Rule] = {rule: rule for rule in grammar.rules}
        restored = 0
        prewarm: List[Tuple[ItemSet, Tuple[str, ...]]] = []
        for key in keys:
            if not isinstance(key, str) or os.sep in key or "." in key:
                continue
            path = self._state_path(key)
            entry = self._load(path)
            if entry is None:
                continue
            decoded = self._decode_state(entry, canon)
            if decoded is None:
                # Rules absent from this grammar: the entry belongs to a
                # different (sub)grammar and stays untouched for it.
                continue
            kernel, transitions, reductions, hot = decoded
            if self.state_key(kernel, grammar, memo) != key:
                continue
            state = graph.state_by_kernel(kernel)
            if state is None:
                state = graph.materialize(kernel)
            if state.type is not StateType.INITIAL:
                continue
            resolved: List[Tuple[Any, Any]] = []
            for symbol, target in transitions:
                if target is ACCEPT:
                    resolved.append((symbol, ACCEPT))
                else:
                    resolved.append((symbol, graph.materialize(target)))
            graph.adopt_expansion(state, resolved, reductions)
            restored += 1
            if hot:
                prewarm.append((state, hot))
        if control is not None and hasattr(control, "action_cache"):
            for state, names in prewarm:
                for name in names:
                    control.action(state, Terminal(name))
        self.restored_states += restored
        return restored

    # -- dense tables ------------------------------------------------------

    @staticmethod
    def _encode_action(action: Any) -> List[Any]:
        if isinstance(action, Shift):
            return ["s", action.target]
        if isinstance(action, Reduce):
            return ["r", _rule_to_json(action.rule)]
        if isinstance(action, Accept):
            return ["a"]
        raise ValueError(f"cannot persist action {action!r}")

    @staticmethod
    def _decode_action(encoded: Any) -> Any:
        tag = encoded[0]
        if tag == "s":
            return Shift(int(encoded[1]))
        if tag == "r":
            return Reduce(_rule_from_json(encoded[1]))
        if tag == "a":
            return ACCEPT_ACTION
        raise ValueError(f"unknown stored action tag {tag!r}")

    def _dense_to_json(self, dense: DenseTable) -> Dict[str, Any]:
        """The persisted parts of a dense rendering (see ``rehydrate``)."""
        pool: List[ActionSet] = dense._pool
        pool_index = {actions: i for i, actions in enumerate(pool)}
        return {
            "columns": [t.name for t in dense._term_index],
            "pool": [
                [self._encode_action(a) for a in actions] for actions in pool
            ],
            "action_rows": dense._action_rows,
            "defaults": [pool_index[d] for d in dense._default_actions],
            "goto_rows": dense._goto_rows,
        }

    def _dense_from_json(
        self, payload: Dict[str, Any], table: ParseTable
    ) -> DenseTable:
        columns = tuple(Terminal(str(name)) for name in payload["columns"])
        pool = [
            tuple(self._decode_action(a) for a in actions)
            for actions in payload["pool"]
        ]
        return DenseTable.rehydrate(
            table,
            columns,
            pool,
            payload["action_rows"],
            payload["defaults"],
            payload["goto_rows"],
        )

    def save_table(self, grammar: Grammar, table: ParseTable) -> None:
        """Persist a whole-grammar LR(0) table plus its dense rendering.

        The dense section is what makes a warm dense-engine ``prepare()``
        skip the per-cell ACTION materialization, not just the graph
        expansion — reloading it costs one pass over the (deduplicated)
        action pool instead of one ``table.action`` call per grid cell.
        """
        save_payload(
            {
                "format": STORE_FORMAT_VERSION,
                "table": table_to_dict(table),
                "dense": self._dense_to_json(table.dense()),
            },
            self._table_path(self.grammar_key(grammar)),
        )

    def load_table(self, grammar: Grammar) -> Optional[ParseTable]:
        """The stored dense table for exactly this grammar, or ``None``."""
        path = self._table_path(self.grammar_key(grammar))
        payload = self._load(path)
        if payload is None:
            return None
        try:
            table = table_from_dict(payload["table"])
        except (KeyError, TypeError, ValueError, IndexError):
            self._discard(path)
            return None
        dense_payload = payload.get("dense")
        if dense_payload is not None:
            try:
                table._dense = self._dense_from_json(dense_payload, table)
            except (KeyError, TypeError, ValueError, IndexError):
                # A sick dense section is not fatal: the sparse table is
                # intact, so fall back to rebuilding the dense form.
                table._dense = None
        return table
