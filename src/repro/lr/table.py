"""Tabular ACTION/GOTO parse tables — Fig. 4.1(b) of the paper.

*"The parse table in Fig 4.1(b) is a tabular representation of the graph of
item sets of Fig 4.1(c)."*  The graph-driven generators never use this form
(they need the kernels at parse time), but the Yacc baseline of section 7
does: a :class:`ParseTable` is a frozen, kernel-free rendering of a fully
expanded automaton, with per-lookahead reduce actions for SLR(1)/LALR(1).

A :class:`TableControl` adapts a table to the same ``start_state`` /
``action`` / ``goto`` interface the graph controls expose, so every parsing
runtime in :mod:`repro.runtime` can run off either representation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..grammar.rules import Rule
from ..grammar.symbols import END, NonTerminal, Symbol, Terminal
from .actions import ACCEPT_ACTION, Action, ActionSet, Reduce, Shift
from .conflicts import Conflict
from .graph import ItemSetGraph
from .states import ACCEPT, ItemSet


class TableRow:
    """One parser state in tabular form."""

    __slots__ = ("shifts", "gotos", "reduces", "accepts")

    def __init__(self) -> None:
        #: terminal -> target state index
        self.shifts: Dict[Terminal, int] = {}
        #: non-terminal -> target state index
        self.gotos: Dict[NonTerminal, int] = {}
        #: (rule, lookaheads); ``None`` lookaheads = reduce on *every*
        #: terminal (the LR(0) convention of Fig. 4.1(b)).
        self.reduces: List[Tuple[Rule, Optional[FrozenSet[Terminal]]]] = []
        #: accept on the end-marker
        self.accepts: bool = False


class ParseTable:
    """An immutable ACTION/GOTO table plus conflict metadata."""

    def __init__(
        self,
        rows: Sequence[TableRow],
        start: int,
        terminals: Sequence[Terminal],
        nonterminals: Sequence[NonTerminal],
        rule_numbers: Optional[Dict[Rule, int]] = None,
    ) -> None:
        self._rows = tuple(rows)
        self.start = start
        self.terminals = tuple(terminals)
        self.nonterminals = tuple(nonterminals)
        self.rule_numbers = dict(rule_numbers or {})

    # -- the ACTION / GOTO functions -----------------------------------

    def action(self, state: int, symbol: Terminal) -> ActionSet:
        row = self._rows[state]
        actions: List[Action] = [
            Reduce(rule)
            for rule, lookaheads in row.reduces
            if lookaheads is None or symbol in lookaheads
        ]
        if symbol == END and row.accepts:
            actions.append(ACCEPT_ACTION)
        target = row.shifts.get(symbol)
        if target is not None:
            actions.append(Shift(target))
        return tuple(actions)

    def goto(self, state: int, symbol: NonTerminal) -> int:
        target = self._rows[state].gotos.get(symbol)
        if target is None:
            raise LookupError(f"no GOTO on {symbol} from state {state}")
        return target

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def conflicts(self) -> Tuple[Conflict, ...]:
        """Every multi-action (state, terminal) cell.

        The end-marker column is included: an accept can clash with a
        reduce on ``$`` (e.g. for cyclic grammars), and such a cell is a
        conflict like any other.
        """
        found: List[Conflict] = []
        columns = list(self.terminals)
        if END not in columns:
            columns.append(END)
        for index in range(len(self._rows)):
            for terminal in columns:
                actions = self.action(index, terminal)
                if len(actions) > 1:
                    found.append(Conflict(index, terminal, actions))
        return tuple(found)

    @property
    def is_deterministic(self) -> bool:
        return not self.conflicts()

    def cell_count(self) -> int:
        """Number of populated ACTION/GOTO cells (a size metric)."""
        total = 0
        for row in self._rows:
            total += len(row.shifts) + len(row.gotos) + len(row.reduces)
            total += 1 if row.accepts else 0
        return total

    # -- rendering (Fig. 4.1(b) style) -------------------------------------

    def render(self) -> str:
        """ASCII table in the layout of the paper's Fig. 4.1(b)."""
        terminals = list(self.terminals)
        if END not in terminals:
            terminals.append(END)
        headers = (
            ["state"]
            + [t.name for t in terminals]
            + [nt.name for nt in self.nonterminals]
        )
        table: List[List[str]] = [headers]
        for index, row in enumerate(self._rows):
            cells = [str(index)]
            for terminal in terminals:
                entries: List[str] = []
                for rule, lookaheads in row.reduces:
                    if lookaheads is None or terminal in lookaheads:
                        number = self.rule_numbers.get(rule)
                        entries.append(f"r{number}" if number is not None else "r?")
                if terminal == END and row.accepts:
                    entries.append("acc")
                if terminal in row.shifts:
                    entries.append(f"s{row.shifts[terminal]}")
                cells.append("/".join(entries))
            for nonterminal in self.nonterminals:
                target = row.gotos.get(nonterminal)
                cells.append("" if target is None else str(target))
            table.append(cells)
        widths = [
            max(len(line[col]) for line in table) for col in range(len(headers))
        ]
        rendered = [
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line)).rstrip()
            for line in table
        ]
        return "\n".join(rendered)


class TableControl:
    """Adapter: run the parsing runtimes off a :class:`ParseTable`.

    States are plain integers here — the kernel-free representation the
    paper says conventional LR parsers use ("only the ACTION and GOTO
    information was needed during parsing", section 5.3).
    """

    def __init__(self, table: ParseTable) -> None:
        self.table = table

    @property
    def start_state(self) -> int:
        return self.table.start

    def action(self, state: int, symbol: Terminal) -> ActionSet:
        return self.table.action(state, symbol)

    def goto(self, state: int, symbol: NonTerminal) -> int:
        return self.table.goto(state, symbol)


def resolve_conflicts(table: ParseTable) -> Tuple[ParseTable, Tuple[Conflict, ...]]:
    """Determinize a table the way Yacc does; returns (table, conflicts).

    Yacc's default conflict resolution: a shift beats a reduce
    (shift/reduce), and among several reduces the rule declared first wins
    (reduce/reduce).  Accept beats a reduce on the end-marker.  The
    returned conflict list is what Yacc would print as its
    ``n shift/reduce, m reduce/reduce`` summary.

    The parallel parser never needs this — it forks on conflicts — but the
    deterministic LR-PARSE of the Yacc baseline does.
    """
    conflicts = table.conflicts()
    if not conflicts:
        return table, ()

    all_terminals = set(table.terminals)
    all_terminals.add(END)

    def rule_priority(entry) -> int:
        rule, _lookaheads = entry
        return table.rule_numbers.get(rule, 1 << 30)

    new_rows: List[TableRow] = []
    for index in range(len(table)):
        old = table._rows[index]
        row = TableRow()
        row.shifts = dict(old.shifts)
        row.gotos = dict(old.gotos)
        row.accepts = old.accepts
        claimed: set = set(row.shifts)
        if row.accepts:
            claimed.add(END)
        for rule, lookaheads in sorted(old.reduces, key=rule_priority):
            effective = all_terminals if lookaheads is None else set(lookaheads)
            keep = frozenset(effective - claimed)
            claimed |= keep
            if keep:
                row.reduces.append((rule, keep))
        new_rows.append(row)

    resolved = ParseTable(
        new_rows,
        start=table.start,
        terminals=table.terminals,
        nonterminals=table.nonterminals,
        rule_numbers=table.rule_numbers,
    )
    return resolved, conflicts


def _index_graph(graph: ItemSetGraph) -> Tuple[Dict[int, int], Tuple[ItemSet, ...]]:
    states = graph.states()
    mapping = {state.uid: index for index, state in enumerate(states)}
    return mapping, states


def lr0_table(graph: ItemSetGraph) -> ParseTable:
    """Flatten a fully expanded graph into an LR(0) table.

    Reduce actions carry no lookahead restriction: as in Fig. 4.1(b), a
    state with a reduction reduces on every terminal, yielding the
    characteristic ``s5/r3`` conflict cells the parallel parser forks on.
    """
    for state in graph.states():
        if state.needs_expansion:
            raise ValueError(
                "lr0_table requires a fully expanded graph; "
                f"state #{state.uid} is {state.type.value}"
            )
    mapping, states = _index_graph(graph)
    rows: List[TableRow] = []
    for state in states:
        row = TableRow()
        for symbol, target in state.transitions.items():
            if target is ACCEPT:
                row.accepts = True
            elif isinstance(symbol, Terminal):
                row.shifts[symbol] = mapping[target.uid]
            else:
                row.gotos[symbol] = mapping[target.uid]
        row.reduces = [(rule, None) for rule in state.reductions]
        rows.append(row)
    grammar = graph.grammar
    rule_numbers = {rule: i for i, rule in enumerate(sorted(grammar.rules))}
    return ParseTable(
        rows,
        start=mapping[graph.start.uid],
        terminals=sorted(grammar.terminals),
        nonterminals=sorted(grammar.nonterminals - {grammar.start}),
        rule_numbers=rule_numbers,
    )
