"""Tabular ACTION/GOTO parse tables — Fig. 4.1(b) of the paper.

*"The parse table in Fig 4.1(b) is a tabular representation of the graph of
item sets of Fig 4.1(c)."*  The graph-driven generators never use this form
(they need the kernels at parse time), but the Yacc baseline of section 7
does: a :class:`ParseTable` is a frozen, kernel-free rendering of a fully
expanded automaton, with per-lookahead reduce actions for SLR(1)/LALR(1).

A :class:`TableControl` adapts a table to the same ``start_state`` /
``action`` / ``goto`` interface the graph controls expose, so every parsing
runtime in :mod:`repro.runtime` can run off either representation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..grammar.rules import Rule
from ..grammar.symbols import END, NonTerminal, Symbol, Terminal
from .actions import ACCEPT_ACTION, Action, ActionSet, Reduce, Shift
from .compiled import Step, encode_step
from .conflicts import Conflict
from .graph import ItemSetGraph
from .states import ACCEPT, ItemSet


class TableRow:
    """One parser state in tabular form."""

    __slots__ = ("shifts", "gotos", "reduces", "accepts")

    def __init__(self) -> None:
        #: terminal -> target state index
        self.shifts: Dict[Terminal, int] = {}
        #: non-terminal -> target state index
        self.gotos: Dict[NonTerminal, int] = {}
        #: (rule, lookaheads); ``None`` lookaheads = reduce on *every*
        #: terminal (the LR(0) convention of Fig. 4.1(b)).
        self.reduces: List[Tuple[Rule, Optional[FrozenSet[Terminal]]]] = []
        #: accept on the end-marker
        self.accepts: bool = False


class ParseTable:
    """An immutable ACTION/GOTO table plus conflict metadata."""

    def __init__(
        self,
        rows: Sequence[TableRow],
        start: int,
        terminals: Sequence[Terminal],
        nonterminals: Sequence[NonTerminal],
        rule_numbers: Optional[Dict[Rule, int]] = None,
    ) -> None:
        self._rows = tuple(rows)
        self.start = start
        self.terminals = tuple(terminals)
        self.nonterminals = tuple(nonterminals)
        self.rule_numbers = dict(rule_numbers or {})
        self._conflicts: Optional[Tuple[Conflict, ...]] = None
        self._dense: Optional["DenseTable"] = None

    # -- the ACTION / GOTO functions -----------------------------------

    def action(self, state: int, symbol: Terminal) -> ActionSet:
        row = self._rows[state]
        actions: List[Action] = [
            Reduce(rule)
            for rule, lookaheads in row.reduces
            if lookaheads is None or symbol in lookaheads
        ]
        if symbol == END and row.accepts:
            actions.append(ACCEPT_ACTION)
        target = row.shifts.get(symbol)
        if target is not None:
            actions.append(Shift(target))
        return tuple(actions)

    def goto(self, state: int, symbol: NonTerminal) -> int:
        target = self._rows[state].gotos.get(symbol)
        if target is None:
            raise LookupError(f"no GOTO on {symbol} from state {state}")
        return target

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def conflicts(self) -> Tuple[Conflict, ...]:
        """Every multi-action (state, terminal) cell.

        The end-marker column is included: an accept can clash with a
        reduce on ``$`` (e.g. for cyclic grammars), and such a cell is a
        conflict like any other.

        The table is immutable, so the state × terminal scan runs once and
        the result is cached — ``is_deterministic`` probes (snapshot
        autosave, fast-path attachment, ``resolve_conflicts``) would
        otherwise re-scan the full grid on every call.
        """
        if self._conflicts is not None:
            return self._conflicts
        found: List[Conflict] = []
        columns = list(self.terminals)
        if END not in columns:
            columns.append(END)
        for index in range(len(self._rows)):
            for terminal in columns:
                actions = self.action(index, terminal)
                if len(actions) > 1:
                    found.append(Conflict(index, terminal, actions))
        self._conflicts = tuple(found)
        return self._conflicts

    @property
    def is_deterministic(self) -> bool:
        return not self.conflicts()

    def dense(self) -> "DenseTable":
        """The dense integer-indexed form of this table (built once)."""
        if self._dense is None:
            self._dense = DenseTable(self)
        return self._dense

    def cell_count(self) -> int:
        """Number of populated ACTION/GOTO cells (a size metric)."""
        total = 0
        for row in self._rows:
            total += len(row.shifts) + len(row.gotos) + len(row.reduces)
            total += 1 if row.accepts else 0
        return total

    # -- rendering (Fig. 4.1(b) style) -------------------------------------

    def render(self) -> str:
        """ASCII table in the layout of the paper's Fig. 4.1(b)."""
        terminals = list(self.terminals)
        if END not in terminals:
            terminals.append(END)
        headers = (
            ["state"]
            + [t.name for t in terminals]
            + [nt.name for nt in self.nonterminals]
        )
        table: List[List[str]] = [headers]
        for index, row in enumerate(self._rows):
            cells = [str(index)]
            for terminal in terminals:
                entries: List[str] = []
                for rule, lookaheads in row.reduces:
                    if lookaheads is None or terminal in lookaheads:
                        number = self.rule_numbers.get(rule)
                        entries.append(f"r{number}" if number is not None else "r?")
                if terminal == END and row.accepts:
                    entries.append("acc")
                if terminal in row.shifts:
                    entries.append(f"s{row.shifts[terminal]}")
                cells.append("/".join(entries))
            for nonterminal in self.nonterminals:
                target = row.gotos.get(nonterminal)
                cells.append("" if target is None else str(target))
            table.append(cells)
        widths = [
            max(len(line[col]) for line in table) for col in range(len(headers))
        ]
        rendered = [
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line)).rstrip()
            for line in table
        ]
        return "\n".join(rendered)


class DenseTable:
    """Dense integer-indexed rendering of a :class:`ParseTable`.

    Symbols are interned to column indices once; every ACTION cell becomes
    an integer index (packed into a flat per-state row) into a pool of
    pre-built, shared action tuples, and every GOTO cell an interned state
    number.  A lookup is then two list indexings plus one dict probe for
    the symbol's column — no per-call allocation at all.

    State numbers are *interned int objects* (``_state_objects``): the
    pool parser's duplicate elision keys on state identity, so every
    occurrence of state ``n`` — shift target, goto target, start state —
    must be the same object even where CPython does not cache the int.
    """

    __slots__ = (
        "table",
        "step_cache",
        "_term_index",
        "_nt_index",
        "_state_objects",
        "_pool",
        "_action_rows",
        "_default_actions",
        "_goto_rows",
    )

    def __init__(self, table: ParseTable) -> None:
        self.table = table
        columns: List[Terminal] = list(table.terminals)
        if END not in columns:
            columns.append(END)
        self._term_index: Dict[Terminal, int] = {
            t: i for i, t in enumerate(columns)
        }
        self._nt_index: Dict[NonTerminal, int] = {
            nt: i for i, nt in enumerate(table.nonterminals)
        }
        self._state_objects: List[int] = [int(n) for n in range(len(table))]

        # ACTION: rows of pool indices; equal cells share one tuple, and
        # the step pool mirrors it so equal cells also share one
        # pre-decoded step (encode once per distinct cell, not per grid
        # position).
        pool: List[ActionSet] = [()]
        pool_index: Dict[ActionSet, int] = {(): 0}
        step_pool: List[Step] = [encode_step(())]
        self._pool = pool
        self._action_rows: List[List[int]] = []
        # Unknown terminals (input tokens outside the grammar) still reduce
        # on LR(0)-style "reduce on everything" entries; one shared default
        # tuple per state mirrors ParseTable.action for that case.
        self._default_actions: List[ActionSet] = []
        self._goto_rows: List[List[Optional[int]]] = []
        #: state -> {terminal -> pre-decoded step} for the runtime fast
        #: path (the step-cache protocol of :mod:`repro.lr.compiled`);
        #: keyed by the interned state ints, built once alongside the
        #: dense rows.  Tables are immutable, so it never invalidates.
        self.step_cache: Dict[int, Dict[Terminal, Step]] = {}

        for state in range(len(table)):
            action_row: List[int] = []
            steps: Dict[Terminal, Step] = {}
            for terminal in columns:
                actions = self._reintern(table.action(state, terminal))
                index = pool_index.get(actions)
                if index is None:
                    index = len(pool)
                    pool.append(actions)
                    pool_index[actions] = index
                    step_pool.append(encode_step(actions))
                action_row.append(index)
                steps[terminal] = step_pool[index]
            self._action_rows.append(action_row)
            self.step_cache[self._state_objects[state]] = steps

            row = table._rows[state]
            defaults = tuple(
                Reduce(rule) for rule, lookaheads in row.reduces if lookaheads is None
            )
            default_index = pool_index.get(defaults)
            if default_index is None:
                default_index = len(pool)
                pool.append(defaults)
                pool_index[defaults] = default_index
                step_pool.append(encode_step(defaults))
            self._default_actions.append(pool[default_index])

            goto_row: List[Optional[int]] = [None] * len(self._nt_index)
            for nonterminal, target in row.gotos.items():
                goto_row[self._nt_index[nonterminal]] = self._state_objects[target]
            self._goto_rows.append(goto_row)

    @classmethod
    def rehydrate(
        cls,
        table: "ParseTable",
        columns: Sequence[Terminal],
        pool: Sequence[ActionSet],
        action_rows: Sequence[Sequence[int]],
        default_indices: Sequence[int],
        goto_rows: Sequence[Sequence[Optional[int]]],
    ) -> "DenseTable":
        """Rebuild a dense table from its persisted parts.

        The expensive half of :meth:`__init__` — one ``table.action`` call
        per grid cell, allocating and deduplicating action tuples — is
        exactly what a persisted dense rendering already paid for, so the
        restore path only re-interns shift targets against this table's
        state objects, re-encodes the (small, shared) action pool into
        steps, and fans the integer rows back out.  The caller vouches
        that the parts describe ``table``; feed garbage and parses fail,
        not this constructor.
        """
        self = object.__new__(cls)
        self.table = table
        self._term_index = {t: i for i, t in enumerate(columns)}
        self._nt_index = {nt: i for i, nt in enumerate(table.nonterminals)}
        self._state_objects = [int(n) for n in range(len(table))]
        interned = self._state_objects
        self._pool = [
            tuple(
                Shift(interned[action.target])
                if isinstance(action, Shift)
                else action
                for action in actions
            )
            for actions in pool
        ]
        step_pool = [encode_step(actions) for actions in self._pool]
        self._action_rows = [list(row) for row in action_rows]
        self._default_actions = [self._pool[i] for i in default_indices]
        self._goto_rows = [
            [None if t is None else interned[t] for t in row]
            for row in goto_rows
        ]
        self.step_cache = {}
        for state, row in enumerate(self._action_rows):
            self.step_cache[interned[state]] = {
                terminal: step_pool[row[i]]
                for i, terminal in enumerate(columns)
            }
        return self

    def _reintern(self, actions: ActionSet) -> ActionSet:
        """Rebuild shift actions so their targets are interned state ints."""
        rebuilt: List[Action] = []
        changed = False
        for action in actions:
            if isinstance(action, Shift):
                interned = self._state_objects[action.target]
                if interned is not action.target:
                    action = Shift(interned)
                    changed = True
            rebuilt.append(action)
        return tuple(rebuilt) if changed else actions

    # -- the ACTION / GOTO fast path -----------------------------------

    @property
    def start_state(self) -> int:
        return self._state_objects[self.table.start]

    def action(self, state: int, symbol: Terminal) -> ActionSet:
        index = self._term_index.get(symbol)
        if index is None:
            return self._default_actions[state]
        return self._pool[self._action_rows[state][index]]

    def goto(self, state: int, symbol: NonTerminal) -> int:
        index = self._nt_index.get(symbol)
        target = self._goto_rows[state][index] if index is not None else None
        if target is None:
            raise LookupError(f"no GOTO on {symbol} from state {state}")
        return target

    def __len__(self) -> int:
        return len(self._action_rows)

    def pool_size(self) -> int:
        """Distinct action tuples backing the whole grid (a sharing metric)."""
        return len(self._pool)


class TableControl:
    """Adapter: run the parsing runtimes off a :class:`ParseTable`.

    States are plain integers here — the kernel-free representation the
    paper says conventional LR parsers use ("only the ACTION and GOTO
    information was needed during parsing", section 5.3).  Lookups are
    served from the table's :class:`DenseTable` form (built once, cached
    on the table), so the Yacc baseline and the service's snapshot-restore
    SLR fast path both run on packed integer rows.
    """

    def __init__(self, table: ParseTable) -> None:
        self.table = table
        self._dense = table.dense()
        #: Step-cache protocol (see :mod:`repro.lr.compiled`): lets the
        #: pool parser's deterministic stretch dispatch on pre-decoded
        #: cells without per-step action-object inspection.
        self.fast_step_cache = self._dense.step_cache

    @property
    def start_state(self) -> int:
        return self._dense.start_state

    def action(self, state: int, symbol: Terminal) -> ActionSet:
        return self._dense.action(state, symbol)

    def goto(self, state: int, symbol: NonTerminal) -> int:
        return self._dense.goto(state, symbol)


def resolve_conflicts(table: ParseTable) -> Tuple[ParseTable, Tuple[Conflict, ...]]:
    """Determinize a table the way Yacc does; returns (table, conflicts).

    Yacc's default conflict resolution: a shift beats a reduce
    (shift/reduce), and among several reduces the rule declared first wins
    (reduce/reduce).  Accept beats a reduce on the end-marker.  The
    returned conflict list is what Yacc would print as its
    ``n shift/reduce, m reduce/reduce`` summary.

    The parallel parser never needs this — it forks on conflicts — but the
    deterministic LR-PARSE of the Yacc baseline does.
    """
    conflicts = table.conflicts()
    if not conflicts:
        return table, ()

    all_terminals = set(table.terminals)
    all_terminals.add(END)

    def rule_priority(entry) -> int:
        rule, _lookaheads = entry
        return table.rule_numbers.get(rule, 1 << 30)

    new_rows: List[TableRow] = []
    for index in range(len(table)):
        old = table._rows[index]
        row = TableRow()
        row.shifts = dict(old.shifts)
        row.gotos = dict(old.gotos)
        row.accepts = old.accepts
        claimed: set = set(row.shifts)
        if row.accepts:
            claimed.add(END)
        for rule, lookaheads in sorted(old.reduces, key=rule_priority):
            effective = all_terminals if lookaheads is None else set(lookaheads)
            keep = frozenset(effective - claimed)
            claimed |= keep
            if keep:
                row.reduces.append((rule, keep))
        new_rows.append(row)

    resolved = ParseTable(
        new_rows,
        start=table.start,
        terminals=table.terminals,
        nonterminals=table.nonterminals,
        rule_numbers=table.rule_numbers,
    )
    return resolved, conflicts


def _index_graph(graph: ItemSetGraph) -> Tuple[Dict[int, int], Tuple[ItemSet, ...]]:
    states = graph.states()
    mapping = {state.uid: index for index, state in enumerate(states)}
    return mapping, states


def lr0_table(graph: ItemSetGraph) -> ParseTable:
    """Flatten a fully expanded graph into an LR(0) table.

    Reduce actions carry no lookahead restriction: as in Fig. 4.1(b), a
    state with a reduction reduces on every terminal, yielding the
    characteristic ``s5/r3`` conflict cells the parallel parser forks on.
    """
    for state in graph.states():
        if state.needs_expansion:
            raise ValueError(
                "lr0_table requires a fully expanded graph; "
                f"state #{state.uid} is {state.type.value}"
            )
    mapping, states = _index_graph(graph)
    rows: List[TableRow] = []
    for state in states:
        row = TableRow()
        for symbol, target in state.transitions.items():
            if target is ACCEPT:
                row.accepts = True
            elif isinstance(symbol, Terminal):
                row.shifts[symbol] = mapping[target.uid]
            else:
                row.gotos[symbol] = mapping[target.uid]
        row.reduces = [(rule, None) for rule in state.reductions]
        rows.append(row)
    grammar = graph.grammar
    rule_numbers = {rule: i for i, rule in enumerate(sorted(grammar.rules))}
    return ParseTable(
        rows,
        start=mapping[graph.start.uid],
        terminals=sorted(grammar.terminals),
        nonterminals=sorted(grammar.nonterminals - {grammar.start}),
        rule_numbers=rule_numbers,
    )
