"""Parse-table serialization.

Section 4: *"a parse table can be seen as a program running on an
LR-parsing machine"* — and programs are worth saving.  A deterministic
(or LR(0)) :class:`~repro.lr.table.ParseTable` round-trips through a plain
JSON-able dictionary, so a batch tool can generate once and ship the table
(the conventional Yacc deployment model, complementing IPG's interactive
one).

Graphs of item sets are deliberately *not* serialized: the lazy and
incremental generators need kernels, whose cheapest faithful encoding is
the grammar itself — reconstructing the graph from the grammar is exactly
what those generators are fast at.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Tuple

from ..grammar.builders import grammar_from_text
from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import NonTerminal, Symbol, Terminal
from .table import ParseTable, TableRow

FORMAT_VERSION = 1

#: Format tag for serialized grammars (text + sort declarations).
GRAMMAR_FORMAT_VERSION = 1


def _symbol_to_json(symbol: Symbol) -> List[str]:
    kind = "t" if isinstance(symbol, Terminal) else "n"
    return [kind, symbol.name]


def _symbol_from_json(payload: List[str]) -> Symbol:
    kind, name = payload
    if kind == "t":
        return Terminal(name)
    if kind == "n":
        return NonTerminal(name)
    raise ValueError(f"unknown symbol kind {kind!r}")


def _rule_to_json(rule: Rule) -> Dict[str, Any]:
    return {
        "lhs": rule.lhs.name,
        "rhs": [_symbol_to_json(symbol) for symbol in rule.rhs],
    }


def _rule_from_json(payload: Dict[str, Any]) -> Rule:
    return Rule(
        NonTerminal(payload["lhs"]),
        [_symbol_from_json(part) for part in payload["rhs"]],
    )


def table_to_dict(table: ParseTable) -> Dict[str, Any]:
    """A JSON-able encoding of the table (rules inlined once, by index)."""
    rules: List[Rule] = []
    rule_index: Dict[Rule, int] = {}

    def index_of(rule: Rule) -> int:
        if rule not in rule_index:
            rule_index[rule] = len(rules)
            rules.append(rule)
        return rule_index[rule]

    rows = []
    for position in range(len(table)):
        row = table._rows[position]
        rows.append(
            {
                "shifts": [
                    [terminal.name, target]
                    for terminal, target in sorted(
                        row.shifts.items(), key=lambda kv: kv[0].name
                    )
                ],
                "gotos": [
                    [nonterminal.name, target]
                    for nonterminal, target in sorted(
                        row.gotos.items(), key=lambda kv: kv[0].name
                    )
                ],
                "reduces": [
                    [
                        index_of(rule),
                        sorted(t.name for t in lookaheads)
                        if lookaheads is not None
                        else None,
                    ]
                    for rule, lookaheads in row.reduces
                ],
                "accepts": row.accepts,
            }
        )

    # Index the numbered rules *before* emitting the rule list — some
    # numbered rules (e.g. the START rule) never occur in a reduce action.
    rule_number_entries = [
        [index_of(rule), number]
        for rule, number in sorted(
            table.rule_numbers.items(), key=lambda kv: kv[1]
        )
    ]
    return {
        "format": FORMAT_VERSION,
        "start": table.start,
        "terminals": [t.name for t in table.terminals],
        "nonterminals": [nt.name for nt in table.nonterminals],
        "rules": [_rule_to_json(rule) for rule in rules],
        "rule_numbers": rule_number_entries,
        "rows": rows,
    }


def table_from_dict(payload: Dict[str, Any]) -> ParseTable:
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported parse-table format {payload.get('format')!r}"
        )
    rules = [_rule_from_json(entry) for entry in payload["rules"]]
    rows: List[TableRow] = []
    for encoded in payload["rows"]:
        row = TableRow()
        row.shifts = {
            Terminal(name): target for name, target in encoded["shifts"]
        }
        row.gotos = {
            NonTerminal(name): target for name, target in encoded["gotos"]
        }
        row.reduces = [
            (
                rules[rule_index],
                frozenset(Terminal(n) for n in lookaheads)
                if lookaheads is not None
                else None,
            )
            for rule_index, lookaheads in encoded["reduces"]
        ]
        row.accepts = encoded["accepts"]
        rows.append(row)
    return ParseTable(
        rows,
        start=payload["start"],
        terminals=[Terminal(n) for n in payload["terminals"]],
        nonterminals=[NonTerminal(n) for n in payload["nonterminals"]],
        rule_numbers={
            rules[rule_index]: number
            for rule_index, number in payload["rule_numbers"]
        },
    )


def grammar_to_dict(grammar: Grammar, sorts: Tuple[str, ...] = ()) -> Dict[str, Any]:
    """A JSON-able encoding of a grammar: its BNF listing plus sorts.

    The cheapest faithful encoding of a grammar *is* its text (see the
    module docstring), but the text alone cannot distinguish a referenced-
    but-undefined non-terminal from a terminal, so every non-terminal name
    is recorded as a sort declaration alongside any extra ``sorts``.
    """
    declared = {nt.name for nt in grammar.nonterminals}
    declared.update(sorts)
    return {
        "format": GRAMMAR_FORMAT_VERSION,
        "text": grammar.pretty(),
        "sorts": sorted(declared),
    }


def grammar_from_dict(payload: Dict[str, Any]) -> Grammar:
    if payload.get("format") != GRAMMAR_FORMAT_VERSION:
        raise ValueError(
            f"unsupported grammar format {payload.get('format')!r}"
        )
    return grammar_from_text(payload.get("text", ""), sorts=payload.get("sorts", ()))


def save_payload(payload: Dict[str, Any], path: str) -> None:
    """Write any JSON-able payload (table, grammar, session) to ``path``.

    Crash-safe: the payload is written to a sibling temp file, fsynced,
    and renamed into place.  A snapshot a supervisor replays after a
    crash must never be observable half-written — with ``os.replace``
    the path either still holds the previous complete payload or the new
    complete one, and the fsync orders the data before the rename so a
    power cut cannot leave a named-but-empty file.
    """
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=None, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_payload(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"expected a JSON object in {path}, got {type(payload).__name__}")
    return payload


def dumps(table: ParseTable) -> str:
    return json.dumps(table_to_dict(table), indent=None, sort_keys=True)


def loads(text: str) -> ParseTable:
    return table_from_dict(json.loads(text))


def save_table(table: ParseTable, path: str) -> None:
    save_payload(table_to_dict(table), path)


def load_table(path: str) -> ParseTable:
    with open(path) as handle:
        return loads(handle.read())
