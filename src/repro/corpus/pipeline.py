"""The streaming batch-parse pipeline: corpus documents across shards.

A :class:`ParseJob` drains one corpus through the service's existing
concurrency layer.  It owns no parser — every document becomes an
ordinary ``parse`` request submitted to the scheduler (or dispatcher)
through the same bounded shard queues interactive traffic uses, with
three deliberate politeness properties:

* **bounded in-flight window** — at most ``window`` documents are in
  the queues at once (default 2 per shard), so a million-document job
  cannot occupy a shard queue and starve interactive sessions: batch
  work waits *behind* the backpressure limit instead of filling it;
* **no result-cache pollution** — corpus parses send ``"cache": false``
  (protocol v6), so a bulk sweep does not evict the interactive
  sessions' hot entries, and ``"deadline_ms": null`` opts out of any
  server default deadline (a corpus document has no user waiting);
* **retry, never drop** — retryable answers (``shard-restarting``
  during a crash recovery, ``overloaded`` under pressure) re-queue the
  document under exponential backoff; only a terminal infrastructure
  error (``shard-degraded``) fails the job.

Completion is durable: each parsed document's distilled payload goes to
the hash-consed :class:`~repro.corpus.store.ResultStore` *before* the
:class:`~repro.corpus.store.ParseJournal` records the document done, so
a crash between the two re-parses the document (idempotent: the payload
is content-addressed) rather than journaling a result that was never
stored.  On restart, a re-issued ``corpus-parse`` skips everything the
journal already holds — that is the whole resume story.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from typing import Any, Callable, Dict, List, Optional

from .. import obs
from .store import DocumentStore, ParseJournal, ResultStore

#: In-flight documents per worker session (i.e. per shard) — small by
#: design; see the module docstring on starvation.
WINDOW_PER_SESSION = 2

#: Give up on a document (and fail the job) after this many retryable
#: answers — far beyond any single crash recovery, so hitting it means
#: the infrastructure is not coming back.
MAX_ATTEMPTS = 60

#: Backoff ceiling between retries of one document.
MAX_BACKOFF_S = 2.0

#: Nonterminal occurrences in a bracketed tree: a node is rendered as
#: ``Label(child child ...)``, so every name immediately followed by an
#: opening paren is a nonterminal label (leaves appear bare).
_NODE_LABEL = re.compile(r"([^\s()]+)\(")


def distill(response: Dict[str, Any]) -> Dict[str, Any]:
    """The stored payload of one parse response.

    Strips the per-request fields (``time``, ``cache``, ``session``,
    ``version`` …) so that two documents with identical parse *structure*
    produce identical payloads — the property hash-consing feeds on —
    and pre-computes the per-nonterminal occurrence counts the query
    layer indexes.
    """
    payload: Dict[str, Any] = {"accepted": bool(response.get("accepted"))}
    engine = response.get("engine")
    if engine is not None:
        payload["engine"] = engine
    if payload["accepted"]:
        trees = list(response.get("trees", ()))
        counts: Dict[str, int] = {}
        for tree in trees:
            for label in _NODE_LABEL.findall(tree):
                counts[label] = counts.get(label, 0) + 1
        payload["trees"] = trees
        payload["tree_count"] = len(trees)
        payload["nonterminals"] = counts
    else:
        diagnostics = response.get("diagnostics")
        if diagnostics is not None:
            payload["diagnostics"] = diagnostics
    return payload


def is_retryable(response: Dict[str, Any]) -> bool:
    """Transient infrastructure answers worth re-queueing the document for."""
    if "error" not in response:
        return False
    return (
        response["error"] == "shard-restarting"
        or bool(response.get("overloaded"))
    )


class ParseJob:
    """One corpus drain: pending documents -> journaled results.

    Runs on its own thread so ``corpus-parse`` can answer immediately
    and ``corpus-status`` can watch progress; ``wait`` joins it.
    """

    def __init__(
        self,
        corpus: str,
        docs: DocumentStore,
        results: ResultStore,
        journal: ParseJournal,
        submit: Callable[[Dict[str, Any]], "Future[Dict[str, Any]]"],
        sessions: List[str],
        engine: Optional[str] = None,
        window: Optional[int] = None,
    ) -> None:
        if not sessions:
            raise ValueError("a parse job needs at least one worker session")
        self.corpus = corpus
        self.docs = docs
        self.results = results
        self.journal = journal
        self.submit = submit
        self.sessions = list(sessions)
        self.engine = engine
        self.window = (
            window
            if window is not None
            else WINDOW_PER_SESSION * len(self.sessions)
        )
        self.total = len(docs)
        #: Documents already journaled when this job started — the
        #: resume measurement the restart test asserts on.
        self.resumed = len(journal)
        self.parsed_this_run = 0
        self.accepted = sum(
            1 for entry in journal.entries.values() if entry.get("accepted")
        )
        self.rejected = self.resumed - self.accepted
        self.retries = 0
        self.state = "pending"
        self.error: Optional[str] = None
        self.started_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._sequence = 0
        self._obs_parsed = obs.counter("repro.corpus.docs_parsed", corpus=corpus)
        self._obs_retries = obs.counter("repro.corpus.parse_retries", corpus=corpus)
        self._obs_seconds = obs.histogram("repro.corpus.doc_parse.seconds")
        self._thread = threading.Thread(
            target=self._run, name=f"repro-corpus-{corpus}", daemon=True
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ParseJob":
        self.state = "running"
        self._thread.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Stop draining; in-flight documents still complete and journal."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    # -- the drain loop ----------------------------------------------------

    def _run(self) -> None:
        pending = deque(
            digest for digest in self.docs.hashes() if digest not in self.journal
        )
        in_flight: Dict["Future[Dict[str, Any]]", Dict[str, Any]] = {}
        backoff_s = 0.0
        try:
            with obs.span(
                "corpus.parse-job", corpus=self.corpus, pending=len(pending)
            ):
                while (pending or in_flight) and not self._stop.is_set():
                    while pending and len(in_flight) < self.window:
                        digest = pending.popleft()
                        in_flight[self._launch(digest)] = {
                            "doc": digest,
                            "attempts": 1,
                            "started": time.perf_counter(),
                        }
                    if not in_flight:
                        break
                    done, _ = wait(
                        in_flight, timeout=1.0, return_when=FIRST_COMPLETED
                    )
                    retry_wanted = False
                    for future in done:
                        item = in_flight.pop(future)
                        verdict = self._absorb(item, future.result())
                        if verdict == "retry":
                            retry_wanted = True
                            if item["attempts"] >= MAX_ATTEMPTS:
                                raise RuntimeError(
                                    f"document {item['doc']} still failing "
                                    f"after {item['attempts']} attempts"
                                )
                            item["attempts"] += 1
                            item["started"] = time.perf_counter()
                            in_flight[self._launch(item["doc"])] = item
                    if retry_wanted:
                        # Shared backoff: a restarting shard answers every
                        # window slot at once; one growing pause beats
                        # per-document sleeps that would stall absorption.
                        backoff_s = min(
                            MAX_BACKOFF_S, (backoff_s * 2) or 0.025
                        )
                        self._stop.wait(backoff_s)
                    elif done:
                        backoff_s = 0.0
                if in_flight:
                    # Stopped with documents still in the shard queues:
                    # absorb whatever completes so their work is not
                    # thrown away (a retryable answer is simply dropped —
                    # the journal-less document re-parses on resume).
                    done, _ = wait(in_flight, timeout=10.0)
                    for future in done:
                        self._absorb(in_flight.pop(future), future.result())
        except Exception as error:  # noqa: BLE001 — job boundary
            with self._lock:
                self.state = "failed"
                self.error = f"{type(error).__name__}: {error}"
        else:
            with self._lock:
                self.state = "stopped" if self._stop.is_set() else "done"
        finally:
            self.finished_at = time.monotonic()
            self.journal.sync()

    def _launch(self, digest: str) -> "Future[Dict[str, Any]]":
        entry = self.docs.get(digest)
        assert entry is not None
        session = self.sessions[self._sequence % len(self.sessions)]
        self._sequence += 1
        request: Dict[str, Any] = {
            "cmd": "parse",
            "session": session,
            "tokens": entry["text"],
            "cache": False,
            "deadline_ms": None,
        }
        if self.engine is not None:
            request["engine"] = self.engine
        return self.submit(request)

    def _absorb(self, item: Dict[str, Any], response: Any) -> str:
        """File one completed future; returns ``"ok"`` or ``"retry"``."""
        if not isinstance(response, dict):
            raise RuntimeError(
                f"corpus parse returned {type(response).__name__}, "
                f"expected a response object"
            )
        if is_retryable(response):
            with self._lock:
                self.retries += 1
            self._obs_retries.inc()
            return "retry"
        if "error" in response:
            # Terminal: shard-degraded, protocol errors, unknown engine.
            raise RuntimeError(
                f"document {item['doc']} failed terminally: "
                f"{response['error']}"
            )
        digest = item["doc"]
        payload = distill(response)
        # Store before journal: the journal entry is the commit point.
        result_hash, _created = self.results.put(payload)
        self.journal.append(digest, result_hash, payload["accepted"])
        self._obs_seconds.observe(time.perf_counter() - item["started"])
        self._obs_parsed.inc()
        with self._lock:
            self.parsed_this_run += 1
            if payload["accepted"]:
                self.accepted += 1
            else:
                self.rejected += 1
        return "ok"

    # -- progress ----------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        with self._lock:
            done = len(self.journal)
            elapsed = (self.finished_at or time.monotonic()) - self.started_at
            rate = self.parsed_this_run / elapsed if elapsed > 0 else 0.0
            report = {
                "state": self.state,
                "total": self.total,
                "done": done,
                "pending": max(0, self.total - done),
                "accepted": self.accepted,
                "rejected": self.rejected,
                "resumed": self.resumed,
                "parsed_this_run": self.parsed_this_run,
                "retries": self.retries,
                "elapsed": round(elapsed, 3),
                "docs_per_second": round(rate, 2),
                "sessions": list(self.sessions),
            }
            if self.error is not None:
                report["job_error"] = self.error
            return report
