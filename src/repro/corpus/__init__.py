"""``repro.corpus`` — the corpus layer: parse collections once, query forever.

The request/response service (:mod:`repro.service`) answers one input at a
time and its results die with the cache.  This package is the
write-heavy/read-heavy workload the ROADMAP calls "millions of users":
whole document collections are **ingested** (content-hashed for dedup and
idempotent re-ingest), **batch-parsed** across the existing scheduler
shards under a bounded in-flight window, and the results land in a
**persistent, hash-consed store** that outlives both the request and the
process — so **queries** (match-by-nonterminal, error summaries,
per-corpus metrics) are answered from disk-backed indexes and a
read-through cache, paginated with the Korp-style ``time`` + ``cache``
response fields the rest of the protocol already speaks.

Layout on disk (everything under one ``--corpus-root`` directory)::

    <root>/registry.json             named corpora: grammar, engine, sorts
    <root>/<corpus>/docs.json        document manifest (content-addressed)
    <root>/<corpus>/results/<h>.json hash-consed parse payloads (write-once)
    <root>/<corpus>/parse.log        append-only per-document completion
                                     journal — the resumability record

Crash safety follows the service's snapshot rules: manifests and result
payloads go through temp-file + fsync + ``os.replace`` writes, and the
journal is append-only with a tolerated torn tail, so a server killed
hard mid-parse resumes exactly where the journal ends.
"""

from .manager import CorpusManager
from .pipeline import ParseJob
from .query import QueryEngine
from .registry import CorpusRegistry
from .store import (
    DocumentStore,
    ParseJournal,
    ResultStore,
    content_hash,
)

__all__ = [
    "CorpusManager",
    "CorpusRegistry",
    "DocumentStore",
    "ParseJob",
    "ParseJournal",
    "QueryEngine",
    "ResultStore",
    "content_hash",
]
