"""The corpus front door: protocol commands -> stores, jobs, queries.

One :class:`CorpusManager` owns everything under a ``--corpus-root``
directory: the registry of named corpora, each corpus's document store,
hash-consed result store and parse journal, at most one live
:class:`~repro.corpus.pipeline.ParseJob` per corpus, and the shared
:class:`~repro.corpus.query.QueryEngine`.

It is deliberately placed *beside* the routing layer, not inside a
shard: corpus state is process-global (the scheduler intercepts
``corpus-*`` commands parent-side exactly like ``health``/``ready``),
while the actual parse work still flows through the ordinary shard
queues as ``parse`` requests — the manager needs only a ``submit``
callable and never touches a grammar itself.

Worker sessions are named ``corpus:<name>:<i>`` and *probed* against the
router until every shard owns one, so a batch job genuinely fans out
across the whole pool; they are opened with ``force`` through the normal
``open`` command, which in process mode lands them in the shard's
mutation journal — a crashed shard replays its corpus worker session
before serving the job's next parse.

Because worker sessions go through the ordinary ``open`` path, a
scheduler built with ``table_cache`` warm-starts every one of them from
the persistent table store (``repro.lr.tablestore``): the first batch
job over a corpus pays for expanding the grammar's automaton once, and
every later job — in this process or the next — adopts those states
instead of recomputing them.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs
from ..service.protocol import ProtocolError, ServiceError, require
from ..service.retry import call_with_retries
from .pipeline import ParseJob
from .query import DEFAULT_PAGE_SIZE, QueryEngine
from .registry import CorpusRegistry
from .store import DocumentStore, ParseJournal, ResultStore

#: The protocol v6 corpus commands, in documentation order.
CORPUS_COMMANDS = (
    "corpus-create",
    "corpus-ingest",
    "corpus-parse",
    "corpus-status",
    "corpus-query",
    "corpus-info",
)

#: Probe bound for router-aware worker-session placement.
_PLACEMENT_PROBES = 4096

Submit = Callable[[Dict[str, Any]], "Future[Dict[str, Any]]"]

_INGESTED = obs.counter("repro.corpus.docs_ingested")
_INGEST_DUPLICATES = obs.counter("repro.corpus.ingest_duplicates")
_INGEST_SECONDS = obs.histogram("repro.corpus.ingest.seconds")
_QUERY_SECONDS = obs.histogram("repro.corpus.query.seconds")


class CorpusManager:
    """Serves the ``corpus-*`` commands over one corpus root."""

    def __init__(
        self,
        root: str,
        submit: Submit,
        shard_count: int = 1,
        shard_of: Optional[Callable[[str], int]] = None,
        query_cache_capacity: int = 256,
        window: Optional[int] = None,
    ) -> None:
        self.root = root
        self.submit = submit
        self.shard_count = max(1, shard_count)
        self.shard_of = shard_of
        self.window = window
        self.registry = CorpusRegistry(root)
        self.queries = QueryEngine(query_cache_capacity)
        self._stores: Dict[str, Tuple[DocumentStore, ResultStore, ParseJournal]] = {}
        self._jobs: Dict[str, ParseJob] = {}
        self._lock = threading.RLock()
        self._handler_map: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
            "corpus-create": self.create,
            "corpus-ingest": self.ingest,
            "corpus-parse": self.parse,
            "corpus-status": self.status,
            "corpus-query": self.query,
            "corpus-info": self.info,
        }
        obs.register_object_collector(self, CorpusManager._collect_metrics)

    @staticmethod
    def _collect_metrics(self: "CorpusManager"):
        for key, value in self.queries.cache.stats.snapshot().items():
            if key != "hit_rate":
                yield ("repro.corpus.query_cache." + key, None, "counter", value)
        yield ("repro.corpus.corpora", None, "gauge", len(self.registry))
        with self._lock:
            stores = dict(self._stores)
        for name, (docs, results, journal) in stores.items():
            labels = {"corpus": name}
            yield ("repro.corpus.documents", labels, "gauge", len(docs))
            yield ("repro.corpus.results", labels, "gauge", len(results))
            yield ("repro.corpus.parsed", labels, "gauge", len(journal))
            yield (
                "repro.corpus.result_dedup_hits",
                labels,
                "counter",
                results.dedup_hits,
            )

    # -- the scheduler-facing entry point ----------------------------------

    def handles(self, cmd: Any) -> bool:
        return isinstance(cmd, str) and cmd in self._handler_map

    def serve(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One corpus request -> one response, dispatcher conventions.

        Used by the scheduler's parent-side intercept, where no
        :class:`~repro.service.dispatcher.Dispatcher` wraps the call:
        errors become data, ``cmd`` is echoed, ``time`` is stamped, and
        ``"trace": true`` wraps the request in a forced root span.
        """
        started = time.perf_counter()
        cmd = request.get("cmd") if isinstance(request, dict) else None
        root = None
        try:
            handler = self._handler_map.get(cmd)  # type: ignore[arg-type]
            if handler is None:
                raise ProtocolError(f"unknown corpus command {cmd!r}")
            if request.get("trace"):
                with obs.trace("request", cmd=cmd) as root:
                    response = handler(request)
            else:
                response = handler(request)
        except (ServiceError, OSError, ValueError) as error:
            response = {"error": str(error)}
        except Exception as error:  # noqa: BLE001 — server boundary
            response = {"error": f"{type(error).__name__}: {error}"}
        if root is not None:
            response["trace"] = root.to_dict()
        if isinstance(cmd, str):
            response.setdefault("cmd", cmd)
        response["time"] = round(time.perf_counter() - started, 6)
        return response

    # -- command handlers (payload level; the wrapper stamps time) ---------

    def create(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._name_of(request)
        grammar = require(request, "grammar")
        if not isinstance(grammar, str) or not grammar.strip():
            raise ProtocolError(
                "'corpus-create' needs the corpus grammar as a non-empty "
                "string in the 'grammar' field"
            )
        engine = request.get("engine")
        if engine is not None:
            from ..api import engines

            if engine not in engines():
                raise ProtocolError(
                    f"unknown engine {engine!r} — known: {', '.join(engines())}"
                )
        sorts = request.get("sorts", ())
        if not isinstance(sorts, (list, tuple)) or not all(
            isinstance(sort, str) for sort in sorts
        ):
            raise ProtocolError("'sorts' must be a list of sort names")
        entry = self.registry.create(
            name, grammar, sorts=list(sorts), engine=engine
        )
        obs.counter("repro.corpus.requests", cmd="corpus-create").inc()
        return {"corpus": name, "created": entry["created"]}

    def ingest(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._name_of(request)
        self._definition_of(name)
        documents = self._gather_documents(request)
        docs, _results, _journal = self._stores_of(name)
        with obs.span("corpus.ingest", corpus=name, documents=len(documents)):
            started = time.perf_counter()
            outcome = docs.add_many(documents)
            _INGEST_SECONDS.observe(time.perf_counter() - started)
        _INGESTED.inc(outcome["added"])
        _INGEST_DUPLICATES.inc(outcome["duplicates"])
        obs.counter("repro.corpus.requests", cmd="corpus-ingest").inc()
        return {
            "corpus": name,
            "added": outcome["added"],
            "duplicates": outcome["duplicates"],
            "documents": len(docs),
        }

    def parse(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._name_of(request)
        entry = self._definition_of(name)
        docs, results, journal = self._stores_of(name)
        obs.counter("repro.corpus.requests", cmd="corpus-parse").inc()
        with self._lock:
            job = self._jobs.get(name)
            if job is None or not (job.running or job.state == "pending"):
                sessions = self._open_worker_sessions(name, entry)
                window = request.get("window", self.window)
                if window is not None and (
                    not isinstance(window, int)
                    or isinstance(window, bool)
                    or window < 1
                ):
                    raise ProtocolError(
                        f"'window' must be a positive integer, got {window!r}"
                    )
                job = ParseJob(
                    name,
                    docs,
                    results,
                    journal,
                    submit=self.submit,
                    sessions=sessions,
                    engine=entry.get("engine"),
                    window=window,
                )
                obs.counter("repro.corpus.jobs_started", corpus=name).inc()
                job.start()
                self._jobs[name] = job
        if request.get("wait"):
            timeout = request.get("timeout")
            if timeout is not None and not isinstance(timeout, (int, float)):
                raise ProtocolError(
                    f"'timeout' must be a number of seconds, got {timeout!r}"
                )
            job.wait(timeout)
        return {"corpus": name, "job": job.status()}

    def status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._name_of(request)
        self._definition_of(name)
        docs, results, journal = self._stores_of(name)
        with self._lock:
            job = self._jobs.get(name)
        response: Dict[str, Any] = {
            "corpus": name,
            "documents": len(docs),
            "parsed": len(journal),
            "pending": max(0, len(docs) - len(journal)),
            "generation": journal.generation,
            "store": {
                "results": len(results),
                "result_puts": results.puts,
                "dedup_hits": results.dedup_hits,
                "dedup_ratio": round(results.dedup_ratio(), 4),
            },
            "journal": {
                "entries": len(journal),
                "duplicates": journal.duplicates,
                "torn_tail": journal.torn_tail,
            },
        }
        if job is not None:
            response["job"] = job.status()
        obs.counter("repro.corpus.requests", cmd="corpus-status").inc()
        return response

    def query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._name_of(request)
        self._definition_of(name)
        docs, results, journal = self._stores_of(name)
        kind = require(request, "kind")
        params = request.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be a JSON object")
        # Korp-style convenience: a top-level 'nonterminal' field is the
        # common case for match queries.
        if "nonterminal" in request and "nonterminal" not in params:
            params = dict(params, nonterminal=request["nonterminal"])
        use_cache = request.get("cache", True)
        if not isinstance(use_cache, bool):
            raise ProtocolError(
                f"'cache' must be a boolean, got {type(use_cache).__name__}"
            )
        with obs.span("corpus.query", corpus=name, kind=str(kind)):
            started = time.perf_counter()
            response = self.queries.query(
                name,
                docs,
                results,
                journal,
                kind,
                params=params,
                page=request.get("page", 0),
                page_size=request.get("page_size", DEFAULT_PAGE_SIZE),
                use_cache=use_cache,
            )
            _QUERY_SECONDS.observe(time.perf_counter() - started)
        obs.counter(
            "repro.corpus.queries", kind=kind if isinstance(kind, str) else "?"
        ).inc()
        return response

    def info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        obs.counter("repro.corpus.requests", cmd="corpus-info").inc()
        if "corpus" not in request and "session" not in request:
            # The Korp ``/info`` shape: every registered corpus.
            return {"corpora": self.registry.names(), "root": self.root}
        name = self._name_of(request)
        entry = self._definition_of(name)
        docs, results, journal = self._stores_of(name)
        return {
            "corpus": name,
            "grammar": entry["grammar"],
            "sorts": entry["sorts"],
            "engine": entry["engine"],
            "documents": len(docs),
            "parsed": len(journal),
            "results": len(results),
            "generation": journal.generation,
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop every job (in-flight parses still journal), sync journals."""
        with self._lock:
            jobs = list(self._jobs.values())
            stores = list(self._stores.values())
        for job in jobs:
            job.stop()
        for _docs, _results, journal in stores:
            journal.close()
        with self._lock:
            self._stores.clear()

    # -- plumbing ----------------------------------------------------------

    @staticmethod
    def _name_of(request: Dict[str, Any]) -> str:
        name = request.get("corpus", request.get("session"))
        if not isinstance(name, str) or not name:
            cmd = request.get("cmd", "?")
            raise ProtocolError(
                f"{cmd!r} request needs a corpus name in the 'corpus' field"
            )
        return name

    def _definition_of(self, name: str) -> Dict[str, Any]:
        entry = self.registry.get(name)
        if entry is None:
            known = ", ".join(self.registry.names()) or "<none>"
            raise ServiceError(
                f"unknown corpus {name!r} — 'corpus-create' it first "
                f"(known: {known})"
            )
        return entry

    def _stores_of(
        self, name: str
    ) -> Tuple[DocumentStore, ResultStore, ParseJournal]:
        with self._lock:
            held = self._stores.get(name)
            if held is None:
                directory = self.registry.directory(name)
                held = (
                    DocumentStore(directory),
                    ResultStore(directory),
                    ParseJournal(os.path.join(directory, "parse.log")),
                )
                self._stores[name] = held
            return held

    def _gather_documents(
        self, request: Dict[str, Any]
    ) -> List[Tuple[str, str]]:
        """The ``(name, text)`` pairs of one ingest request.

        Three sources, combinable: inline ``documents`` (strings or
        ``{"name", "text"}`` objects), ``files`` (paths), and a
        ``manifest`` directory (every regular file under it, recursively,
        named by its relative path — deterministic order).
        """
        documents: List[Tuple[str, str]] = []
        inline = request.get("documents", ())
        if not isinstance(inline, (list, tuple)):
            raise ProtocolError("'documents' must be a list")
        for index, item in enumerate(inline):
            if isinstance(item, str):
                documents.append((f"inline-{index}", item))
            elif (
                isinstance(item, dict)
                and isinstance(item.get("text"), str)
            ):
                documents.append(
                    (str(item.get("name", f"inline-{index}")), item["text"])
                )
            else:
                raise ProtocolError(
                    "'documents' entries must be strings or "
                    '{"name": ..., "text": ...} objects'
                )
        files = request.get("files", ())
        if not isinstance(files, (list, tuple)):
            raise ProtocolError("'files' must be a list of paths")
        for path in files:
            if not isinstance(path, str):
                raise ProtocolError("'files' entries must be path strings")
            with open(path, encoding="utf-8") as handle:
                documents.append((os.path.basename(path), handle.read()))
        manifest = request.get("manifest")
        if manifest is not None:
            if not isinstance(manifest, str):
                raise ProtocolError("'manifest' must be a directory path")
            if not os.path.isdir(manifest):
                raise ServiceError(
                    f"manifest directory {manifest!r} does not exist"
                )
            for dirpath, dirnames, filenames in sorted(os.walk(manifest)):
                dirnames.sort()
                for filename in sorted(filenames):
                    full = os.path.join(dirpath, filename)
                    relative = os.path.relpath(full, manifest)
                    with open(full, encoding="utf-8") as handle:
                        documents.append((relative, handle.read()))
        if not documents:
            raise ProtocolError(
                "'corpus-ingest' got nothing to ingest — pass 'documents', "
                "'files', or a 'manifest' directory"
            )
        return documents

    def _open_worker_sessions(
        self, name: str, entry: Dict[str, Any]
    ) -> List[str]:
        """One journaled worker session per shard, router-verified."""
        placed: Dict[int, str] = {}
        if self.shard_of is None or self.shard_count == 1:
            placed[0] = f"corpus:{name}:0"
        else:
            for probe in range(_PLACEMENT_PROBES):
                candidate = f"corpus:{name}:{probe}"
                shard = self.shard_of(candidate)
                if shard not in placed:
                    placed[shard] = candidate
                    if len(placed) == self.shard_count:
                        break
        sessions = [placed[shard] for shard in sorted(placed)]
        for session in sessions:
            # Retried like any client call: a corpus-parse issued while a
            # shard is mid-recovery (the restart-resume path) must not
            # fail just because one worker open raced the respawn.
            response = call_with_retries(
                lambda req: self.submit(req).result(),
                {
                    "cmd": "open",
                    "session": session,
                    "grammar": entry["grammar"],
                    "sorts": entry["sorts"],
                    "force": True,
                },
            )
            if not isinstance(response, dict) or "error" in response:
                raise ServiceError(
                    f"could not open corpus worker session {session!r}: "
                    f"{response.get('error') if isinstance(response, dict) else response}"
                )
        return sessions
