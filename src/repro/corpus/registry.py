"""The corpus registry: named corpora bound to a grammar and engine.

Mirrors the Korp backend's notion of a corpus registry (the ``/info``
endpoint lists corpora; every query names one).  Each entry binds a
corpus name to the grammar text, sort declarations, and parse engine its
documents will be parsed with — the corpus-side analogue of a workspace
session, but persistent: the registry survives the process in
``registry.json`` (crash-safe rewrite per mutation).
"""

from __future__ import annotations

import os
import re
import threading
from typing import Any, Dict, List, Optional

from ..lr.serialize import load_payload, save_payload
from .store import FORMAT_VERSION

#: Corpus names double as directory names, so keep them filesystem-safe.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class CorpusRegistry:
    """Persistent name -> corpus-definition map under one root."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._path = os.path.join(root, "registry.json")
        self._lock = threading.Lock()
        self._corpora: Dict[str, Dict[str, Any]] = {}
        os.makedirs(root, exist_ok=True)
        if os.path.exists(self._path):
            payload = load_payload(self._path)
            if payload.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported corpus registry format "
                    f"{payload.get('format')!r} in {self._path}"
                )
            self._corpora = dict(payload.get("corpora", {}))

    @staticmethod
    def valid_name(name: str) -> bool:
        return bool(_NAME_PATTERN.match(name))

    def __contains__(self, name: str) -> bool:
        return name in self._corpora

    def __len__(self) -> int:
        return len(self._corpora)

    def names(self) -> List[str]:
        return sorted(self._corpora)

    def get(self, name: str) -> Optional[Dict[str, Any]]:
        entry = self._corpora.get(name)
        return dict(entry) if entry is not None else None

    def directory(self, name: str) -> str:
        return os.path.join(self.root, name)

    def create(
        self,
        name: str,
        grammar: str,
        sorts: Optional[List[str]] = None,
        engine: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Register ``name``; idempotent for an identical definition.

        Re-creating with a *different* grammar/engine is refused — stored
        results were parsed under the old definition and silently mixing
        the two would corrupt every query answer.
        """
        if not self.valid_name(name):
            raise ValueError(
                f"invalid corpus name {name!r} (want "
                f"letters/digits/._- , max 64 chars)"
            )
        entry = {
            "grammar": grammar,
            "sorts": sorted(sorts or []),
            "engine": engine,
        }
        with self._lock:
            existing = self._corpora.get(name)
            if existing is not None:
                if existing != entry:
                    raise ValueError(
                        f"corpus {name!r} already exists with a different "
                        f"definition; corpora are immutable once created"
                    )
                return dict(existing) | {"created": False}
            self._corpora[name] = entry
            save_payload(
                {"format": FORMAT_VERSION, "corpora": self._corpora},
                self._path,
            )
        return dict(entry) | {"created": True}
