"""Query endpoints over stored corpus results, Korp-style.

Two query kinds over the persistent stores:

``match``
    Which documents contain a given nonterminal, and how often?  Served
    from a per-corpus inverted index (nonterminal -> document hits)
    built once per *generation* — the journal's completed-parse count —
    so a finished corpus builds its index exactly once and every page
    after that is a dictionary slice.

``errors``
    Rejected documents grouped by diagnostic signature (the expected
    terminal set at the failure point), most frequent first — the
    "what is wrong with my corpus" summary.

Pagination and caching follow the Korp backend API: requests carry
``page``/``page_size``, responses carry ``total`` plus the Korp
bookkeeping pair ``time`` (stamped by the serving layer) and ``cache``
(whether this exact page came from the read-through query cache).
Passing ``"cache": false`` bypasses the cache, exactly like Korp's
``cache`` parameter.  Cache keys embed the generation, so results
becoming available invalidates stale pages implicitly — a key property
while a parse job is still streaming.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..service.cache import ResultCache
from ..service.protocol import ProtocolError
from .store import DocumentStore, ParseJournal, ResultStore

#: Query kinds ``corpus-query`` understands.
QUERY_KINDS = ("match", "errors")

DEFAULT_PAGE_SIZE = 50
MAX_PAGE_SIZE = 500


class CorpusIndex:
    """The in-memory inverted index over one corpus generation."""

    def __init__(
        self,
        generation: int,
        docs: DocumentStore,
        results: ResultStore,
        journal: ParseJournal,
    ) -> None:
        self.generation = generation
        #: nonterminal -> [(doc hash, occurrence count)], journal order.
        self.by_nonterminal: Dict[str, List[Tuple[str, int]]] = {}
        #: diagnostic signature -> {"count", "docs", "example"}.
        self.errors: Dict[str, Dict[str, Any]] = {}
        self.accepted = 0
        self.rejected = 0
        # Hash-consing pays off here: each distinct payload loads once,
        # however many documents share it.
        payloads: Dict[str, Dict[str, Any]] = {}
        for doc, entry in journal.entries.items():
            result_hash = entry.get("result")
            payload = payloads.get(result_hash)
            if payload is None and result_hash is not None:
                payload = payloads[result_hash] = results.get(result_hash)
            if payload is None:
                continue
            if payload.get("accepted"):
                self.accepted += 1
                for name, count in payload.get("nonterminals", {}).items():
                    self.by_nonterminal.setdefault(name, []).append(
                        (doc, count)
                    )
            else:
                self.rejected += 1
                signature, message = self._signature(payload)
                slot = self.errors.get(signature)
                if slot is None:
                    slot = self.errors[signature] = {
                        "signature": signature,
                        "message": message,
                        "count": 0,
                        "docs": [],
                        "example": payload.get("diagnostics"),
                    }
                slot["count"] += 1
                if len(slot["docs"]) < 5:
                    slot["docs"].append(doc)

    @staticmethod
    def _signature(payload: Dict[str, Any]) -> Tuple[str, str]:
        """A stable grouping key for one rejection's diagnostics."""
        diagnostics = payload.get("diagnostics") or {}
        expected = diagnostics.get("expected")
        if expected:
            expected_text = ", ".join(sorted(str(t) for t in expected))
            return (
                f"expected:{expected_text}",
                f"parse stopped expecting one of: {expected_text}",
            )
        message = diagnostics.get("message", "rejected")
        return (f"message:{message}", str(message))


class QueryEngine:
    """Builds/holds per-corpus indexes and the read-through page cache."""

    def __init__(self, cache_capacity: int = 256) -> None:
        #: corpus -> its latest CorpusIndex (older generations are dead
        #: weight the moment a newer one exists).
        self._indexes: Dict[str, CorpusIndex] = {}
        self._lock = threading.Lock()
        self.cache = ResultCache(cache_capacity)

    def index_for(
        self,
        corpus: str,
        docs: DocumentStore,
        results: ResultStore,
        journal: ParseJournal,
    ) -> CorpusIndex:
        generation = journal.generation
        with self._lock:
            held = self._indexes.get(corpus)
            if held is not None and held.generation == generation:
                return held
        built = CorpusIndex(generation, docs, results, journal)
        with self._lock:
            held = self._indexes.get(corpus)
            # A racing builder may have finished a *newer* generation.
            if held is None or held.generation <= generation:
                self._indexes[corpus] = built
                return built
            return held

    def forget(self, corpus: str) -> None:
        with self._lock:
            self._indexes.pop(corpus, None)
        self.cache.invalidate(corpus)

    # -- serving -----------------------------------------------------------

    def query(
        self,
        corpus: str,
        docs: DocumentStore,
        results: ResultStore,
        journal: ParseJournal,
        kind: str,
        params: Optional[Dict[str, Any]] = None,
        page: int = 0,
        page_size: int = DEFAULT_PAGE_SIZE,
        use_cache: bool = True,
    ) -> Dict[str, Any]:
        """One paginated query page; ``cache`` reports the read-through hit."""
        if kind not in QUERY_KINDS:
            raise ProtocolError(
                f"unknown query kind {kind!r} — known: {', '.join(QUERY_KINDS)}"
            )
        if not isinstance(page, int) or isinstance(page, bool) or page < 0:
            raise ProtocolError(f"'page' must be a non-negative integer, got {page!r}")
        if (
            not isinstance(page_size, int)
            or isinstance(page_size, bool)
            or not 1 <= page_size <= MAX_PAGE_SIZE
        ):
            raise ProtocolError(
                f"'page_size' must be an integer in [1, {MAX_PAGE_SIZE}], "
                f"got {page_size!r}"
            )
        params = dict(params or {})
        key = (
            corpus,
            journal.generation,
            kind,
            tuple(sorted((str(k), str(v)) for k, v in params.items())),
            f"{page}:{page_size}",
        )
        if use_cache:
            hit, value = self.cache.get(key)
            if hit:
                response = dict(value)
                response["cache"] = True
                return response
        index = self.index_for(corpus, docs, results, journal)
        if kind == "match":
            response = self._match(index, docs, params, page, page_size)
        else:
            response = self._errors(index, docs, params, page, page_size)
        response.update(
            {
                "corpus": corpus,
                "kind": kind,
                "generation": index.generation,
                "page": page,
                "page_size": page_size,
            }
        )
        if use_cache:
            self.cache.put(key, dict(response))
        response["cache"] = False
        return response

    @staticmethod
    def _match(
        index: CorpusIndex,
        docs: DocumentStore,
        params: Dict[str, Any],
        page: int,
        page_size: int,
    ) -> Dict[str, Any]:
        nonterminal = params.get("nonterminal")
        if not isinstance(nonterminal, str) or not nonterminal:
            raise ProtocolError(
                "'match' queries need a 'nonterminal' name in 'params'"
            )
        entries = index.by_nonterminal.get(nonterminal, [])
        start = page * page_size
        hits = [
            {
                "doc": doc,
                "name": (docs.get(doc) or {}).get("name"),
                "count": count,
            }
            for doc, count in entries[start : start + page_size]
        ]
        return {
            "total": len(entries),
            "occurrences": sum(count for _, count in entries),
            "hits": hits,
        }

    @staticmethod
    def _errors(
        index: CorpusIndex,
        docs: DocumentStore,
        params: Dict[str, Any],
        page: int,
        page_size: int,
    ) -> Dict[str, Any]:
        groups = sorted(
            index.errors.values(),
            key=lambda slot: (-slot["count"], slot["signature"]),
        )
        start = page * page_size
        hits = []
        for slot in groups[start : start + page_size]:
            hit = dict(slot)
            hit["docs"] = [
                {"doc": doc, "name": (docs.get(doc) or {}).get("name")}
                for doc in slot["docs"]
            ]
            hits.append(hit)
        return {
            "total": len(groups),
            "accepted": index.accepted,
            "rejected": index.rejected,
            "hits": hits,
        }
