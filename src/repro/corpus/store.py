"""Persistent, content-addressed corpus storage.

Three stores, three durability disciplines:

* :class:`DocumentStore` — the ingest manifest (``docs.json``).  Documents
  are keyed by content hash, so re-ingesting the same payload is a no-op
  (idempotency) and identical documents under different names are stored
  once.  Each bulk ingest rewrites the manifest atomically through
  :func:`repro.lr.serialize.save_payload` (temp + fsync + ``os.replace``).

* :class:`ResultStore` — hash-consed parse results
  (``results/<hash>.json``).  A payload's name *is* the hash of its
  canonical JSON encoding, so documents that parse to identical forests
  share one file (write-once: an existing file is never rewritten) and
  the dedup ratio is directly measurable.

* :class:`ParseJournal` — the resumability record (``parse.log``).  One
  appended JSON line per *completed* document, flushed per line like the
  mutation journal of PR 7, fsynced periodically, with a tolerated torn
  tail: a process killed mid-append loses at most the final partial line
  and the parse it recorded — which simply re-runs on resume.  A document
  hash appearing twice is a *duplicate parse* and is counted, because the
  whole point of the journal is that this number stays zero.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..lr.serialize import load_payload, save_payload

#: Manifest / journal format tag, for forward compatibility.
FORMAT_VERSION = 1

#: Fsync the journal every N appends (each append is still flushed, so
#: only an OS crash — not a process kill — can lose the unsynced suffix).
FSYNC_INTERVAL = 32


def content_hash(text: str) -> str:
    """The content address of ``text``: truncated SHA-256, hex.

    96 bits keeps names short enough for filenames and log lines while
    making accidental collision astronomically unlikely at corpus scale.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def payload_hash(payload: Dict[str, Any]) -> str:
    """The content address of a JSON-able payload (canonical encoding)."""
    canonical = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return content_hash(canonical)


class DocumentStore:
    """The content-addressed document manifest of one corpus."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._path = os.path.join(directory, "docs.json")
        self._lock = threading.Lock()
        #: hash -> {"name": ..., "text": ...}, in first-ingest order.
        self._docs: Dict[str, Dict[str, str]] = {}
        os.makedirs(directory, exist_ok=True)
        if os.path.exists(self._path):
            manifest = load_payload(self._path)
            if manifest.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported document manifest format "
                    f"{manifest.get('format')!r} in {self._path}"
                )
            for digest, name, text in manifest.get("docs", []):
                self._docs[digest] = {"name": name, "text": text}

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, digest: str) -> bool:
        return digest in self._docs

    def get(self, digest: str) -> Optional[Dict[str, str]]:
        return self._docs.get(digest)

    def hashes(self) -> List[str]:
        """All document hashes in first-ingest order."""
        return list(self._docs)

    def items(self) -> Iterator[Tuple[str, Dict[str, str]]]:
        return iter(list(self._docs.items()))

    def add_many(self, documents: Iterable[Tuple[str, str]]) -> Dict[str, int]:
        """Ingest ``(name, text)`` pairs; one atomic manifest rewrite.

        Returns ``{"added": n, "duplicates": m}`` where a duplicate is a
        document whose text is already stored (under any name) — the
        manifest keeps the first name it ever saw for a given content.
        """
        added = duplicates = 0
        with self._lock:
            for name, text in documents:
                digest = content_hash(text)
                if digest in self._docs:
                    duplicates += 1
                    continue
                self._docs[digest] = {"name": name, "text": text}
                added += 1
            if added:
                self._save_locked()
        return {"added": added, "duplicates": duplicates}

    def _save_locked(self) -> None:
        save_payload(
            {
                "format": FORMAT_VERSION,
                "docs": [
                    [digest, entry["name"], entry["text"]]
                    for digest, entry in self._docs.items()
                ],
            },
            self._path,
        )


class ResultStore:
    """Write-once, hash-consed parse payloads under ``results/``."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.join(directory, "results")
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._known = {
            name[: -len(".json")]
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        }
        self.puts = 0
        self.dedup_hits = 0

    def __len__(self) -> int:
        return len(self._known)

    def __contains__(self, digest: str) -> bool:
        return digest in self._known

    def put(self, payload: Dict[str, Any]) -> Tuple[str, bool]:
        """Store ``payload``; returns ``(hash, created)``.

        Two documents producing identical payloads land on the same file;
        the second put is a dedup hit and touches nothing on disk.
        """
        digest = payload_hash(payload)
        with self._lock:
            self.puts += 1
            if digest in self._known:
                self.dedup_hits += 1
                return digest, False
            save_payload(payload, self._path_of(digest))
            self._known.add(digest)
            return digest, True

    def get(self, digest: str) -> Dict[str, Any]:
        return load_payload(self._path_of(digest))

    def dedup_ratio(self) -> float:
        """Fraction of puts answered by an existing payload."""
        return self.dedup_hits / self.puts if self.puts else 0.0

    def _path_of(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")


class ParseJournal:
    """Append-only per-document completion log; the resume point.

    Entries are ``{"doc": h, "result": rh, "accepted": bool}`` JSON
    lines.  Loading tolerates a torn final line (SIGKILL mid-append) by
    dropping it; everything before the tear is a completed parse that
    must **not** re-run.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        #: doc hash -> journal entry, replay order preserved.
        self.entries: Dict[str, Dict[str, Any]] = {}
        #: doc hashes journaled more than once — always a bug upstream.
        self.duplicates = 0
        self._torn = False
        self._appends_since_sync = 0
        self._load()
        self._handle = open(self.path, "a")

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        position = good_end = 0
        while position < len(data):
            newline = data.find(b"\n", position)
            if newline == -1:
                # Unterminated tail: an append cut off mid-line.
                self._torn = True
                break
            line = data[position:newline].strip()
            position = newline + 1
            if line:
                try:
                    entry = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    self._torn = True
                    break
                doc = entry.get("doc")
                if not isinstance(doc, str):
                    self._torn = True
                    break
                if doc in self.entries:
                    self.duplicates += 1
                self.entries[doc] = entry
            good_end = position
        if self._torn:
            # Repair, don't just tolerate: truncate the torn suffix so the
            # next append lands on a clean line boundary.  Without this,
            # post-crash appends would sit *behind* the torn line forever
            # and every future replay would stop before reaching them —
            # re-parsing the same documents on every restart.
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, doc: str) -> bool:
        return doc in self.entries

    @property
    def generation(self) -> int:
        """Monotone corpus generation: completed-parse count.

        Queries key their cache on this — any newly journaled document
        invalidates cached pages without explicit bookkeeping.
        """
        return len(self.entries)

    @property
    def torn_tail(self) -> bool:
        return self._torn

    def append(self, doc: str, result: Optional[str], accepted: bool,
               extra: Optional[Dict[str, Any]] = None) -> None:
        entry: Dict[str, Any] = {"doc": doc, "result": result, "accepted": accepted}
        if extra:
            entry.update(extra)
        with self._lock:
            if doc in self.entries:
                self.duplicates += 1
            self.entries[doc] = entry
            self._handle.write(
                json.dumps(entry, separators=(",", ":"), sort_keys=True) + "\n"
            )
            self._handle.flush()
            self._appends_since_sync += 1
            if self._appends_since_sync >= FSYNC_INTERVAL:
                os.fsync(self._handle.fileno())
                self._appends_since_sync = 0

    def sync(self) -> None:
        with self._lock:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._appends_since_sync = 0

    def close(self) -> None:
        with self._lock:
            if self._handle.closed:
                return
            self._handle.flush()
            try:
                os.fsync(self._handle.fileno())
            except OSError:
                pass
            self._handle.close()
