"""ISG: the lazy & incremental scanner.

A scanner holds an ordered list of token definitions (order = priority)
plus layout definitions.  Scanning is maximal munch over the lazy DFA:

* at each position, run the DFA as far as any transition exists,
  remembering the last accepting state (the *longest* match);
* on a tie in length, the earliest-priority accepting tag wins — this is
  how literal keywords shadow the identifier sort;
* layout matches are skipped silently.

Definitions can be added and removed while the scanner is live:
:meth:`Scanner.add_token` / :meth:`Scanner.remove_token` update the shared
NFA and ask the lazy DFA to invalidate exactly the states the change can
affect (section 6's MODIFY, transposed to scanning).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .dfa import LazyDFA
from .nfa import NFA
from .regex import Regex


class ScanError(ValueError):
    """No token matches at the current position."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(message)
        self.position = position


class Lexeme:
    """One scanned token: the sort it belongs to, its text and position."""

    __slots__ = ("sort", "text", "position")

    def __init__(self, sort: str, text: str, position: int) -> None:
        self.sort = sort
        self.text = text
        self.position = position

    def __repr__(self) -> str:
        return f"Lexeme({self.sort}, {self.text!r}, @{self.position})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Lexeme)
            and other.sort == self.sort
            and other.text == self.text
            and other.position == self.position
        )

    def __hash__(self) -> int:
        return hash((self.sort, self.text, self.position))


class Scanner:
    """A maximal-munch scanner over a lazily determinized NFA."""

    def __init__(self) -> None:
        self.nfa = NFA()
        self.dfa = LazyDFA(self.nfa)
        self._priority: List[str] = []
        self._layout: List[str] = []
        self._definitions: Dict[str, Regex] = {}

    # -- definition management (the incremental interface) -----------------

    def add_token(
        self,
        sort: str,
        regex: Regex,
        layout: bool = False,
        before: Optional[str] = None,
    ) -> None:
        """Add (or extend) a token definition.

        Re-adding an existing sort *extends* it (alternation), matching
        how SDF lexical functions accumulate per sort.  Priority is the
        order of first addition; pass ``before`` to splice a new
        definition ahead of an existing sort — the way a keyword added to
        a live language must outrank the identifier sort on length ties.
        """
        if sort in self._definitions:
            from .regex import Alt

            previous = self._definitions[sort]
            self.remove_token(sort, _keep_priority=True)
            regex = Alt((previous, regex))
        self.nfa.add_definition(sort, regex)
        self._definitions[sort] = regex
        if sort not in self._priority:
            if before is not None and before in self._priority:
                self._priority.insert(self._priority.index(before), sort)
            else:
                self._priority.append(sort)
        if layout and sort not in self._layout:
            self._layout.append(sort)
        self.dfa.invalidate_definition(sort)

    def remove_token(self, sort: str, _keep_priority: bool = False) -> None:
        """Remove a token definition and invalidate affected DFA states."""
        if sort not in self._definitions:
            return
        self.dfa.invalidate_definition(sort)
        self.nfa.remove_definition(sort)
        del self._definitions[sort]
        if not _keep_priority:
            if sort in self._priority:
                self._priority.remove(sort)
            if sort in self._layout:
                self._layout.remove(sort)

    @property
    def sorts(self) -> Tuple[str, ...]:
        return tuple(self._priority)

    @property
    def layout_sorts(self) -> Tuple[str, ...]:
        return tuple(self._layout)

    # -- scanning --------------------------------------------------------

    def scan(self, text: str) -> List[Lexeme]:
        """Tokenize ``text`` completely; layout sorts are dropped."""
        result: List[Lexeme] = []
        position = 0
        while position < len(text):
            lexeme = self._match_at(text, position)
            if lexeme is None:
                raise ScanError(
                    f"no token matches at position {position}: "
                    f"{text[position:position + 20]!r}...",
                    position,
                )
            if lexeme.sort not in self._layout:
                result.append(lexeme)
            position += len(lexeme.text)
        return result

    def _match_at(self, text: str, position: int) -> Optional[Lexeme]:
        """Longest match starting at ``position`` (None if nothing matches)."""
        state = self.dfa.start
        best_sort: Optional[str] = None
        best_end = position
        index = position
        while True:
            if state.tags:
                sort = self._highest_priority(state.tags)
                if sort is not None and (index > best_end or best_sort is None):
                    best_sort, best_end = sort, index
            if index >= len(text):
                break
            next_state = self.dfa.step(state, text[index])
            if next_state is None:
                break
            state = next_state
            index += 1
        if best_sort is None or best_end == position:
            return None
        return Lexeme(best_sort, text[position:best_end], position)

    def _highest_priority(self, tags: Sequence[str]) -> Optional[str]:
        ranked = [t for t in tags if t in self._priority]
        if not ranked:
            return None
        return min(ranked, key=self._priority.index)

    # -- metrics -----------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        return {
            "dfa_states": self.dfa.materialized_states,
            "transitions_computed": self.dfa.transitions_computed,
            "nfa_states": self.nfa.size,
            "definitions": len(self._definitions),
        }
