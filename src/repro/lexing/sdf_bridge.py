"""Bridge: SDF lexical syntax → ISG scanner.

This is the glue that makes the full ISG/IPG pipeline of section 1 run:
given a parsed SDF definition, build a :class:`~repro.lexing.scanner.Scanner`
whose token sorts are

* every quoted literal of the context-free syntax (keywords and
  punctuation, added first so they shadow identifier-like sorts on equal
  length — reserved words),
* every lexical sort the context-free syntax references (``ID``,
  ``LITERAL``, ...), compiled from its lexical functions with helper sorts
  (``LETTER``, ``ID-TAIL``) inlined,
* the declared layout sorts, marked as layout.

Helper-sort inlining requires the lexical definitions to be non-recursive
(Appendix B's are); a cycle raises :class:`LexicalCycleError`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..sdf.ast import (
    CfIter,
    CfLiteral,
    CfSepIter,
    CfSort,
    LexCharClass,
    LexElem,
    LexLiteral,
    LexSortRef,
    SdfDefinition,
)
from .chars import parse_char_class
from .regex import Alt, Concat, Epsilon, Regex, Star, Sym, literal, plus
from .scanner import Scanner


class LexicalCycleError(ValueError):
    """A lexical sort is (mutually) recursive and cannot be inlined."""


def _sort_regexes(definition: SdfDefinition) -> Dict[str, List[Tuple[LexElem, ...]]]:
    table: Dict[str, List[Tuple[LexElem, ...]]] = {}
    for function in definition.lexical.functions:
        table.setdefault(function.sort, []).append(function.elems)
    return table


class _Inliner:
    def __init__(self, definition: SdfDefinition) -> None:
        self.bodies = _sort_regexes(definition)
        self.memo: Dict[str, Regex] = {}
        self.in_progress: Set[str] = set()

    def regex_for(self, sort: str) -> Regex:
        if sort in self.memo:
            return self.memo[sort]
        if sort in self.in_progress:
            raise LexicalCycleError(f"lexical sort {sort!r} is recursive")
        if sort not in self.bodies:
            raise LexicalCycleError(f"lexical sort {sort!r} has no definition")
        self.in_progress.add(sort)
        alternatives = [self._body(body) for body in self.bodies[sort]]
        self.in_progress.remove(sort)
        regex = alternatives[0] if len(alternatives) == 1 else Alt(alternatives)
        self.memo[sort] = regex
        return regex

    def _body(self, elems: Sequence[LexElem]) -> Regex:
        parts: List[Regex] = []
        for elem in elems:
            if isinstance(elem, LexLiteral):
                parts.append(literal(elem.text))
            elif isinstance(elem, LexCharClass):
                charset = parse_char_class(elem.spec)
                if elem.negated:
                    charset = charset.complement()
                parts.append(Sym(charset))
            else:
                assert isinstance(elem, LexSortRef)
                inner = self.regex_for(elem.name)
                if elem.iterator == "*":
                    parts.append(Star(inner))
                elif elem.iterator == "+":
                    parts.append(plus(inner))
                else:
                    parts.append(inner)
        if not parts:
            return Epsilon()
        return parts[0] if len(parts) == 1 else Concat(parts)


def referenced_lexical_sorts(definition: SdfDefinition) -> Tuple[str, ...]:
    """Lexical sorts the context-free syntax uses as terminals."""
    cf_sorts = set(definition.contextfree.sorts)
    seen: List[str] = []
    for function in definition.contextfree.functions:
        for elem in function.elems:
            if isinstance(elem, (CfSort, CfIter, CfSepIter)):
                name = elem.name
                if name not in cf_sorts and name not in seen:
                    seen.append(name)
    return tuple(seen)


def cf_literals(definition: SdfDefinition) -> Tuple[str, ...]:
    """Every quoted literal of the context-free syntax, in source order."""
    seen: List[str] = []
    for function in definition.contextfree.functions:
        for elem in function.elems:
            if isinstance(elem, CfLiteral) and elem.text not in seen:
                seen.append(elem.text)
            if isinstance(elem, CfSepIter) and elem.separator not in seen:
                seen.append(elem.separator)
    return tuple(seen)


def scanner_from_sdf(definition: SdfDefinition) -> Scanner:
    """Build the ISG scanner for an SDF definition.

    Literal token sorts are named ``'lit:<text>'`` to keep them apart from
    lexical sorts; callers mapping lexemes to grammar terminals strip the
    prefix (a ``lit:`` lexeme's terminal is its text, other lexemes'
    terminal is their sort name — mirroring
    :meth:`repro.sdf.tokens.Token.terminal`).
    """
    scanner = Scanner()
    # Literals first: on equal-length matches the earlier definition wins,
    # which reserves keywords against ID-like sorts.
    for text in cf_literals(definition):
        scanner.add_token(f"lit:{text}", literal(text))
    inliner = _Inliner(definition)
    for sort in referenced_lexical_sorts(definition):
        scanner.add_token(sort, inliner.regex_for(sort))
    for sort in definition.lexical.layout:
        scanner.add_token(sort, inliner.regex_for(sort), layout=True)
    return scanner
