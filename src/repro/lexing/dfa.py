"""Lazy subset construction — the scanner analog of lazy parse tables.

[HKR87a] applies the same lazy/incremental idea to scanner generation that
the main paper applies to parser generation: do not determinize the NFA up
front; materialize a DFA state the first time the scanner reaches it, and
memoize transitions per character as they are taken.  A text that only
uses part of the lexical syntax only ever pays for that part — the
``fraction_of`` metric mirrors §5.2's "60 percent of the parse table".

Invalidation (the incremental half) is coarse but sound: when a token
definition changes, every materialized DFA state whose NFA subset contains
a state owned by that definition is dropped, together with all memoized
transitions into it.  Untouched regions of the DFA survive, exactly like
the untouched item sets of section 6.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .chars import ALPHABET
from .nfa import NFA


class DFAState:
    """A materialized subset-construction state."""

    __slots__ = ("uid", "subset", "transitions", "tags")

    def __init__(self, uid: int, subset: FrozenSet[int], tags: Tuple[str, ...]) -> None:
        self.uid = uid
        self.subset = subset
        #: memoized per-character moves; None = known dead end
        self.transitions: Dict[str, Optional["DFAState"]] = {}
        #: token definitions accepted here, in priority order
        self.tags = tags

    def __repr__(self) -> str:
        return f"DFAState(#{self.uid}, {len(self.subset)} nfa states, tags={self.tags})"


class LazyDFA:
    """Subset construction memoized per state and per character."""

    def __init__(self, nfa: NFA) -> None:
        self.nfa = nfa
        self._by_subset: Dict[FrozenSet[int], DFAState] = {}
        self._next_uid = 0
        self.transitions_computed = 0
        self._start: Optional[DFAState] = None

    @property
    def start(self) -> DFAState:
        if self._start is None:
            subset = self.nfa.epsilon_closure(frozenset({self.nfa.start}))
            self._start = self._materialize(subset)
        return self._start

    def _materialize(self, subset: FrozenSet[int]) -> DFAState:
        state = self._by_subset.get(subset)
        if state is None:
            state = DFAState(
                self._next_uid, subset, self.nfa.accepting_tags(subset)
            )
            self._next_uid += 1
            self._by_subset[subset] = state
        return state

    def step(self, state: DFAState, ch: str) -> Optional[DFAState]:
        """The transition on ``ch``, computing and memoizing it by need."""
        if ch in state.transitions:
            return state.transitions[ch]
        subset = self.nfa.step(state.subset, ch)
        target = self._materialize(subset) if subset else None
        state.transitions[ch] = target
        self.transitions_computed += 1
        return target

    # -- metrics -----------------------------------------------------------

    @property
    def materialized_states(self) -> int:
        return len(self._by_subset)

    def full_state_count(self) -> int:
        """States of the *complete* DFA (the eager-generation denominator).

        Built fresh by exhaustive subset construction over the alphabet;
        used only by metrics/benches, never by the scanner itself.
        """
        start = self.nfa.epsilon_closure(frozenset({self.nfa.start}))
        seen: Set[FrozenSet[int]] = {start}
        work: List[FrozenSet[int]] = [start]
        while work:
            subset = work.pop()
            for ch in ALPHABET:
                target = self.nfa.step(subset, ch)
                if target and target not in seen:
                    seen.add(target)
                    work.append(target)
        return len(seen)

    def fraction_of_full(self) -> float:
        """Materialized / full — the scanner's §5.2-style laziness metric."""
        full = self.full_state_count()
        return self.materialized_states / full if full else 0.0

    # -- incremental invalidation ---------------------------------------

    def invalidate_definition(self, tag: str) -> int:
        """Drop DFA states involving NFA states owned by ``tag``.

        Returns the number of states dropped.  Memoized transitions of the
        *surviving* states that point into a dropped state are erased as
        well, so they are recomputed against the modified NFA by need.
        """
        owned = {
            state for state, owner in self.nfa.owner.items() if owner == tag
        }
        doomed = [
            subset
            for subset in self._by_subset
            if subset & owned
        ]
        for subset in doomed:
            del self._by_subset[subset]
        # Erase memoized edges into dropped states, and re-derive start.
        survivors = list(self._by_subset.values())
        live = {id(s) for s in survivors}
        for state in survivors:
            stale = [
                ch
                for ch, target in state.transitions.items()
                if target is not None and id(target) not in live
            ]
            for ch in stale:
                del state.transitions[ch]
        self._start = None
        return len(doomed)
