"""Character sets, including SDF's ``[...]`` / ``~[...]`` classes.

The lexical half of Appendix B describes tokens with character classes
like ``[a-zA-Z0-9\\-_]`` and complements like ``~[\\n\\-]``.  A
:class:`CharSet` is an immutable predicate over single characters with the
set algebra the NFA construction needs.

Complemented classes are relative to :data:`ALPHABET`, the fixed universe
of printable ASCII plus common whitespace — the same universe the paper's
scanners deal with (SUN-era 8-bit text, minus control characters).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

#: The character universe for complement classes.
ALPHABET: FrozenSet[str] = frozenset(
    {chr(code) for code in range(32, 127)} | {"\t", "\n", "\r", "\f"}
)


class CharClassError(ValueError):
    """A malformed ``[...]`` specification."""


class CharSet:
    """An immutable set of characters."""

    __slots__ = ("chars",)

    def __init__(self, chars: Iterable[str]) -> None:
        frozen = frozenset(chars)
        for ch in frozen:
            if not isinstance(ch, str) or len(ch) != 1:
                raise CharClassError(f"not a character: {ch!r}")
        object.__setattr__(self, "chars", frozen)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CharSet is immutable")

    # -- predicate & algebra ----------------------------------------------

    def __contains__(self, ch: str) -> bool:
        return ch in self.chars

    def __len__(self) -> int:
        return len(self.chars)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharSet) and other.chars == self.chars

    def __hash__(self) -> int:
        return hash(self.chars)

    def union(self, other: "CharSet") -> "CharSet":
        return CharSet(self.chars | other.chars)

    def complement(self) -> "CharSet":
        """The complement within :data:`ALPHABET` (SDF's ``~[...]``)."""
        return CharSet(ALPHABET - self.chars)

    def __repr__(self) -> str:
        if len(self.chars) <= 8:
            return f"CharSet({''.join(sorted(self.chars))!r})"
        return f"CharSet({len(self.chars)} chars)"


def single(ch: str) -> CharSet:
    return CharSet((ch,))


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
}


def parse_char_class(spec: str) -> CharSet:
    """Parse an SDF character class like ``[a-zA-Z0-9\\-_]``.

    ``spec`` includes the brackets.  Backslash escapes produce the escaped
    character (``\\n`` etc. map to their control characters, anything else
    to itself — so ``\\-`` is a literal dash, not a range operator).  An
    empty class ``[]`` is legal and matches nothing; its complement
    (``~[]``) therefore matches any character, which is how Appendix B
    writes "any char" for escape sequences.
    """
    if len(spec) < 2 or spec[0] != "[" or spec[-1] != "]":
        raise CharClassError(f"malformed character class {spec!r}")
    body = spec[1:-1]

    # First decode escapes into (char, was_escaped) pairs so that a dash
    # that came from an escape can never act as a range operator.
    decoded: list = []
    index = 0
    while index < len(body):
        ch = body[index]
        if ch == "\\":
            if index + 1 >= len(body):
                raise CharClassError(f"dangling escape in {spec!r}")
            escaped = body[index + 1]
            decoded.append((_ESCAPES.get(escaped, escaped), True))
            index += 2
        else:
            decoded.append((ch, False))
            index += 1

    chars = set()
    position = 0
    while position < len(decoded):
        ch, _escaped = decoded[position]
        is_range = (
            position + 2 < len(decoded)
            and decoded[position + 1] == ("-", False)
        )
        if is_range:
            low = ch
            high, _ = decoded[position + 2]
            if ord(low) > ord(high):
                raise CharClassError(
                    f"inverted range {low}-{high} in {spec!r}"
                )
            chars.update(chr(code) for code in range(ord(low), ord(high) + 1))
            position += 3
        else:
            chars.add(ch)
            position += 1
    return CharSet(chars)
