"""Thompson construction: regex → NFA with epsilon moves.

One NFA serves the whole scanner: each token definition contributes a
branch from the shared start state, and its accepting state is tagged with
the definition it belongs to.  The tag is what lets the lazy DFA attribute
a match to a token sort — and what lets the *incremental* scanner
invalidate exactly the DFA states whose subsets mention a modified
definition.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .chars import CharSet
from .regex import Alt, Concat, Epsilon, Regex, Star, Sym


class NFA:
    """A non-deterministic automaton with tagged accepting states."""

    def __init__(self) -> None:
        self.start = 0
        self._next_state = 1
        #: state -> list of (charset, target); None charset = epsilon move
        self.moves: Dict[int, List[Tuple[Optional[CharSet], int]]] = {0: []}
        #: accepting state -> definition tag (e.g. the token sort name)
        self.accepts: Dict[int, str] = {}
        #: state -> tag of the definition whose compilation created it
        self.owner: Dict[int, str] = {}

    def new_state(self, owner: str) -> int:
        state = self._next_state
        self._next_state += 1
        self.moves[state] = []
        self.owner[state] = owner
        return state

    def add_move(self, source: int, charset: Optional[CharSet], target: int) -> None:
        self.moves[source].append((charset, target))

    # -- construction ------------------------------------------------------

    def add_definition(self, tag: str, regex: Regex) -> None:
        """Compile ``regex`` as a new branch accepting with ``tag``."""
        entry, exit_ = self._compile(regex, tag)
        self.add_move(self.start, None, entry)
        self.accepts[exit_] = tag

    def remove_definition(self, tag: str) -> None:
        """Drop every state owned by ``tag`` (the incremental delete).

        The shared start state keeps only its moves into surviving states.
        """
        doomed: Set[int] = {
            state for state, owner in self.owner.items() if owner == tag
        }
        for state in doomed:
            self.moves.pop(state, None)
            self.accepts.pop(state, None)
            self.owner.pop(state, None)
        for state, moves in self.moves.items():
            self.moves[state] = [
                (cs, target) for cs, target in moves if target not in doomed
            ]

    def _compile(self, regex: Regex, tag: str) -> Tuple[int, int]:
        """Thompson construction; returns (entry, exit) states."""
        if isinstance(regex, Epsilon):
            entry = self.new_state(tag)
            exit_ = self.new_state(tag)
            self.add_move(entry, None, exit_)
            return entry, exit_
        if isinstance(regex, Sym):
            entry = self.new_state(tag)
            exit_ = self.new_state(tag)
            self.add_move(entry, regex.charset, exit_)
            return entry, exit_
        if isinstance(regex, Concat):
            if not regex.parts:
                return self._compile(Epsilon(), tag)
            entry, current_exit = self._compile(regex.parts[0], tag)
            for part in regex.parts[1:]:
                nxt_entry, nxt_exit = self._compile(part, tag)
                self.add_move(current_exit, None, nxt_entry)
                current_exit = nxt_exit
            return entry, current_exit
        if isinstance(regex, Alt):
            entry = self.new_state(tag)
            exit_ = self.new_state(tag)
            if not regex.choices:
                # matches nothing: entry never reaches exit
                return entry, exit_
            for choice in regex.choices:
                c_entry, c_exit = self._compile(choice, tag)
                self.add_move(entry, None, c_entry)
                self.add_move(c_exit, None, exit_)
            return entry, exit_
        if isinstance(regex, Star):
            entry = self.new_state(tag)
            exit_ = self.new_state(tag)
            i_entry, i_exit = self._compile(regex.inner, tag)
            self.add_move(entry, None, i_entry)
            self.add_move(entry, None, exit_)
            self.add_move(i_exit, None, i_entry)
            self.add_move(i_exit, None, exit_)
            return entry, exit_
        raise TypeError(f"not a Regex: {regex!r}")

    # -- simulation helpers --------------------------------------------

    def epsilon_closure(self, states: FrozenSet[int]) -> FrozenSet[int]:
        closure: Set[int] = set(states)
        work = list(states)
        while work:
            state = work.pop()
            for charset, target in self.moves.get(state, ()):
                if charset is None and target not in closure:
                    closure.add(target)
                    work.append(target)
        return frozenset(closure)

    def step(self, states: FrozenSet[int], ch: str) -> FrozenSet[int]:
        targets: Set[int] = set()
        for state in states:
            for charset, target in self.moves.get(state, ()):
                if charset is not None and ch in charset:
                    targets.add(target)
        return self.epsilon_closure(frozenset(targets))

    def accepting_tags(self, states: FrozenSet[int]) -> Tuple[str, ...]:
        """Tags accepted in ``states``, in insertion (priority) order."""
        seen: List[str] = []
        for state, tag in self.accepts.items():
            if state in states and tag not in seen:
                seen.append(tag)
        return tuple(seen)

    @property
    def size(self) -> int:
        return len(self.moves)
