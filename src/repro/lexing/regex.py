"""A small regular-expression AST for token definitions.

ISG — the lazy/incremental *scanner* generator companion of IPG
([HKR87a], used together with IPG in the ASF+SDF editor of section 1) —
works from regular token definitions.  This module provides the definition
language: a conventional regex AST built programmatically (there is no
concrete regex syntax to parse; definitions come from SDF lexical
functions or from Python code).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .chars import CharSet, single


class Regex:
    """Base class; immutable."""

    __slots__ = ()

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")


class Epsilon(Regex):
    """Matches the empty string."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Epsilon()"


class Sym(Regex):
    """Matches one character from a :class:`CharSet`."""

    __slots__ = ("charset",)

    def __init__(self, charset: CharSet) -> None:
        object.__setattr__(self, "charset", charset)

    def __repr__(self) -> str:
        return f"Sym({self.charset!r})"


class Concat(Regex):
    """Matches ``parts`` in sequence."""

    __slots__ = ("parts",)

    def __init__(self, parts: Iterable[Regex]) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def __repr__(self) -> str:
        return f"Concat({list(self.parts)!r})"


class Alt(Regex):
    """Matches any of ``choices``."""

    __slots__ = ("choices",)

    def __init__(self, choices: Iterable[Regex]) -> None:
        object.__setattr__(self, "choices", tuple(choices))

    def __repr__(self) -> str:
        return f"Alt({list(self.choices)!r})"


class Star(Regex):
    """Zero or more repetitions."""

    __slots__ = ("inner",)

    def __init__(self, inner: Regex) -> None:
        object.__setattr__(self, "inner", inner)

    def __repr__(self) -> str:
        return f"Star({self.inner!r})"


# -- convenience builders ------------------------------------------------------


def literal(text: str) -> Regex:
    """The regex matching exactly ``text``."""
    if not text:
        return Epsilon()
    return Concat(Sym(single(ch)) for ch in text)


def plus(inner: Regex) -> Regex:
    """One or more repetitions (``inner inner*``)."""
    return Concat((inner, Star(inner)))


def optional(inner: Regex) -> Regex:
    return Alt((inner, Epsilon()))


def char_class(charset: CharSet) -> Regex:
    return Sym(charset)


def any_of(*choices: Regex) -> Regex:
    return Alt(choices)


def sequence(*parts: Regex) -> Regex:
    return Concat(parts)


def first_chars(regex: Regex) -> Tuple[str, ...]:
    """Characters that can begin a match (used by scanner diagnostics)."""
    if isinstance(regex, Epsilon):
        return ()
    if isinstance(regex, Sym):
        return tuple(sorted(regex.charset.chars))
    if isinstance(regex, Concat):
        result: Tuple[str, ...] = ()
        for part in regex.parts:
            result = tuple(sorted(set(result) | set(first_chars(part))))
            if not nullable(part):
                break
        return result
    if isinstance(regex, Alt):
        chars = set()
        for choice in regex.choices:
            chars.update(first_chars(choice))
        return tuple(sorted(chars))
    if isinstance(regex, Star):
        return first_chars(regex.inner)
    raise TypeError(f"not a Regex: {regex!r}")


def nullable(regex: Regex) -> bool:
    """Can the regex match the empty string?"""
    if isinstance(regex, Epsilon):
        return True
    if isinstance(regex, Sym):
        return False
    if isinstance(regex, Concat):
        return all(nullable(part) for part in regex.parts)
    if isinstance(regex, Alt):
        return any(nullable(choice) for choice in regex.choices)
    if isinstance(regex, Star):
        return True
    raise TypeError(f"not a Regex: {regex!r}")
