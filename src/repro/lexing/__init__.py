"""ISG — the lazy & incremental scanner generator ([HKR87a]).

The combination ISG/IPG is the parsing component of the ASF+SDF editor the
paper's introduction describes.  This package is the scanner half: regular
token definitions compile to a shared Thompson NFA; determinization is
*lazy* (DFA states materialize as input is scanned); definition changes
invalidate exactly the affected DFA states — the same lazy/incremental
recipe as the parse tables, one level down.
"""

from .chars import ALPHABET, CharClassError, CharSet, parse_char_class, single
from .dfa import DFAState, LazyDFA
from .nfa import NFA
from .regex import (
    Alt,
    Concat,
    Epsilon,
    Regex,
    Star,
    Sym,
    any_of,
    char_class,
    literal,
    nullable,
    optional,
    plus,
    sequence,
)
from .scanner import Lexeme, ScanError, Scanner
from .sdf_bridge import (
    LexicalCycleError,
    cf_literals,
    referenced_lexical_sorts,
    scanner_from_sdf,
)

__all__ = [
    "ALPHABET",
    "Alt",
    "CharClassError",
    "CharSet",
    "Concat",
    "DFAState",
    "Epsilon",
    "LazyDFA",
    "Lexeme",
    "LexicalCycleError",
    "NFA",
    "Regex",
    "ScanError",
    "Scanner",
    "Star",
    "Sym",
    "any_of",
    "cf_literals",
    "char_class",
    "literal",
    "nullable",
    "optional",
    "parse_char_class",
    "plus",
    "referenced_lexical_sorts",
    "scanner_from_sdf",
    "sequence",
    "single",
]
