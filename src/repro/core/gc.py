"""Garbage collection of item sets (section 6.2).

When MODIFY un-expands states, parts of the graph can become permanently
unreachable, yet *"when all unreachable sets of items are removed
immediately, it is likely that too much is thrown away"* — dangling regions
are often reconnected verbatim by the next re-expansion (Fig. 6.4/6.5).
The paper's compromise, implemented here:

* each item set carries a ``refcount`` of incoming transitions
  (:mod:`repro.lr.graph` increments it in EXPAND);
* MODIFY makes states **dirty** instead of initial: *"A dirty set of items
  is an initial set of items with a history (its old transitions field)"*;
* RE-EXPAND expands a dirty state like an initial one, then decrements the
  reference counts of its *old* targets;
* DECR-REFCOUNT removes a state whose count reaches zero and cascades into
  its own targets;
* reference counting *"cannot yet handle circular references properly"* —
  the paper suggests a conventional mark-and-sweep for that, provided here
  as :meth:`GarbageCollector.collect_cycles`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..lr.graph import ItemSetGraph
from ..lr.states import ItemSet, StateType


class GCStats:
    __slots__ = ("dirtied", "re_expansions", "refcount_removals", "sweep_removals")

    def __init__(self) -> None:
        self.dirtied = 0
        self.re_expansions = 0
        self.refcount_removals = 0
        self.sweep_removals = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"GCStats({self.snapshot()})"


class GarbageCollector:
    """Reference-counting collector with a mark-and-sweep fallback."""

    def __init__(self, graph: ItemSetGraph) -> None:
        self.graph = graph
        self.stats = GCStats()

    # -- MODIFY support --------------------------------------------------

    def mark_dirty(self, itemset: ItemSet) -> None:
        """Un-expand ``itemset``, keeping its history for RE-EXPAND.

        Complete states stash their transitions; initial states have
        nothing to stash; already-dirty states keep their *original*
        history (their interim state never owned references).
        """
        if itemset.type is StateType.COMPLETE:
            itemset.old_transitions = itemset.transitions
            itemset.transitions = {}
            itemset.reductions = ()
            itemset.type = StateType.DIRTY
            self.stats.dirtied += 1
        elif itemset.type is StateType.INITIAL:
            pass  # nothing was computed, nothing to undo
        # dirty stays dirty, history intact

    # -- RE-EXPAND (section 6.2) -----------------------------------------

    def re_expand(self, itemset: ItemSet) -> None:
        """Expand a dirty state, then release its old references."""
        old_transitions = itemset.old_transitions or {}
        itemset.old_transitions = None
        self.graph.expand(itemset)
        self.stats.re_expansions += 1
        for target in old_transitions.values():
            if isinstance(target, ItemSet):
                self.decr_refcount(target)

    # -- DECR-REFCOUNT (section 6.2) ---------------------------------------

    def decr_refcount(self, itemset: ItemSet) -> None:
        """Drop one reference; remove and cascade when none remain."""
        itemset.refcount -= 1
        if itemset.refcount > 0:
            return
        if itemset is self.graph.start:
            # The start state is pinned with one extra count; reaching zero
            # would mean the pin was dropped, which never happens.
            itemset.refcount = 1
            return
        if itemset not in self.graph:
            return  # already removed through another path
        self.graph.remove_state(itemset)
        self.stats.refcount_removals += 1
        # "if itemset.type != initial then ... decrease as well"
        transitions = None
        if itemset.type is StateType.COMPLETE:
            transitions = itemset.transitions
        elif itemset.type is StateType.DIRTY:
            transitions = itemset.old_transitions
        for target in (transitions or {}).values():
            if isinstance(target, ItemSet):
                self.decr_refcount(target)

    # -- mark-and-sweep fallback ---------------------------------------

    def collect_cycles(self) -> int:
        """Remove everything unreachable from the start state; return count.

        Reachability follows complete states' transitions *and* dirty
        states' old transitions — a dangling-but-referenced region (the
        Fig. 6.4 situation) is reachable through the dirty start state's
        history and therefore survives, exactly as the refcount scheme
        intends.  Only genuinely orphaned cycles die here.

        Reference counts are rebuilt from the surviving edges afterwards.
        """
        reachable: Set[int] = set()
        work: List[ItemSet] = [self.graph.start]
        while work:
            state = work.pop()
            if id(state) in reachable:
                continue
            reachable.add(id(state))
            for target in self._edges(state).values():
                if isinstance(target, ItemSet) and id(target) not in reachable:
                    work.append(target)

        removed = 0
        for state in self.graph.states():
            if id(state) not in reachable:
                self.graph.remove_state(state)
                removed += 1
        self.stats.sweep_removals += removed

        # Rebuild counts: one pin for the root plus one per surviving edge.
        for state in self.graph.states():
            state.refcount = 0
        self.graph.start.refcount = 1
        for state in self.graph.states():
            for target in self._edges(state).values():
                if isinstance(target, ItemSet) and target in self.graph:
                    target.refcount += 1
        return removed

    @staticmethod
    def _edges(state: ItemSet) -> Dict:
        if state.type is StateType.COMPLETE:
            return state.transitions
        if state.type is StateType.DIRTY:
            return state.old_transitions or {}
        return {}

    # -- diagnostics -------------------------------------------------------

    def dirty_fraction(self) -> float:
        """Fraction of live states that are dirty.

        The paper's trigger suggestion: run :meth:`collect_cycles` *"when
        the percentage of dirty sets of items becomes too high"*.
        """
        states = self.graph.states()
        if not states:
            return 0.0
        dirty = sum(1 for s in states if s.is_dirty)
        return dirty / len(states)

    def check_refcounts(self) -> List[str]:
        """Verify stored refcounts match the edges (tests only).

        Returns human-readable discrepancy messages; empty means balanced.
        """
        expected: Dict[int, int] = {id(s): 0 for s in self.graph.states()}
        expected[id(self.graph.start)] += 1  # the pin
        for state in self.graph.states():
            for target in self._edges(state).values():
                if isinstance(target, ItemSet) and id(target) in expected:
                    expected[id(target)] += 1
        problems = []
        for state in self.graph.states():
            if state.refcount != expected[id(state)]:
                problems.append(
                    f"state #{state.uid}: refcount={state.refcount}, "
                    f"edges say {expected[id(state)]}"
                )
        return problems
