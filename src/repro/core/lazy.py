"""Lazy parser generation (section 5).

The transformation from the conventional generator is exactly the paper's:
*"We move the parser generation phase into the parsing phase by moving the
expansion of initial sets of items from GENERATE-PARSER to ACTION."*

* :class:`LazyGenerator` is the section-5 GENERATE-PARSER: it only creates
  the start item set (type initial) and returns immediately — construction
  time is "almost zero" (section 7).
* :class:`LazyControl` is the section-5 ACTION/GOTO: ``action`` expands the
  state first when it is still initial (or dirty, after a grammar
  modification); ``goto`` inherits the strict completeness assertion from
  :class:`~repro.lr.generator.GraphControl` — Appendix A proves the parser
  never violates it, and the test suite holds the implementation to that
  proof.
"""

from __future__ import annotations

from typing import Any, Optional

from ..grammar.grammar import Grammar
from ..grammar.symbols import Terminal
from ..lr.actions import ActionSet
from ..lr.generator import GraphControl
from ..lr.graph import ItemSetGraph
from ..lr.states import ItemSet, StateType


class LazyControl(GraphControl):
    """ACTION with expansion-by-need.

    Parameters
    ----------
    graph:
        The (partially generated) graph of item sets.
    collector:
        Optional garbage collector; when present, dirty states are
        re-expanded through it so reference counts stay balanced
        (section 6.2's RE-EXPAND).  Without one, dirty states are treated
        as plain initial states.
    """

    def __init__(self, graph: ItemSetGraph, collector: Optional[Any] = None) -> None:
        super().__init__(graph)
        self.collector = collector

    def ensure_expanded(self, state: ItemSet) -> None:
        """Expand ``state`` if it is not complete yet."""
        if state.type is StateType.COMPLETE:
            return
        if state.type is StateType.DIRTY and self.collector is not None:
            self.collector.re_expand(state)
        else:
            self.graph.expand(state)

    def action(self, state: ItemSet, symbol: Terminal) -> ActionSet:
        """The section-5 ACTION: *"When state is an initial set of items it
        must be expanded first."*"""
        if state.type is not StateType.COMPLETE:
            self.ensure_expanded(state)
        return self._actions_of(state, symbol)

    # goto is inherited unchanged: *"due to the particular way in which the
    # parsing algorithm works, GOTO will only be called with sets of items
    # that have already been completed"* (proved in Appendix A).


class LazyGenerator:
    """The section-5 GENERATE-PARSER: build only the root of the graph.

    Usage::

        gen = LazyGenerator(grammar)     # effectively free
        control = gen.control()
        PoolParser(control, grammar).parse(tokens)   # expands by need
    """

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        # ItemSetGraph's constructor is the lazy GENERATE-PARSER: it seeds
        # start-itemset with the START rules (dot in front) and stops.
        self.graph = ItemSetGraph(grammar)

    def control(self, collector: Optional[Any] = None) -> LazyControl:
        return LazyControl(self.graph, collector)

    def force(self) -> None:
        """Expand the whole graph eagerly (useful for equivalence tests)."""
        self.graph.expand_all()

    def fraction_expanded(self) -> float:
        """Complete states / live states — the §5.2 laziness metric.

        Note this is measured against the *current* graph; to compare with
        the full table size (the paper's "60 percent of the parse table"),
        use :func:`repro.core.metrics.table_fraction`, which also counts
        the states the lazy run never allocated.
        """
        return self.graph.fraction_complete()
