"""Incremental parser generation (section 6): ADD-RULE, DELETE-RULE, MODIFY.

The key observation (section 6.1): when a rule ``A ::= beta`` is added or
deleted, the *first* states affected are those whose closure would gain or
lose ``A ::= .beta`` — and a complete state's closure contains such an item
**iff** its transitions contain a transition on ``A`` (or it is the start
state, when ``A`` is START).  MODIFY therefore just un-expands those
states; the lazy machinery re-expands them against the modified grammar
when — and only if — the parser ever needs them again.

This generator *observes* its grammar: any edit made through
``Grammar.add_rule``/``delete_rule`` (directly or via the convenience
methods here) triggers MODIFY automatically, so there is no way to let the
graph drift out of sync with the grammar.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..lr.graph import ItemSetGraph
from ..lr.states import ItemSet, StateType
from .gc import GarbageCollector
from .lazy import LazyControl


class IncrementalGenerator:
    """Lazy generation plus grammar-modification support.

    Parameters
    ----------
    grammar:
        The (mutable) grammar; the generator subscribes to its edits.
    gc:
        Enable the reference-counting collector of section 6.2.  With GC
        off, MODIFY makes affected states plain *initial* (their old
        transitions are discarded and nothing is ever reclaimed) — the
        simpler variant presented in section 6.1.
    """

    def __init__(self, grammar: Grammar, gc: bool = True) -> None:
        self.grammar = grammar
        self.graph = ItemSetGraph(grammar)
        self.collector: Optional[GarbageCollector] = (
            GarbageCollector(self.graph) if gc else None
        )
        self.control = LazyControl(self.graph, self.collector)
        self._unsubscribe: Callable[[], None] = grammar.subscribe(self._on_edit)
        self.modifications = 0
        self.invalidated_states = 0

    def close(self) -> None:
        """Detach from the grammar (the graph stops tracking edits)."""
        self._unsubscribe()

    # -- the paper's entry points ----------------------------------------

    def add_rule(self, rule: Rule) -> bool:
        """ADD-RULE: add to the grammar and update the graph (via MODIFY)."""
        return self.grammar.add_rule(rule)

    def delete_rule(self, rule: Rule) -> bool:
        """DELETE-RULE: delete from the grammar and update the graph."""
        return self.grammar.delete_rule(rule)

    # -- MODIFY ------------------------------------------------------------

    def _on_edit(self, grammar: Grammar, rule: Rule, added: bool) -> None:
        """The graph-repair half of MODIFY (the grammar half already ran).

        ``added`` is unused on purpose: *"Because addition and deletion of
        a rule are so similar, ADD-RULE and DELETE-RULE use the same
        routine MODIFY"* — the graph repair is identical for both.
        """
        del added
        self.modifications += 1
        lhs = rule.lhs

        if lhs == grammar.start:
            # Only the start state can hold START ::= .beta in its kernel
            # (START never occurs in a right-hand side).
            self.graph.refresh_start_kernel()
            self._invalidate(self.graph.start)
            return

        # "We search Itemsets for all complete sets of items with a
        # transition (A itemset') in their transitions field."
        for itemset in self.graph.states():
            if itemset.type is StateType.COMPLETE and lhs in itemset.transitions:
                self._invalidate(itemset)

    def _invalidate(self, itemset: ItemSet) -> None:
        self.invalidated_states += 1
        if self.collector is not None:
            self.collector.mark_dirty(itemset)
            return
        # GC-free variant: plain re-initialisation (section 6.1).  By
        # definition initial states have no transitions/reductions.
        if itemset.type is StateType.COMPLETE:
            itemset.transitions = {}
            itemset.reductions = ()
        itemset.type = StateType.INITIAL
        itemset.old_transitions = None

    # -- maintenance ----------------------------------------------------

    def collect_garbage(self, force_sweep: bool = False, dirty_threshold: float = 0.5) -> int:
        """Run the mark-and-sweep fallback if warranted; return removals.

        The refcount collector runs continuously (inside RE-EXPAND); this
        is the paper's *"conventional mark-and-sweep garbage collector when
        the percentage of dirty sets of items becomes too high"*.
        """
        if self.collector is None:
            return 0
        if force_sweep or self.collector.dirty_fraction() > dirty_threshold:
            return self.collector.collect_cycles()
        return 0
