"""Instrumentation: invariant probes and the laziness metrics of the paper.

Two consumers:

* tests — :class:`ControlProbe` wraps any parser control and records every
  ACTION/GOTO call, asserting the Appendix A invariant (GOTO only on
  complete states) as a side effect;
* benches/EXPERIMENTS.md — :func:`table_fraction` measures how much of the
  full parse table a lazy run actually generated (the §5.2 "60 percent"
  statistic), and :func:`graph_summary` condenses a graph's state counts.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import NonTerminal, Terminal
from ..lr.actions import ActionSet
from ..lr.graph import ItemSetGraph
from ..lr.states import ItemSet, StateType


class AppendixAViolation(AssertionError):
    """GOTO observed on a non-complete state — Appendix A says: impossible."""


class ControlProbe:
    """A transparent control wrapper that counts and checks every call."""

    def __init__(self, control: Any) -> None:
        self.control = control
        self.action_calls = 0
        self.goto_calls = 0
        self.expansions_triggered = 0
        self.goto_states_seen: List[Any] = []

    @property
    def start_state(self) -> Any:
        return self.control.start_state

    @property
    def graph(self) -> Optional[ItemSetGraph]:
        return getattr(self.control, "graph", None)

    def action(self, state: Any, symbol: Terminal) -> ActionSet:
        self.action_calls += 1
        was_pending = isinstance(state, ItemSet) and state.needs_expansion
        result = self.control.action(state, symbol)
        if was_pending:
            self.expansions_triggered += 1
        return result

    def goto(self, state: Any, symbol: NonTerminal) -> Any:
        self.goto_calls += 1
        if isinstance(state, ItemSet) and state.type is not StateType.COMPLETE:
            raise AppendixAViolation(
                f"GOTO called on {state.type.value} state #{state.uid} "
                f"for symbol {symbol} — the Appendix A invariant is broken"
            )
        self.goto_states_seen.append(state)
        return self.control.goto(state, symbol)

    def snapshot(self) -> Dict[str, int]:
        return {
            "action_calls": self.action_calls,
            "goto_calls": self.goto_calls,
            "expansions_triggered": self.expansions_triggered,
        }


class LatencyStats:
    """Per-key call counters, cumulative wall time, and tail latency.

    The parse service records one ``(command, seconds)`` sample per request
    it dispatches; ``snapshot`` renders the aggregate the ``metrics``
    protocol command reports.  Keys are arbitrary strings, so the same
    class can aggregate per-command, per-session, or per-phase timings.

    With ``window > 0`` the last ``window`` samples per key are kept and
    ``snapshot`` additionally reports ``p50``/``p99`` over that sliding
    window — what the sharded scheduler publishes per shard.  All
    operations are guarded by a lock: the scheduler's shards record into
    shared instances from their worker threads while ``metrics`` requests
    snapshot them from another.
    """

    def __init__(self, window: int = 0) -> None:
        self._window = window
        self._counts: Dict[str, int] = {}
        self._seconds: Dict[str, float] = {}
        self._samples: Dict[str, Deque[float]] = {}
        self._lock = threading.Lock()

    def record(self, key: str, seconds: float) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
            self._seconds[key] = self._seconds.get(key, 0.0) + seconds
            if self._window:
                samples = self._samples.get(key)
                if samples is None:
                    samples = self._samples[key] = deque(maxlen=self._window)
                samples.append(seconds)

    @property
    def total_count(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return sum(self._seconds.values())

    def percentiles(
        self, key: str, points: Tuple[float, ...] = (0.5, 0.99)
    ) -> Dict[str, float]:
        """``{"p50": ..., "p99": ...}`` over the key's sample window.

        Empty when the key has no samples (or the window is disabled).
        Uses the nearest-rank method — adequate for operational tail
        latency, and exact at the window boundaries.
        """
        with self._lock:
            ordered = sorted(self._samples.get(key, ()))
        if not ordered:
            return {}
        report = {}
        for point in points:
            # Nearest-rank: the ceil keeps the estimate on the high side
            # (round() would bias p50 low on even window sizes).
            rank = min(
                len(ordered) - 1,
                max(0, math.ceil(point * len(ordered)) - 1),
            )
            report[f"p{int(point * 100)}"] = round(ordered[rank], 6)
        return report

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``key -> {count, seconds, mean[, p50, p99]}`` per recorded key."""
        with self._lock:
            keys = sorted(self._counts)
            counts = dict(self._counts)
            seconds_by_key = dict(self._seconds)
        report: Dict[str, Dict[str, float]] = {}
        for key in keys:
            count = counts[key]
            seconds = seconds_by_key[key]
            entry = {
                "count": count,
                "seconds": round(seconds, 6),
                "mean": round(seconds / count, 6) if count else 0.0,
            }
            entry.update(self.percentiles(key))
            report[key] = entry
        return report

    def __repr__(self) -> str:
        return (
            f"LatencyStats({self.total_count} calls, "
            f"{self.total_seconds:.3f}s)"
        )


# The full-table state count per (grammar, revision): building the
# reference graph is a complete conventional generation, far too costly
# to re-run for every `metrics` request.  Keyed weakly on the Grammar
# (ItemSetGraph never subscribes, so the throwaway build has no side
# effects on the live grammar) and invalidated by revision, which every
# successful MODIFY bumps.
_REFERENCE_SIZES: "weakref.WeakKeyDictionary[Grammar, Tuple[int, int]]" = (
    weakref.WeakKeyDictionary()
)
_REFERENCE_LOCK = threading.Lock()


def full_table_states(grammar: Grammar) -> int:
    """States in the conventional (fully expanded) table, memoized.

    The memo holds one ``(revision, count)`` pair per live grammar; a
    grammar edit invalidates it by bumping ``revision``.
    """
    revision = grammar.revision
    with _REFERENCE_LOCK:
        cached = _REFERENCE_SIZES.get(grammar)
    if cached is not None and cached[0] == revision:
        return cached[1]
    reference = ItemSetGraph(grammar)
    reference.expand_all()
    total = len(reference)
    with _REFERENCE_LOCK:
        _REFERENCE_SIZES[grammar] = (revision, total)
    return total


def states_materialized(lazy_graph: ItemSetGraph) -> int:
    """Completed (fully expanded) states in a lazy graph — the §5.2 numerator."""
    return sum(1 for s in lazy_graph.states() if s.is_complete)


def table_fraction(lazy_graph: ItemSetGraph, grammar: Optional[Grammar] = None) -> float:
    """Completed lazy states / states of the *full* parse table.

    The §5.2 measurement: after lazily parsing some input, how much of the
    conventional table was actually generated?  The full-table denominator
    (not part of the system under test) is memoized per grammar version —
    see :func:`full_table_states`.
    """
    total = full_table_states(grammar if grammar is not None else lazy_graph.grammar)
    if total == 0:
        return 0.0
    return states_materialized(lazy_graph) / total


def graph_summary(graph: ItemSetGraph) -> Dict[str, int]:
    """State counts by type plus cumulative work counters."""
    states = graph.states()
    return {
        "states": len(states),
        "complete": sum(1 for s in states if s.is_complete),
        "initial": sum(1 for s in states if s.is_initial),
        "dirty": sum(1 for s in states if s.is_dirty),
        "transitions": sum(len(s.transitions) for s in states),
        **graph.stats.snapshot(),
    }
