"""The paper's contribution: lazy + incremental parser generation with GC."""

from .gc import GarbageCollector, GCStats
from .incremental import IncrementalGenerator
from .ipg import IPG
from .lazy import LazyControl, LazyGenerator
from .metrics import (
    AppendixAViolation,
    ControlProbe,
    graph_summary,
    table_fraction,
)

__all__ = [
    "AppendixAViolation",
    "ControlProbe",
    "GCStats",
    "GarbageCollector",
    "IPG",
    "IncrementalGenerator",
    "LazyControl",
    "LazyGenerator",
    "graph_summary",
    "table_fraction",
]
