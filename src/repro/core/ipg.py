"""IPG — the public facade over lazy generation, incremental modification,
garbage collection, and parallel LR parsing.

This is the object a downstream user holds.  A typical interactive
language-definition session (the use case of section 1)::

    from repro import IPG

    ipg = IPG.from_text('''
        B ::= true
        B ::= false
        B ::= B or B
        B ::= B and B
        START ::= B
    ''')
    assert ipg.parse("true and true").accepted       # lazily expands states
    ipg.add_rule("B ::= unknown")                    # incremental MODIFY
    assert ipg.parse("true or unknown").accepted     # re-expands by need

Parsing is Tomita-style parallel LR over LR(0) tables, so *any* (finitely
ambiguous) context-free grammar works; ambiguous sentences come back with
several trees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..grammar.builders import GrammarBuilder, grammar_from_text
from ..grammar.grammar import Grammar, GrammarError
from ..grammar.rules import Rule
from ..grammar.symbols import NonTerminal, Terminal
from ..lr.compiled import CompiledControl
from ..runtime.gss import GSSParser
from ..runtime.parallel import ParseResult, PoolParser
from ..runtime.trace import Trace
from .incremental import IncrementalGenerator
from .metrics import graph_summary, table_fraction

TokenInput = Union[str, Iterable[Union[str, Terminal]]]
RuleInput = Union[Rule, str]


class IPG:
    """The Incremental Parser Generator (the paper's system, end to end)."""

    def __init__(
        self,
        grammar: Grammar,
        gc: bool = True,
        max_sweep_steps: int = 1_000_000,
    ) -> None:
        self.grammar = grammar
        self.generator = IncrementalGenerator(grammar, gc=gc)
        # The compiled control plane: ACTION results memoized into shared
        # tuples, invalidated precisely through the grammar's observer
        # chain (the generator subscribed first, so MODIFY marks states
        # before the cache flush inspects them).  All parsing runtimes of
        # this IPG run through it.
        self.control = CompiledControl(self.generator.control, grammar)
        self._pool = PoolParser(
            self.control, grammar, max_sweep_steps=max_sweep_steps
        )
        self._gss = GSSParser(self.control)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, **kwargs) -> "IPG":
        """Build from the BNF notation of the paper's figures."""
        return cls(grammar_from_text(text), **kwargs)

    @classmethod
    def from_rules(cls, rules: Iterable[Rule], **kwargs) -> "IPG":
        return cls(Grammar(rules), **kwargs)

    # -- parsing ---------------------------------------------------------

    def parse(self, tokens: TokenInput, trace: Optional[Trace] = None) -> ParseResult:
        """Parse a token sequence; builds trees; expands the table by need.

        ``tokens`` may be a whitespace-separated string (convenient for
        examples and tests) or any iterable of terminal names/objects.  Do
        **not** append the end-marker; the runtime does that.
        """
        return self._pool.parse(self.coerce_tokens(tokens), trace=trace)

    def recognize(self, tokens: TokenInput) -> bool:
        """Accept/reject without building trees (states-only signatures)."""
        return self._pool.recognize(self.coerce_tokens(tokens))

    def recognize_gss(self, tokens: TokenInput) -> bool:
        """Recognition on the merged (graph-structured) stack engine."""
        return self._gss.recognize(self.coerce_tokens(tokens))

    # -- grammar modification ----------------------------------------------

    def add_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> bool:
        """ADD-RULE; accepts a Rule or ``"A ::= b c"`` text.

        In rule text, a name is a non-terminal iff the grammar already has
        a rule for it (or it is the new rule's own left-hand side).  Pass
        ``sorts`` to force names that are *going to be* defined — e.g.
        ``add_rule("CMD ::= turn N", sorts={"N"})`` before ``N`` has rules.
        """
        return self.generator.add_rule(self.coerce_rule(rule, sorts))

    def delete_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> bool:
        """DELETE-RULE; accepts a Rule or ``"A ::= b c"`` text."""
        return self.generator.delete_rule(self.coerce_rule(rule, sorts))

    def collect_garbage(self, force_sweep: bool = False) -> int:
        """Trigger the mark-and-sweep fallback (refcounting is automatic)."""
        return self.generator.collect_garbage(force_sweep=force_sweep)

    # -- introspection -----------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone grammar version, bumped by every successful MODIFY.

        Mirrors :attr:`Grammar.revision`; the service layer keys result
        caches on it so a grammar edit implicitly invalidates every parse
        computed against the older grammar.
        """
        return self.grammar.revision

    @property
    def graph(self):
        return self.generator.graph

    def summary(self) -> Dict[str, int]:
        data = graph_summary(self.generator.graph)
        data.update(self.control.stats.snapshot())
        return data

    def table_fraction(self) -> float:
        """How much of the full parse table has been generated (§5.2)."""
        return table_fraction(self.generator.graph, self.grammar)

    # -- coercion helpers --------------------------------------------------

    def coerce_tokens(self, tokens: TokenInput) -> List[Terminal]:
        if isinstance(tokens, str):
            parts: Iterable[Union[str, Terminal]] = tokens.split()
        else:
            parts = tokens
        result: List[Terminal] = []
        for part in parts:
            if isinstance(part, Terminal):
                result.append(part)
            elif isinstance(part, str):
                result.append(Terminal(part))
            else:
                raise TypeError(f"cannot use {part!r} as a token")
        return result

    def coerce_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> Rule:
        if isinstance(rule, Rule):
            return rule
        if not isinstance(rule, str) or "::=" not in rule:
            raise GrammarError(f"expected a Rule or 'A ::= body' text, got {rule!r}")
        lhs_text, rhs_text = rule.split("::=", 1)
        lhs_name = lhs_text.strip()
        if not lhs_name:
            raise GrammarError(f"missing left-hand side in {rule!r}")
        known = {nt.name for nt in self.grammar.nonterminals}
        known.add(lhs_name)
        known.update(sorts)
        body: List[Union[Terminal, NonTerminal]] = []
        for part in rhs_text.split():
            if part == "ε":
                continue
            body.append(
                NonTerminal(part) if part in known else Terminal(part)
            )
        return Rule(NonTerminal(lhs_name), body)

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"IPG({len(self.grammar)} rules, {s['states']} states, "
            f"{s['complete']} complete)"
        )
