"""IPG — the classic facade, now a thin wrapper over :class:`repro.api.Language`.

This is the object a downstream user holds.  A typical interactive
language-definition session (the use case of section 1)::

    from repro import IPG

    ipg = IPG.from_text('''
        B ::= true
        B ::= false
        B ::= B or B
        B ::= B and B
        START ::= B
    ''')
    assert ipg.parse("true and true").accepted       # lazily expands states
    ipg.add_rule("B ::= unknown")                    # incremental MODIFY
    assert ipg.parse("true or unknown").accepted     # re-expands by need

Parsing is Tomita-style parallel LR over LR(0) tables, so *any* (finitely
ambiguous) context-free grammar works; ambiguous sentences come back with
several trees.

The heavy lifting — generator, compiled control, engines — lives in the
wrapped :class:`~repro.api.language.Language` (``ipg.language``), which is
also where new code should start: it adds real lexing, per-call engine
selection, and structured rejection diagnostics.  ``IPG`` keeps the
historical token-stream API: ``parse`` takes whitespace-separated terminal
names or explicit token sequences and returns the raw
:class:`~repro.runtime.parallel.ParseResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Union

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import Terminal
from ..runtime.errors import ParseError
from ..runtime.parallel import ParseResult
from ..runtime.trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from ..api.language import Language

TokenInput = Union[str, Iterable[Union[str, Terminal]]]
RuleInput = Union[Rule, str]


class IPG:
    """The Incremental Parser Generator (the paper's system, end to end)."""

    def __init__(
        self,
        grammar: Grammar,
        gc: bool = True,
        max_sweep_steps: int = 1_000_000,
        table_store=None,
    ) -> None:
        # Imported here, not at module top: repro.api builds on repro.core
        # (generator, compiled control), so the facade must not create an
        # import cycle just to wrap it.
        from ..api.language import Language

        self.language = Language(
            grammar,
            gc=gc,
            max_sweep_steps=max_sweep_steps,
            table_store=table_store,
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, **kwargs) -> "IPG":
        """Build from the BNF notation of the paper's figures."""
        from ..grammar.builders import grammar_from_text

        return cls(grammar_from_text(text), **kwargs)

    @classmethod
    def from_rules(cls, rules: Iterable[Rule], **kwargs) -> "IPG":
        return cls(Grammar(rules), **kwargs)

    # -- the shared infrastructure (owned by the Language) ---------------

    @property
    def grammar(self) -> Grammar:
        return self.language.grammar

    @property
    def generator(self):
        return self.language.generator

    @property
    def control(self):
        return self.language.control

    @property
    def _pool(self):
        return self.language.engine("compiled").pool

    @property
    def _gss(self):
        return self.language.engine("gss").gss

    # -- parsing ---------------------------------------------------------

    def parse(self, tokens: TokenInput, trace: Optional[Trace] = None) -> ParseResult:
        """Parse a token sequence; builds trees; expands the table by need.

        ``tokens`` may be a whitespace-separated string (convenient for
        examples and tests) or any iterable of terminal names/objects.  Do
        **not** append the end-marker; the runtime does that.
        """
        return self._pool.parse(self.coerce_tokens(tokens), trace=trace)

    def recognize(self, tokens: TokenInput) -> bool:
        """Accept/reject without building trees (states-only signatures)."""
        return self._pool.recognize(self.coerce_tokens(tokens))

    def recognize_gss(self, tokens: TokenInput) -> bool:
        """Recognition on the merged (graph-structured) stack engine."""
        return self._gss.recognize(self.coerce_tokens(tokens))

    # -- grammar modification ----------------------------------------------

    def add_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> bool:
        """ADD-RULE; accepts a Rule or ``"A ::= b c"`` text.

        In rule text, a name is a non-terminal iff the grammar already has
        a rule for it (or it is the new rule's own left-hand side).  Pass
        ``sorts`` to force names that are *going to be* defined — e.g.
        ``add_rule("CMD ::= turn N", sorts={"N"})`` before ``N`` has rules.
        """
        return self.generator.add_rule(self.coerce_rule(rule, sorts))

    def delete_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> bool:
        """DELETE-RULE; accepts a Rule or ``"A ::= b c"`` text."""
        return self.generator.delete_rule(self.coerce_rule(rule, sorts))

    def collect_garbage(self, force_sweep: bool = False) -> int:
        """Trigger the mark-and-sweep fallback (refcounting is automatic)."""
        return self.generator.collect_garbage(force_sweep=force_sweep)

    def persist_tables(self) -> int:
        """Write newly materialized control state to the table store."""
        return self.language.persist_tables()

    # -- introspection -----------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone grammar version, bumped by every successful MODIFY.

        Mirrors :attr:`Grammar.revision`; the service layer keys result
        caches on it so a grammar edit implicitly invalidates every parse
        computed against the older grammar.
        """
        return self.grammar.revision

    @property
    def graph(self):
        return self.generator.graph

    def summary(self) -> Dict[str, int]:
        return self.language.summary()

    def table_fraction(self) -> float:
        """How much of the full parse table has been generated (§5.2)."""
        return self.language.table_fraction()

    # -- coercion helpers --------------------------------------------------

    def coerce_tokens(self, tokens: TokenInput) -> List[Terminal]:
        """Terminal objects from a token string or sequence.

        A string is whitespace-split into terminal names.  An empty (or
        blank) string is rejected: at this layer it is almost always an
        accidental missing argument, not the empty sentence — pass an
        explicit empty sequence (``[]``) to parse the empty sentence, or
        use :meth:`Language.parse`, whose tokenizer makes "" unambiguous.
        """
        if isinstance(tokens, str):
            if not tokens.strip():
                raise ParseError(
                    "empty input: pass an explicit empty token sequence "
                    "([]) to parse the empty sentence"
                )
            parts: Iterable[Union[str, Terminal]] = tokens.split()
        else:
            parts = tokens
        result: List[Terminal] = []
        for part in parts:
            if isinstance(part, Terminal):
                result.append(part)
            elif isinstance(part, str):
                result.append(Terminal(part))
            else:
                raise TypeError(f"cannot use {part!r} as a token")
        return result

    def coerce_rule(self, rule: RuleInput, sorts: Iterable[str] = ()) -> Rule:
        return self.language.coerce_rule(rule, sorts)

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"IPG({len(self.grammar)} rules, {s['states']} states, "
            f"{s['complete']} complete)"
        )
