"""Tokens of the SDF syntax definition formalism (Appendix B).

The measurement protocol of section 7 feeds the parsers *"a stream of
lexical tokens already in memory"*.  A :class:`Token` is one element of
that stream; :meth:`Token.terminal` maps it onto the terminal symbol the
context-free SDF grammar sees:

* word-like keywords and punctuation become terminals named after their
  spelling (``module``, ``->``, ``(`` ...),
* members of the lexical sorts become terminals named after their sort
  (``ID``, ``LITERAL``, ``CHAR-CLASS``, ``ITERATOR``) — the lexical
  scanner has already classified them, exactly as ISG would.
"""

from __future__ import annotations

import enum
from typing import Tuple

from ..grammar.symbols import Terminal


class TokenKind(enum.Enum):
    KEYWORD = "keyword"          # module, begin, sorts, ...
    PUNCT = "punct"              # -> ( ) { } , > < ~ ? + *... (non-word literals)
    ID = "ID"                    # sort names and module names
    LITERAL = "LITERAL"          # "quoted text"
    CHAR_CLASS = "CHAR-CLASS"    # [a-z0-9]
    ITERATOR = "ITERATOR"        # + or *
    EOF = "eof"


#: Word-like literals of the SDF context-free grammar; anything else
#: word-shaped is an ID.
KEYWORDS = frozenset(
    {
        "module",
        "begin",
        "end",
        "lexical",
        "syntax",
        "sorts",
        "layout",
        "functions",
        "context-free",
        "priorities",
        "par",
        "assoc",
        "left-assoc",
        "right-assoc",
    }
)

#: Multi-character punctuation first (longest match), then single.
PUNCTUATION: Tuple[str, ...] = ("->", "(", ")", "{", "}", ",", ">", "<", "~", "?")


class Token:
    """One lexical token with its source position (for error messages)."""

    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: TokenKind, text: str, line: int, column: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column

    def terminal(self) -> Terminal:
        """The context-free terminal symbol this token denotes."""
        if self.kind in (TokenKind.KEYWORD, TokenKind.PUNCT):
            return Terminal(self.text)
        if self.kind is TokenKind.ID:
            return Terminal("ID")
        if self.kind is TokenKind.LITERAL:
            return Terminal("LITERAL")
        if self.kind is TokenKind.CHAR_CLASS:
            return Terminal("CHAR-CLASS")
        if self.kind is TokenKind.ITERATOR:
            return Terminal("ITERATOR")
        raise ValueError(f"EOF token has no terminal ({self!r})")

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_punct(self, mark: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == mark

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


class SdfSyntaxError(SyntaxError):
    """Lexical or syntactic error in an SDF definition."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column
