"""Normalization: SDF AST → core :class:`~repro.grammar.grammar.Grammar`.

*"An SDF function ``beta -> A`` is equivalent to a BNF syntax rule
``A ::= beta``"* (Appendix B).  Accordingly:

* every context-free function becomes one rule, in source order;
* a name is a non-terminal iff it is declared in the context-free
  ``sorts`` section; every other name (the lexical sorts ``ID``,
  ``LITERAL``, ``CHAR-CLASS``, ``ITERATOR``, ...) denotes a terminal —
  the lexical scanner classifies tokens into those sorts before the
  parser sees them;
* quoted literals become terminals named by their text;
* iterators desugar through :mod:`repro.grammar.transforms` into shared
  left-recursive list non-terminals (``SORT+``, ``SORT*``,
  ``{SORT ","}+`` ...), the natural LR encoding;
* ``START ::= <top sort>`` is added (section 4 requires a START symbol).

Priorities and attributes are carried through as rule *labels* only: the
paper's parser does not interpret them (its measurements predate SDF
disambiguation), and neither do we.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..grammar import transforms
from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import NonTerminal, Symbol, Terminal
from .ast import (
    CfElem,
    CfIter,
    CfLiteral,
    CfSepIter,
    CfSort,
    Function,
    SdfDefinition,
)


class NormalizationError(ValueError):
    """The definition cannot be turned into a grammar."""


def normalize(
    definition: SdfDefinition,
    start_sort: Optional[str] = None,
) -> Grammar:
    """Build the context-free grammar of an SDF definition.

    ``start_sort`` defaults to the first declared context-free sort —
    conventionally the module's top sort (SDF-DEFINITION in Appendix B).
    """
    cf = definition.contextfree
    if not cf.sorts:
        raise NormalizationError(
            f"module {definition.name!r} declares no context-free sorts"
        )
    top = start_sort if start_sort is not None else cf.sorts[0]
    if top not in cf.sorts:
        raise NormalizationError(
            f"start sort {top!r} is not declared in module {definition.name!r}"
        )

    nonterminal_names = frozenset(cf.sorts)
    grammar = Grammar()
    for function in cf.functions:
        rhs = [
            _element_symbol(grammar, elem, nonterminal_names)
            for elem in function.elems
        ]
        grammar.add_rule(
            Rule(NonTerminal(function.sort), rhs, label=str(function))
        )
    transforms.augment(grammar, NonTerminal(top))
    return grammar


def _element_symbol(
    grammar: Grammar,
    elem: CfElem,
    nonterminal_names: frozenset,
) -> Symbol:
    if isinstance(elem, CfLiteral):
        return Terminal(elem.text)
    if isinstance(elem, CfSort):
        return _sort_symbol(elem.name, nonterminal_names)
    if isinstance(elem, CfIter):
        base = _sort_symbol(elem.name, nonterminal_names)
        if elem.iterator == "+":
            return transforms.plus(grammar, base)
        return transforms.star(grammar, base)
    if isinstance(elem, CfSepIter):
        base = _sort_symbol(elem.name, nonterminal_names)
        separator = Terminal(elem.separator)
        if elem.iterator == "+":
            return transforms.separated_plus(grammar, base, separator)
        return transforms.separated_star(grammar, base, separator)
    raise NormalizationError(f"unknown element {elem!r}")


def _sort_symbol(name: str, nonterminal_names: frozenset) -> Symbol:
    if name in nonterminal_names:
        return NonTerminal(name)
    # Not a context-free sort: it is a lexical sort, i.e. a token class
    # the scanner delivers — a terminal from the parser's point of view.
    return Terminal(name)


class SdfMetadata:
    """Everything normalization knows beyond the bare rules.

    * ``rule_of`` — SDF function → the core rule it produced;
    * ``attributes`` — rule → its attribute words;
    * ``filter`` — the :class:`~repro.runtime.disambiguation.DisambiguationFilter`
      assembled from the ``priorities`` section and the associativity
      attributes;
    * ``unapplied`` — human-readable notes about declarations that could
      not be turned into tree restrictions (abbreviated functions without
      a result sort, associativity on non-recursive rules, ``par``).
    """

    def __init__(self) -> None:
        from ..runtime.disambiguation import DisambiguationFilter

        self.rule_of: Dict[Function, Rule] = {}
        self.attributes: Dict[Rule, Tuple[str, ...]] = {}
        self.filter = DisambiguationFilter()
        self.unapplied: List[str] = []


def normalize_with_metadata(
    definition: SdfDefinition,
    start_sort: Optional[str] = None,
) -> Tuple[Grammar, SdfMetadata]:
    """Like :func:`normalize`, but also build the disambiguation filter.

    The §7 measurements ignore priorities (the paper's parser returns all
    trees); downstream users of an SDF-defined expression language need
    them, so the full pipeline is: ``normalize_with_metadata`` → parse
    with IPG → ``metadata.filter.filter(result.trees)``.
    """
    grammar = normalize(definition, start_sort=start_sort)
    metadata = SdfMetadata()
    cf = definition.contextfree
    names = frozenset(cf.sorts)

    for function in cf.functions:
        rule = rule_for_function(grammar, function, names)
        metadata.rule_of[function] = rule
        if function.attributes:
            metadata.attributes[rule] = function.attributes

    def resolve(abbrev) -> Optional[Rule]:
        if abbrev.sort is None:
            metadata.unapplied.append(
                f"priority operand {abbrev} has no result sort; skipped"
            )
            return None
        candidate = Function(elems=abbrev.elems, sort=abbrev.sort)
        return rule_for_function(grammar, candidate, names)

    # Collect higher/lower pairs from every chain, then close the relation
    # transitively *across* chains: SDF's priority relation is one global
    # partial order, so ``^ > *`` in one declaration and ``* > +`` in
    # another imply ``^ > +``.
    beats: Dict[Rule, Set[Rule]] = {}
    for prio in cf.priorities:
        levels: List[Tuple[Rule, ...]] = []
        for operand in prio.lists:
            rules = tuple(
                resolved
                for resolved in (resolve(d) for d in operand.defs)
                if resolved is not None
            )
            if rules:
                levels.append(rules)
        if len(levels) < 2:
            continue
        if prio.direction == "<":
            levels.reverse()
        for index, high_group in enumerate(levels[:-1]):
            for parent in high_group:
                beats.setdefault(parent, set()).update(levels[index + 1])

    changed = True
    while changed:
        changed = False
        for parent, lowers in list(beats.items()):
            for lower in list(lowers):
                transitive = beats.get(lower, ())
                before = len(lowers)
                lowers.update(transitive)
                if len(lowers) != before:
                    changed = True
    for parent, lowers in beats.items():
        for child in lowers:
            metadata.filter.forbid(parent, child)

    for rule, words in metadata.attributes.items():
        for word in words:
            try:
                if word in ("left-assoc", "assoc"):
                    metadata.filter.left_assoc(rule)
                elif word == "right-assoc":
                    metadata.filter.right_assoc(rule)
                elif word == "par":
                    metadata.unapplied.append(
                        f"'par' on {rule} concerns printing; ignored"
                    )
            except ValueError as error:
                metadata.unapplied.append(str(error))

    return grammar, metadata


def rule_for_function(
    grammar: Grammar,
    function: Function,
    nonterminal_names: Iterable[str],
) -> Rule:
    """Build the rule a single SDF function denotes, against ``grammar``.

    Used to translate *grammar modifications* expressed in SDF (the
    section-7 experiment adds ``"(" CF-ELEM+ ")?" -> CF-ELEM``): iterator
    elements reuse — or create — the shared list non-terminals in
    ``grammar``, so adding the function is exactly one ADD-RULE when the
    lists already exist.
    """
    names = frozenset(nonterminal_names)
    rhs = [_element_symbol(grammar, elem, names) for elem in function.elems]
    return Rule(NonTerminal(function.sort), rhs, label=str(function))
