"""The SDF front end: Appendix B's syntax definition formalism.

Pipeline: text → :mod:`lexer` (tokens) → :mod:`parser` (AST) →
:mod:`normalize` (core :class:`~repro.grammar.grammar.Grammar`).
:mod:`corpus` carries the four section-7 measurement inputs and the
grammar-modification rule.
"""

from .ast import (
    AbbrevFDef,
    AbbrevFList,
    CfIter,
    CfLiteral,
    CfSepIter,
    CfSort,
    ContextFreeSyntax,
    Function,
    LexCharClass,
    LexLiteral,
    LexSortRef,
    LexicalFunction,
    LexicalSyntax,
    PrioDef,
    SdfDefinition,
)
from .corpus import (
    CORPUS,
    TOKEN_COUNTS,
    corpus_tokens,
    modification_function,
    modification_rule,
    sdf_definition,
    sdf_grammar,
)
from .lexer import SdfLexer, terminal_stream, tokenize
from .normalize import (
    NormalizationError,
    SdfMetadata,
    normalize,
    normalize_with_metadata,
    rule_for_function,
)
from .parser import SdfParser, parse_sdf
from .tokens import KEYWORDS, SdfSyntaxError, Token, TokenKind

__all__ = [
    "AbbrevFDef",
    "AbbrevFList",
    "CORPUS",
    "CfIter",
    "CfLiteral",
    "CfSepIter",
    "CfSort",
    "ContextFreeSyntax",
    "Function",
    "KEYWORDS",
    "LexCharClass",
    "LexLiteral",
    "LexSortRef",
    "LexicalFunction",
    "LexicalSyntax",
    "NormalizationError",
    "SdfMetadata",
    "PrioDef",
    "SdfDefinition",
    "SdfLexer",
    "SdfParser",
    "SdfSyntaxError",
    "TOKEN_COUNTS",
    "Token",
    "TokenKind",
    "corpus_tokens",
    "modification_function",
    "modification_rule",
    "normalize",
    "normalize_with_metadata",
    "parse_sdf",
    "rule_for_function",
    "sdf_definition",
    "sdf_grammar",
    "terminal_stream",
    "tokenize",
]
