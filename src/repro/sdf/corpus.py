"""The section-7 measurement corpus.

The paper measures on *"four SDF definitions of which the smallest has 15
lines and the largest 142 lines"* — ``exp.sdf`` (37 tokens), ``Exam.sdf``
(166), ``SDF.sdf`` (342) and ``ASF.sdf`` (475).  Only ``SDF.sdf`` is
printed in the paper (Appendix B); the other three are reconstructed here
as plausible SDF definitions of the systems their names refer to
(expressions, an exam/query language, the ASF equation formalism), tuned
to the exact token counts the paper reports.

Two further artifacts of the protocol live here:

* :func:`sdf_grammar` — *"The test grammar we used is an LR(1) version of
  the grammar of the syntax definition formalism SDF"*: the grammar
  obtained by parsing ``SDF.sdf`` (whose priority section is written in
  the conflict-free formulation; see EXPERIMENTS.md) and normalizing it;
* :func:`modification_function` / :func:`modification_rule` — the rule the
  experiment adds: ``"(" CF-ELEM+ ")?" -> CF-ELEM``.
"""

from __future__ import annotations

from typing import Dict, List

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import Terminal
from .ast import CfIter, CfLiteral, Function, SdfDefinition
from .lexer import terminal_stream
from .normalize import normalize, rule_for_function
from .parser import parse_sdf

# ---------------------------------------------------------------------------
# exp.sdf — 37 tokens: a minimal boolean-expression language.
# ---------------------------------------------------------------------------

EXP_SDF = """\
module exp
begin
  context-free syntax
    sorts EXP
    functions
      "true"          -> EXP
      "false"         -> EXP
      EXP "or" EXP    -> EXP
      EXP "and" EXP   -> EXP
      "not" EXP       -> EXP
      "neg" EXP       -> EXP {par}
end exp
"""

# ---------------------------------------------------------------------------
# Exam.sdf — 166 tokens: an exam/questionnaire language with a lexical
# section, attributes and priorities, exercising parts of the SDF grammar
# exp.sdf never touches.
# ---------------------------------------------------------------------------

EXAM_SDF = """\
module Exam
begin
  lexical syntax
    sorts DIGIT, NUMBER, LETTER, WORD
    layout WHITE-SPACE
    functions
      [0-9]          -> DIGIT
      DIGIT+         -> NUMBER
      [a-zA-Z]       -> LETTER
      LETTER+        -> WORD
      [\\ \\t\\n]       -> WHITE-SPACE
  context-free syntax
    sorts EXAM, SECTION, QUESTION, CHOICE, POINTS, TEXT, RUBRIC, SCALE
    priorities
      QUESTION "with" POINTS -> QUESTION > "choice" CHOICE -> QUESTION,
      "bonus" QUESTION -> QUESTION < "ask" TEXT -> QUESTION
    functions
      "exam" WORD RUBRIC* SECTION+ "end" "exam" -> EXAM
      "section" WORD QUESTION+                 -> SECTION
      "ask" TEXT                               -> QUESTION
      "ask" TEXT "with" POINTS                 -> QUESTION
      "ask" TEXT "graded" "on" SCALE           -> QUESTION
      "choice" {CHOICE ","}+                   -> QUESTION {left-assoc}
      "match" "(" {WORD ","}+ ")" TEXT         -> QUESTION
      "bonus" QUESTION+                        -> QUESTION
      WORD                                     -> CHOICE
      WORD "scores" NUMBER                     -> CHOICE
      NUMBER "points"                          -> POINTS
      "scale" "from" NUMBER "to" NUMBER        -> SCALE
      "rubric" WORD "applies" "to" SECTION+    -> RUBRIC
      WORD+                                    -> TEXT
end Exam
"""

# ---------------------------------------------------------------------------
# SDF.sdf — 342 tokens: the SDF definition of SDF itself (Appendix B), in
# the LR(1) formulation: the priority chains {ABBREV-F-LIST ">"}+ /
# {ABBREV-F-LIST "<"}+ (ambiguous for single-element chains) are written
# as explicit two-or-more chains GT-CHAIN / LT-CHAIN.
# ---------------------------------------------------------------------------

SDF_SDF = """\
module SDF
begin
  lexical syntax
    sorts LETTER, ID-TAIL, ID, ITERATOR, ORD-CHAR, C-CHAR, CHAR-RANGE,
          CHAR-CLASS, L-CHAR, LITERAL, COM-CHAR, COM-END
    layout WHITE-SPACE, COMMENT
    functions
      [a-zA-Z]                    -> LETTER
      [a-zA-Z0-9\\-_]              -> ID-TAIL
      LETTER ID-TAIL*             -> ID
      [+*]                        -> ITERATOR
      [0-9A-Za-z !#$%&'()*+,./:;<=>?@^_`{|}~] -> ORD-CHAR
      "\\\\" ~[]                    -> ORD-CHAR
      ORD-CHAR                    -> C-CHAR
      C-CHAR                      -> CHAR-RANGE
      C-CHAR "-" C-CHAR           -> CHAR-RANGE
      "[" CHAR-RANGE* "]"         -> CHAR-CLASS
      ORD-CHAR                    -> L-CHAR
      [\\-\\[\\]]                    -> L-CHAR
      "\\"" L-CHAR* "\\""           -> LITERAL
      [\\ \\t\\n\\r\\f]                -> WHITE-SPACE
      ~[\\n\\-]                     -> COM-CHAR
      "-" ~[\\n\\-]                 -> COM-CHAR
      "\\n"                        -> COM-END
      "--" COM-CHAR* COM-END      -> COMMENT
  context-free syntax
    sorts SDF-DEFINITION, LEXICAL-SYNTAX, SORTS-DECL, SORT, LAYOUT,
          LEXICAL-FUNCTIONS, LEXICAL-FUNCTION-DEF, LEX-ELEM,
          CONTEXT-FREE-SYNTAX, PRIORITIES, PRIO-DEF, GT-CHAIN, LT-CHAIN,
          ABBREV-F-LIST, ABBREV-F-DEF, FUNCTIONS, FUNCTION-DEF, CF-ELEM,
          ATTRIBUTES, ATTRIBUTE
    functions
      "module" ID "begin" LEXICAL-SYNTAX CONTEXT-FREE-SYNTAX "end" ID
                                               -> SDF-DEFINITION
      "lexical" "syntax" SORTS-DECL LAYOUT LEXICAL-FUNCTIONS
                                               -> LEXICAL-SYNTAX
                                               -> LEXICAL-SYNTAX
      "sorts" {SORT ","}+                      -> SORTS-DECL
                                               -> SORTS-DECL
      ID                                       -> SORT
      "layout" {SORT ","}+                     -> LAYOUT
                                               -> LAYOUT
      "functions" LEXICAL-FUNCTION-DEF+        -> LEXICAL-FUNCTIONS
                                               -> LEXICAL-FUNCTIONS
      LEX-ELEM+ "->" SORT                      -> LEXICAL-FUNCTION-DEF
      SORT                                     -> LEX-ELEM
      SORT ITERATOR                            -> LEX-ELEM
      LITERAL                                  -> LEX-ELEM
      CHAR-CLASS                               -> LEX-ELEM
      "~" CHAR-CLASS                           -> LEX-ELEM
      "context-free" "syntax" SORTS-DECL PRIORITIES FUNCTIONS
                                               -> CONTEXT-FREE-SYNTAX
      "priorities" {PRIO-DEF ","}+             -> PRIORITIES
                                               -> PRIORITIES
      ABBREV-F-LIST                            -> PRIO-DEF
      GT-CHAIN                                 -> PRIO-DEF
      LT-CHAIN                                 -> PRIO-DEF
      ABBREV-F-LIST ">" ABBREV-F-LIST          -> GT-CHAIN
      GT-CHAIN ">" ABBREV-F-LIST               -> GT-CHAIN
      ABBREV-F-LIST "<" ABBREV-F-LIST          -> LT-CHAIN
      LT-CHAIN "<" ABBREV-F-LIST               -> LT-CHAIN
      ABBREV-F-DEF                             -> ABBREV-F-LIST
      "(" {ABBREV-F-DEF ","}+ ")"              -> ABBREV-F-LIST
      CF-ELEM+                                 -> ABBREV-F-DEF
      CF-ELEM* "->" SORT                       -> ABBREV-F-DEF
      "functions" FUNCTION-DEF+                -> FUNCTIONS
      CF-ELEM* "->" SORT ATTRIBUTES            -> FUNCTION-DEF
      SORT                                     -> CF-ELEM
      LITERAL                                  -> CF-ELEM
      SORT ITERATOR                            -> CF-ELEM
      "{" SORT LITERAL "}" ITERATOR            -> CF-ELEM
      "{" {ATTRIBUTE ","}+ "}"                 -> ATTRIBUTES
                                               -> ATTRIBUTES
      "par"                                    -> ATTRIBUTE
      "assoc"                                  -> ATTRIBUTE
      "left-assoc"                             -> ATTRIBUTE
      "right-assoc"                            -> ATTRIBUTE
end SDF
"""

# ---------------------------------------------------------------------------
# ASF.sdf — 475 tokens: the SDF definition of an ASF-like algebraic
# specification formalism (modules, imports, signatures, equations).
# ---------------------------------------------------------------------------

ASF_SDF = """\
module ASF
begin
  lexical syntax
    sorts LETTER, CAPITAL, DIGIT, ID-CHAR, ID, VAR-ID, NAT, LABEL-CHAR,
          LABEL
    layout WHITE-SPACE, COMMENT-CHAR, COMMENT
    functions
      [a-zA-Z]                 -> LETTER
      [A-Z]                    -> CAPITAL
      [0-9]                    -> DIGIT
      [a-zA-Z0-9\\-]            -> ID-CHAR
      LETTER ID-CHAR*          -> ID
      CAPITAL ID-CHAR*         -> VAR-ID
      DIGIT+                   -> NAT
      [a-zA-Z0-9]              -> LABEL-CHAR
      "[" LABEL-CHAR+ "]"      -> LABEL
      [\\ \\t\\n]                 -> WHITE-SPACE
      ~[\\n]                    -> COMMENT-CHAR
      "--" COMMENT-CHAR* "\\n"  -> COMMENT
  context-free syntax
    sorts ASF-SPECIFICATION, ASF-MODULE, MODULE-NAME, IMPORTS, EXPORTS,
          SIGNATURE, SORT-DECL, FUNC-DECL, FUNC-TYPE, SORT-REF, VARIABLES,
          VAR-DECL, EQUATIONS, EQUATION, COND-EQUATION, CONDITION, TERM,
          TERM-LIST, VAR-BINDING
    priorities
      TERM "equals" TERM -> CONDITION > "when" CONDITION -> CONDITION,
      ( "eq" TERM "gives" TERM -> EQUATION,
        "ceq" TERM "gives" TERM "when" CONDITION -> EQUATION )
      < LABEL EQUATION -> COND-EQUATION,
      TERM "plus" TERM -> TERM < TERM "times" TERM -> TERM
    functions
      "specification" MODULE-NAME ASF-MODULE+ "end" "specification"
                                                 -> ASF-SPECIFICATION
      "module" MODULE-NAME IMPORTS EXPORTS SIGNATURE VARIABLES EQUATIONS
        "end" MODULE-NAME                        -> ASF-MODULE
      ID                                         -> MODULE-NAME
      "imports" {MODULE-NAME ","}+               -> IMPORTS
                                                 -> IMPORTS
      "exports" {SORT-REF ","}+                  -> EXPORTS
      "hiding" {SORT-REF ","}+                   -> EXPORTS
                                                 -> EXPORTS
      "signature" SORT-DECL+ FUNC-DECL*          -> SIGNATURE
                                                 -> SIGNATURE
      "sort" SORT-REF                            -> SORT-DECL
      "sort" SORT-REF "subsort" "of" SORT-REF    -> SORT-DECL
      "func" ID "from" {SORT-REF ","}+ "to" SORT-REF FUNC-TYPE
                                                 -> FUNC-DECL
      "const" ID "to" SORT-REF                   -> FUNC-DECL
      "rename" ID "to" ID                        -> FUNC-DECL
      "total"                                    -> FUNC-TYPE
      "partial"                                  -> FUNC-TYPE
                                                 -> FUNC-TYPE
      ID                                         -> SORT-REF
      "variables" VAR-DECL+                      -> VARIABLES
                                                 -> VARIABLES
      "var" {ID ","}+ "ranges" "over" SORT-REF   -> VAR-DECL
      "equations" COND-EQUATION+                 -> EQUATIONS
                                                 -> EQUATIONS
      LABEL EQUATION                             -> COND-EQUATION
      EQUATION                                   -> COND-EQUATION
      "eq" TERM "gives" TERM                     -> EQUATION
      "ceq" TERM "gives" TERM "when" CONDITION   -> EQUATION {right-assoc}
      TERM "equals" TERM                         -> CONDITION
      TERM "differs" "from" TERM                 -> CONDITION
      TERM "matches" TERM                        -> CONDITION
      "fail"                                     -> CONDITION
      "and" "(" CONDITION "," CONDITION ")"      -> CONDITION
      "or" "(" CONDITION "," CONDITION ")"       -> CONDITION
      "not" "(" CONDITION ")"                    -> CONDITION
      "check" "(" TERM "," SORT-REF ")"          -> CONDITION
      ID                                         -> TERM
      VAR-ID                                     -> TERM
      NAT                                        -> TERM
      ID "(" TERM-LIST ")"                       -> TERM
      TERM "plus" TERM                           -> TERM
      TERM "times" TERM                          -> TERM
      "zero"                                     -> TERM
      "succ" "(" TERM ")"                        -> TERM
      "nil"                                      -> TERM
      "cons" "(" TERM "," TERM ")"               -> TERM
      "head" "(" TERM ")"                        -> TERM
      "tail" "(" TERM ")"                        -> TERM
      "if" CONDITION "then" TERM "else" TERM "fi" -> TERM
      "let" ID "be" TERM "in" TERM               -> TERM
      TERM "where" {VAR-BINDING ","}+            -> TERM {right-assoc}
      {TERM ","}+                                -> TERM-LIST
      ID "gets" TERM                             -> VAR-BINDING
      "normal" "form" "of" TERM                  -> TERM
end ASF
"""

#: The paper's Fig. 7.1 token counts, by corpus file name.
TOKEN_COUNTS: Dict[str, int] = {
    "exp.sdf": 37,
    "Exam.sdf": 166,
    "SDF.sdf": 342,
    "ASF.sdf": 475,
}

#: All corpus texts by file name, smallest first (the paper's order).
CORPUS: Dict[str, str] = {
    "exp.sdf": EXP_SDF,
    "Exam.sdf": EXAM_SDF,
    "SDF.sdf": SDF_SDF,
    "ASF.sdf": ASF_SDF,
}


def corpus_tokens() -> Dict[str, List[Terminal]]:
    """Pre-tokenized corpus, the §7 protocol's in-memory token streams."""
    return {name: terminal_stream(text) for name, text in CORPUS.items()}


def sdf_definition() -> SdfDefinition:
    """The parsed SDF-of-SDF (Appendix B, LR(1) formulation)."""
    return parse_sdf(SDF_SDF)


def sdf_grammar() -> Grammar:
    """The test grammar of section 7: normalize the SDF-of-SDF."""
    return normalize(sdf_definition(), start_sort="SDF-DEFINITION")


def modification_function() -> Function:
    """The added rule of section 7: ``"(" CF-ELEM+ ")?" -> CF-ELEM``."""
    return Function(
        elems=(CfLiteral("("), CfIter("CF-ELEM", "+"), CfLiteral(")?")),
        sort="CF-ELEM",
    )


def modification_rule(grammar: Grammar) -> Rule:
    """The modification as a core rule against ``grammar``.

    ``CF-ELEM+`` already exists in the normalized SDF grammar (the
    function-definition rules use it), so this is exactly one ADD-RULE —
    matching the paper's experiment.
    """
    definition = sdf_definition()
    return rule_for_function(
        grammar, modification_function(), definition.contextfree.sorts
    )
