"""Abstract syntax of SDF definitions (the Appendix B subset).

An SDF definition has two parts: *"the lexical syntax and the context-free
syntax.  In the context-free syntax section the non-terminals used are
declared first in the 'sorts' declaration part, followed by the declaration
of the syntax rules in the 'functions' declaration part.  An SDF function
``beta -> A`` is equivalent to a BNF syntax rule ``A ::= beta``."*

The classes here are plain immutable records; the interesting work happens
in :mod:`repro.sdf.parser` (text → AST) and :mod:`repro.sdf.normalize`
(AST → :class:`repro.grammar.Grammar`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

# ---------------------------------------------------------------------------
# lexical syntax
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LexSortRef:
    """A sort (optionally iterated) inside a lexical function body."""

    name: str
    iterator: Optional[str] = None  # "+", "*" or None

    def __str__(self) -> str:
        return self.name + (self.iterator or "")


@dataclass(frozen=True)
class LexLiteral:
    """A quoted literal inside a lexical function body."""

    text: str

    def __str__(self) -> str:
        return f'"{self.text}"'


@dataclass(frozen=True)
class LexCharClass:
    """A character class, possibly complemented (``~[...]``)."""

    spec: str  # raw source text, brackets included
    negated: bool = False

    def __str__(self) -> str:
        return ("~" if self.negated else "") + self.spec


LexElem = Union[LexSortRef, LexLiteral, LexCharClass]


@dataclass(frozen=True)
class LexicalFunction:
    """``LEX-ELEM+ -> SORT``."""

    elems: Tuple[LexElem, ...]
    sort: str

    def __str__(self) -> str:
        body = " ".join(str(e) for e in self.elems)
        return f"{body} -> {self.sort}"


@dataclass(frozen=True)
class LexicalSyntax:
    sorts: Tuple[str, ...] = ()
    layout: Tuple[str, ...] = ()
    functions: Tuple[LexicalFunction, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.sorts or self.layout or self.functions)


# ---------------------------------------------------------------------------
# context-free syntax
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CfSort:
    """A plain sort reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CfLiteral:
    """A quoted literal (a keyword/punctuation terminal of the language)."""

    text: str

    def __str__(self) -> str:
        return f'"{self.text}"'


@dataclass(frozen=True)
class CfIter:
    """``SORT+`` or ``SORT*``."""

    name: str
    iterator: str  # "+" or "*"

    def __str__(self) -> str:
        return f"{self.name}{self.iterator}"


@dataclass(frozen=True)
class CfSepIter:
    """``{SORT "sep"}+`` or ``{SORT "sep"}*``."""

    name: str
    separator: str
    iterator: str

    def __str__(self) -> str:
        return f'{{{self.name} "{self.separator}"}}{self.iterator}'


CfElem = Union[CfSort, CfLiteral, CfIter, CfSepIter]


@dataclass(frozen=True)
class Function:
    """``CF-ELEM* -> SORT ATTRIBUTES`` — one BNF rule, SDF-style."""

    elems: Tuple[CfElem, ...]
    sort: str
    attributes: Tuple[str, ...] = ()

    def __str__(self) -> str:
        body = " ".join(str(e) for e in self.elems)
        attrs = (
            " {" + ", ".join(self.attributes) + "}" if self.attributes else ""
        )
        return f"{body} -> {self.sort}{attrs}"


@dataclass(frozen=True)
class AbbrevFDef:
    """An abbreviated function in a priority declaration."""

    elems: Tuple[CfElem, ...]
    sort: Optional[str] = None  # None for the arrow-less CF-ELEM+ form

    def __str__(self) -> str:
        body = " ".join(str(e) for e in self.elems)
        return body if self.sort is None else f"{body} -> {self.sort}"


@dataclass(frozen=True)
class AbbrevFList:
    """One operand of a priority chain: a def or a parenthesized group."""

    defs: Tuple[AbbrevFDef, ...]

    def __str__(self) -> str:
        if len(self.defs) == 1:
            return str(self.defs[0])
        return "(" + ", ".join(str(d) for d in self.defs) + ")"


@dataclass(frozen=True)
class PrioDef:
    """A ``>``- or ``<``-chain of abbreviated function lists."""

    lists: Tuple[AbbrevFList, ...]
    direction: Optional[str] = None  # ">", "<", or None for a single element

    def __str__(self) -> str:
        sep = f" {self.direction} " if self.direction else ""
        return sep.join(str(part) for part in self.lists)


@dataclass(frozen=True)
class ContextFreeSyntax:
    sorts: Tuple[str, ...] = ()
    priorities: Tuple[PrioDef, ...] = ()
    functions: Tuple[Function, ...] = ()


@dataclass(frozen=True)
class SdfDefinition:
    """``module ID begin <lexical> <context-free> end ID``."""

    name: str
    lexical: LexicalSyntax = LexicalSyntax()
    contextfree: ContextFreeSyntax = ContextFreeSyntax()
    end_name: Optional[str] = None

    def validate(self) -> List[str]:
        """Well-formedness problems (empty list = fine)."""
        problems: List[str] = []
        if self.end_name is not None and self.end_name != self.name:
            problems.append(
                f"module is named {self.name!r} but ends with {self.end_name!r}"
            )
        declared = set(self.contextfree.sorts) | set(self.lexical.sorts)
        for function in self.contextfree.functions:
            for elem in function.elems:
                if isinstance(elem, (CfSort, CfIter, CfSepIter)):
                    if elem.name not in declared:
                        problems.append(
                            f"function {function} uses undeclared sort {elem.name!r}"
                        )
            if function.sort not in declared:
                problems.append(
                    f"function {function} defines undeclared sort {function.sort!r}"
                )
        return problems
