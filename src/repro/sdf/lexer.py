"""Hand-written lexical scanner for SDF definition texts.

Implements the *lexical syntax* half of Appendix B: white space and
``--``-to-end-of-line comments are layout; the produced token stream is
what the context-free SDF parser consumes.  (The generic, regex-driven ISG
scanner in :mod:`repro.lexing` can do the same job — and the test suite
checks both agree — but the bootstrap path must not depend on it.)

Lexeme classes, as in the appendix:

* ``ID``: ``LETTER ID-TAIL*`` where ID-TAIL is ``[a-zA-Z0-9\\-_]``; a
  double hyphen ends the identifier (it starts a comment);
* ``LITERAL``: ``"`` L-CHAR* ``"`` with ``\\``-escapes;
* ``CHAR-CLASS``: ``[`` CHAR-RANGE* ``]`` with ``\\``-escapes;
* ``ITERATOR``: ``+`` or ``*``;
* punctuation: ``-> ( ) { } , > < ~ ?``;
* word-like keywords per :data:`repro.sdf.tokens.KEYWORDS`.
"""

from __future__ import annotations

from typing import List

from ..grammar.symbols import Terminal
from .tokens import KEYWORDS, PUNCTUATION, SdfSyntaxError, Token, TokenKind


def _is_id_start(ch: str) -> bool:
    return ch.isalpha()


def _is_id_tail(ch: str) -> bool:
    return ch.isalnum() or ch in "-_"


class SdfLexer:
    """Single-pass scanner over an SDF definition string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    # -- character helpers -------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self) -> str:
        ch = self.text[self.position]
        self.position += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _error(self, message: str) -> SdfSyntaxError:
        return SdfSyntaxError(message, self.line, self.column)

    # -- scanning --------------------------------------------------------

    def tokens(self) -> List[Token]:
        """The whole token stream (layout removed, no EOF sentinel)."""
        result: List[Token] = []
        while True:
            self._skip_layout()
            if self.position >= len(self.text):
                return result
            result.append(self._next_token())

    def terminals(self) -> List[Terminal]:
        """The stream mapped to grammar terminals (the benches' input)."""
        return [token.terminal() for token in self.tokens()]

    def _skip_layout(self) -> None:
        while self.position < len(self.text):
            ch = self._peek()
            if ch in " \t\n\r\f":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.position < len(self.text) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if _is_id_start(ch):
            word = self._scan_word()
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.ID
            return Token(kind, word, line, column)

        if ch == '"':
            return Token(TokenKind.LITERAL, self._scan_literal(), line, column)

        if ch == "[":
            return Token(TokenKind.CHAR_CLASS, self._scan_char_class(), line, column)

        if ch in "+*":
            self._advance()
            return Token(TokenKind.ITERATOR, ch, line, column)

        for mark in PUNCTUATION:
            if self.text.startswith(mark, self.position):
                for _ in mark:
                    self._advance()
                return Token(TokenKind.PUNCT, mark, line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _scan_word(self) -> str:
        start = self.position
        self._advance()
        while self.position < len(self.text):
            ch = self._peek()
            if ch == "-" and self._peek(1) == "-":
                break  # a comment starts; the identifier ends here
            if not _is_id_tail(ch):
                break
            self._advance()
        return self.text[start : self.position]

    def _scan_literal(self) -> str:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated literal")
            ch = self._advance()
            if ch == "\\":
                if self.position >= len(self.text):
                    raise self._error("dangling escape in literal")
                chars.append(self._advance())
            elif ch == '"':
                return "".join(chars)
            elif ch == "\n":
                raise self._error("newline inside literal")
            else:
                chars.append(ch)

    def _scan_char_class(self) -> str:
        start = self.position
        self._advance()  # opening bracket
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated character class")
            ch = self._advance()
            if ch == "\\":
                if self.position >= len(self.text):
                    raise self._error("dangling escape in character class")
                self._advance()
            elif ch == "]":
                return self.text[start : self.position]


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: the token stream of an SDF definition."""
    return SdfLexer(text).tokens()


def terminal_stream(text: str) -> List[Terminal]:
    """Tokenize and map to grammar terminals (section 7 protocol input)."""
    return SdfLexer(text).terminals()
