"""Bootstrap parser for SDF definitions: token stream → AST.

This hand-written recursive-descent parser is the system's bootstrap: the
SDF grammar used by the benchmarks is itself obtained by parsing the SDF
definition of SDF (Appendix B) with *this* parser and normalizing the
result.  (The paper's system has the same shape: *"the grammar of SDF has
to be expressed in SDF itself to be acceptable to PG and IPG"*.)

The accepted language is exactly the Appendix B context-free syntax; see
:mod:`repro.sdf.ast` for the produced structure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    AbbrevFDef,
    AbbrevFList,
    CfElem,
    CfIter,
    CfLiteral,
    CfSepIter,
    CfSort,
    ContextFreeSyntax,
    Function,
    LexCharClass,
    LexElem,
    LexLiteral,
    LexSortRef,
    LexicalFunction,
    LexicalSyntax,
    PrioDef,
    SdfDefinition,
)
from .lexer import tokenize
from .tokens import SdfSyntaxError, Token, TokenKind

_ATTRIBUTE_WORDS = ("par", "assoc", "left-assoc", "right-assoc")


class SdfParser:
    """Recursive descent over the token stream of one SDF definition."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.index + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise SdfSyntaxError("unexpected end of input", 0, 0)
        self.index += 1
        return token

    def _error(self, message: str) -> SdfSyntaxError:
        token = self._peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else None
            line = last.line if last else 0
            column = last.column if last else 0
            return SdfSyntaxError(f"{message} (at end of input)", line, column)
        return SdfSyntaxError(
            f"{message}, found {token.kind.name} {token.text!r}",
            token.line,
            token.column,
        )

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if token is None or not token.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _expect_punct(self, mark: str) -> Token:
        token = self._peek()
        if token is None or not token.is_punct(mark):
            raise self._error(f"expected {mark!r}")
        return self._advance()

    def _expect_id(self) -> str:
        token = self._peek()
        if token is None or token.kind is not TokenKind.ID:
            raise self._error("expected an identifier")
        return self._advance().text

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.is_keyword(word)

    def _at_punct(self, mark: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token is not None and token.is_punct(mark)

    # -- SDF-DEFINITION ------------------------------------------------------

    def parse_definition(self) -> SdfDefinition:
        self._expect_keyword("module")
        name = self._expect_id()
        self._expect_keyword("begin")
        lexical = self._parse_lexical_syntax()
        contextfree = self._parse_context_free_syntax()
        self._expect_keyword("end")
        end_name = self._expect_id()
        if self._peek() is not None:
            raise self._error("trailing input after module end")
        return SdfDefinition(name, lexical, contextfree, end_name)

    # -- lexical syntax ----------------------------------------------------

    def _parse_lexical_syntax(self) -> LexicalSyntax:
        if not self._at_keyword("lexical"):
            return LexicalSyntax()
        self._advance()
        self._expect_keyword("syntax")
        sorts = self._parse_sorts_decl()
        layout: Tuple[str, ...] = ()
        if self._at_keyword("layout"):
            self._advance()
            layout = self._parse_sort_name_list()
        functions: List[LexicalFunction] = []
        if self._at_keyword("functions"):
            self._advance()
            while not (
                self._at_keyword("context-free") or self._at_keyword("end")
            ):
                functions.append(self._parse_lexical_function())
        return LexicalSyntax(sorts, layout, tuple(functions))

    def _parse_sorts_decl(self) -> Tuple[str, ...]:
        if not self._at_keyword("sorts"):
            return ()
        self._advance()
        return self._parse_sort_name_list()

    def _parse_sort_name_list(self) -> Tuple[str, ...]:
        names = [self._expect_id()]
        while self._at_punct(","):
            self._advance()
            names.append(self._expect_id())
        return tuple(names)

    def _parse_lexical_function(self) -> LexicalFunction:
        elems: List[LexElem] = []
        while not self._at_punct("->"):
            elems.append(self._parse_lex_elem())
        if not elems:
            raise self._error("lexical function needs at least one element")
        self._advance()  # the arrow
        sort = self._expect_id()
        return LexicalFunction(tuple(elems), sort)

    def _parse_lex_elem(self) -> LexElem:
        token = self._peek()
        if token is None:
            raise self._error("expected a lexical element")
        if token.kind is TokenKind.ID:
            self._advance()
            nxt = self._peek()
            if nxt is not None and nxt.kind is TokenKind.ITERATOR:
                self._advance()
                return LexSortRef(token.text, nxt.text)
            return LexSortRef(token.text)
        if token.kind is TokenKind.LITERAL:
            self._advance()
            return LexLiteral(token.text)
        if token.kind is TokenKind.CHAR_CLASS:
            self._advance()
            return LexCharClass(token.text)
        if token.is_punct("~"):
            self._advance()
            nxt = self._peek()
            if nxt is None or nxt.kind is not TokenKind.CHAR_CLASS:
                raise self._error("'~' must be followed by a character class")
            self._advance()
            return LexCharClass(nxt.text, negated=True)
        raise self._error("expected a lexical element")

    # -- context-free syntax ----------------------------------------------

    def _parse_context_free_syntax(self) -> ContextFreeSyntax:
        if not self._at_keyword("context-free"):
            return ContextFreeSyntax()
        self._advance()
        self._expect_keyword("syntax")
        sorts = self._parse_sorts_decl()
        priorities: Tuple[PrioDef, ...] = ()
        if self._at_keyword("priorities"):
            self._advance()
            priorities = self._parse_prio_defs()
        functions: List[Function] = []
        if self._at_keyword("functions"):
            self._advance()
            while not self._at_keyword("end"):
                functions.append(self._parse_function())
        return ContextFreeSyntax(sorts, priorities, tuple(functions))

    # -- priorities --------------------------------------------------------

    def _parse_prio_defs(self) -> Tuple[PrioDef, ...]:
        defs = [self._parse_prio_def()]
        while self._at_punct(","):
            self._advance()
            defs.append(self._parse_prio_def())
        return tuple(defs)

    def _parse_prio_def(self) -> PrioDef:
        lists = [self._parse_abbrev_f_list()]
        direction: Optional[str] = None
        if self._at_punct(">") or self._at_punct("<"):
            direction = self._advance().text
            lists.append(self._parse_abbrev_f_list())
            while self._at_punct(direction):
                self._advance()
                lists.append(self._parse_abbrev_f_list())
        return PrioDef(tuple(lists), direction)

    def _parse_abbrev_f_list(self) -> AbbrevFList:
        if self._at_punct("("):
            self._advance()
            defs = [self._parse_abbrev_f_def()]
            while self._at_punct(","):
                self._advance()
                defs.append(self._parse_abbrev_f_def())
            self._expect_punct(")")
            return AbbrevFList(tuple(defs))
        return AbbrevFList((self._parse_abbrev_f_def(),))

    def _parse_abbrev_f_def(self) -> AbbrevFDef:
        elems: List[CfElem] = []
        while self._cf_elem_ahead():
            elems.append(self._parse_cf_elem())
        if self._at_punct("->"):
            self._advance()
            sort = self._expect_id()
            return AbbrevFDef(tuple(elems), sort)
        if not elems:
            raise self._error("empty abbreviated function definition")
        return AbbrevFDef(tuple(elems), None)

    # -- functions ---------------------------------------------------------

    def _parse_function(self) -> Function:
        elems: List[CfElem] = []
        while not self._at_punct("->"):
            if not self._cf_elem_ahead():
                raise self._error("expected a context-free element or '->'")
            elems.append(self._parse_cf_elem())
        self._advance()  # the arrow
        sort = self._expect_id()
        attributes = self._parse_attributes()
        return Function(tuple(elems), sort, attributes)

    def _parse_attributes(self) -> Tuple[str, ...]:
        # "{" only opens an attribute list when an attribute word follows;
        # otherwise it is the next function's {SORT "sep"}+ element.
        if not self._at_punct("{"):
            return ()
        nxt = self._peek(1)
        if nxt is None or not any(nxt.is_keyword(w) for w in _ATTRIBUTE_WORDS):
            return ()
        self._advance()  # {
        words = [self._parse_attribute_word()]
        while self._at_punct(","):
            self._advance()
            words.append(self._parse_attribute_word())
        self._expect_punct("}")
        return tuple(words)

    def _parse_attribute_word(self) -> str:
        token = self._peek()
        if token is None or not any(token.is_keyword(w) for w in _ATTRIBUTE_WORDS):
            raise self._error("expected an attribute")
        return self._advance().text

    # -- CF-ELEM -------------------------------------------------------------

    def _cf_elem_ahead(self) -> bool:
        token = self._peek()
        if token is None:
            return False
        if token.kind in (TokenKind.ID, TokenKind.LITERAL):
            return True
        return token.is_punct("{")

    def _parse_cf_elem(self) -> CfElem:
        token = self._peek()
        assert token is not None
        if token.kind is TokenKind.LITERAL:
            self._advance()
            return CfLiteral(token.text)
        if token.kind is TokenKind.ID:
            self._advance()
            nxt = self._peek()
            if nxt is not None and nxt.kind is TokenKind.ITERATOR:
                self._advance()
                return CfIter(token.text, nxt.text)
            return CfSort(token.text)
        if token.is_punct("{"):
            self._advance()
            sort = self._expect_id()
            separator = self._peek()
            if separator is None or separator.kind is not TokenKind.LITERAL:
                raise self._error("expected a literal separator in {...}")
            self._advance()
            self._expect_punct("}")
            iterator = self._peek()
            if iterator is None or iterator.kind is not TokenKind.ITERATOR:
                raise self._error("expected an iterator after {...}")
            self._advance()
            return CfSepIter(sort, separator.text, iterator.text)
        raise self._error("expected a context-free element")


def parse_sdf(text: str) -> SdfDefinition:
    """Parse an SDF definition text into its AST."""
    return SdfParser(tokenize(text)).parse_definition()
