"""A small, explicit DSL for constructing grammars in Python code.

Grammars in tests, examples, and benchmarks are written like::

    g = GrammarBuilder()
    g.rule("B", ["true"])
    g.rule("B", ["false"])
    g.rule("B", ["B", "or", "B"])
    g.rule("B", ["B", "and", "B"])
    g.start("B")
    grammar = g.build()

Strings on the right-hand side are resolved *after* all rules are known:
any name that appears as a left-hand side anywhere is a non-terminal,
everything else is a terminal.  That matches how grammars read on paper and
avoids a whole class of "forgot to declare the sort" mistakes.

For one-liners there is also :func:`grammar_from_text`, accepting the BNF
notation the paper uses in its figures::

    grammar_from_text('''
        B ::= true
        B ::= false
        B ::= B or B
        B ::= B and B
        START ::= B
    ''')
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from .grammar import Grammar, GrammarError
from .rules import Rule
from .symbols import NonTerminal, START_NAME, Symbol, Terminal


class GrammarBuilder:
    """Accumulates rule sketches, then resolves names and builds a Grammar."""

    def __init__(self) -> None:
        self._sketches: List[Tuple[str, Tuple[Union[str, Symbol], ...], Optional[str]]] = []
        self._starts: List[str] = []
        self._declared_nonterminals: Set[str] = set()

    def sort(self, *names: str) -> "GrammarBuilder":
        """Force ``names`` to be non-terminals even if never defined.

        Mirrors SDF's ``sorts`` declaration; needed for non-terminals that
        are referenced before (or without) being defined — the incremental
        examples add their defining rules later.
        """
        self._declared_nonterminals.update(names)
        return self

    def rule(
        self,
        lhs: str,
        rhs: Sequence[Union[str, Symbol]],
        label: Optional[str] = None,
    ) -> "GrammarBuilder":
        """Record ``lhs ::= rhs``; returns self for chaining."""
        self._sketches.append((lhs, tuple(rhs), label))
        self._declared_nonterminals.add(lhs)
        return self

    def start(self, *roots: str) -> "GrammarBuilder":
        """Declare the user-level root sort(s); adds ``START ::= root``."""
        self._starts.extend(roots)
        self._declared_nonterminals.update(roots)
        return self

    def build(self) -> Grammar:
        nonterminal_names = set(self._declared_nonterminals)
        nonterminal_names.add(START_NAME)
        grammar = Grammar()
        for lhs, rhs, label in self._sketches:
            grammar.add_rule(self._resolve(lhs, rhs, label, nonterminal_names))
        for root in self._starts:
            grammar.add_rule(
                Rule(NonTerminal(START_NAME), [NonTerminal(root)], label=f"start {root}")
            )
        return grammar

    def build_rules(self) -> Tuple[Rule, ...]:
        """Resolve to plain rules without constructing a Grammar."""
        nonterminal_names = set(self._declared_nonterminals)
        nonterminal_names.add(START_NAME)
        rules = [
            self._resolve(lhs, rhs, label, nonterminal_names)
            for lhs, rhs, label in self._sketches
        ]
        rules.extend(
            Rule(NonTerminal(START_NAME), [NonTerminal(root)]) for root in self._starts
        )
        return tuple(rules)

    @staticmethod
    def _resolve(
        lhs: str,
        rhs: Sequence[Union[str, Symbol]],
        label: Optional[str],
        nonterminal_names: Set[str],
    ) -> Rule:
        body: List[Symbol] = []
        for part in rhs:
            if isinstance(part, Symbol):
                body.append(part)
            elif part in nonterminal_names:
                body.append(NonTerminal(part))
            else:
                body.append(Terminal(part))
        return Rule(NonTerminal(lhs), body, label=label)


def split_rule_text(line: str) -> Tuple[str, List[str]]:
    """Split ``"A ::= body"`` into the left-hand-side name and body parts.

    ``ε`` denotes the empty right-hand side and is only legal as the
    *entire* body: ``A ::= ε`` is an epsilon rule, but ``A ::= a ε b`` is
    a :class:`GrammarError` — silently dropping a mid-body ε would accept
    a rule the author never wrote.
    """
    if "::=" not in line:
        raise GrammarError(f"expected 'A ::= body', got {line!r}")
    lhs_text, rhs_text = line.split("::=", 1)
    lhs = lhs_text.strip()
    if not lhs:
        raise GrammarError(f"missing left-hand side in {line!r}")
    parts = rhs_text.split()
    if parts == ["ε"]:
        return lhs, []
    if "ε" in parts:
        raise GrammarError(
            f"ε denotes the empty right-hand side and cannot appear "
            f"inside a body: {line!r}"
        )
    return lhs, parts


def rule_from_text(
    text: str,
    known_nonterminals: Iterable[str] = (),
) -> Rule:
    """Parse one ``"A ::= body"`` line against a set of known sort names.

    A body name is a non-terminal iff it is in ``known_nonterminals`` or
    it is the rule's own left-hand side; everything else is a terminal.
    This is the coercion the IPG/Language ``add_rule``/``delete_rule``
    text forms use.
    """
    if not isinstance(text, str):
        raise GrammarError(f"expected a Rule or 'A ::= body' text, got {text!r}")
    lhs_name, parts = split_rule_text(text.strip())
    known = set(known_nonterminals)
    known.add(lhs_name)
    body: List[Symbol] = [
        NonTerminal(part) if part in known else Terminal(part) for part in parts
    ]
    return Rule(NonTerminal(lhs_name), body)


def grammar_from_text(text: str, sorts: Iterable[str] = ()) -> Grammar:
    """Parse the paper's ``A ::= x y z`` notation into a Grammar.

    One rule per line; blank lines and ``#`` comments ignored; an empty
    right-hand side (or the word ``ε``, standing alone) denotes an epsilon
    rule.  Names that occur as some left-hand side are non-terminals; pass
    ``sorts`` to force additional names to be non-terminals even though no
    rule in ``text`` defines them (forward references, snapshot
    round-trips).
    """
    sketches: List[Tuple[str, List[str]]] = []
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        sketches.append(split_rule_text(line))

    builder = GrammarBuilder()
    builder.sort(*sorts)
    for lhs, parts in sketches:
        builder.rule(lhs, parts)
    return builder.build()


def rules_from_text(text: str) -> Tuple[Rule, ...]:
    """Like :func:`grammar_from_text` but returns the bare rules."""
    return tuple(grammar_from_text(text).rules)
