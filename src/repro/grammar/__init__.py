"""Grammar substrate: symbols, rules, mutable grammars, and analyses.

This package is the foundation every other subsystem builds on.  Its
objects correspond one-to-one with the paper's vocabulary (section 4):
grammars are sets of rules ``A ::= alpha``; ``START`` is the distinguished
start symbol; ``$`` (:data:`~repro.grammar.symbols.END`) terminates input
sentences.
"""

from .analysis import GrammarAnalysis
from .builders import GrammarBuilder, grammar_from_text, rules_from_text
from .grammar import Grammar, GrammarError, GrammarObserver
from .rules import Rule
from .symbols import END, NonTerminal, START, START_NAME, Symbol, Terminal, as_symbol
from . import transforms

__all__ = [
    "END",
    "Grammar",
    "GrammarAnalysis",
    "GrammarBuilder",
    "GrammarError",
    "GrammarObserver",
    "NonTerminal",
    "Rule",
    "START",
    "START_NAME",
    "Symbol",
    "Terminal",
    "as_symbol",
    "grammar_from_text",
    "rules_from_text",
    "transforms",
]
