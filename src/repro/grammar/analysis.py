"""Classic grammar analyses: nullability, FIRST, FOLLOW, reachability.

The LR(0) machinery of the paper needs none of these, but every baseline the
paper compares against does:

* SLR(1) needs FOLLOW,
* LALR(1) (the Yacc baseline of section 7) needs FIRST of sentential tails,
* LL(1) needs FIRST and FOLLOW and their disjointness,
* Earley's nullable-completion fix needs nullability.

All analyses are computed against a grammar *snapshot*; an
:class:`GrammarAnalysis` instance caches its fixpoints and transparently
recomputes them when the underlying grammar's revision counter moves.  This
keeps call sites simple (``analysis.first_of(seq)``) without ever serving
stale data to the incremental generator's test harness.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from .grammar import Grammar
from .rules import Rule
from .symbols import END, NonTerminal, Symbol, Terminal


class GrammarAnalysis:
    """Lazily computed, revision-tracking analyses over a :class:`Grammar`."""

    def __init__(self, grammar: Grammar) -> None:
        self._grammar = grammar
        self._revision: Optional[int] = None
        self._nullable: FrozenSet[NonTerminal] = frozenset()
        self._first: Dict[NonTerminal, FrozenSet[Terminal]] = {}
        self._follow: Dict[NonTerminal, FrozenSet[Terminal]] = {}

    # -- cache management ------------------------------------------------

    def _refresh(self) -> None:
        if self._revision == self._grammar.revision:
            return
        self._nullable = _compute_nullable(self._grammar)
        self._first = _compute_first(self._grammar, self._nullable)
        self._follow = _compute_follow(
            self._grammar, self._nullable, self._first
        )
        self._revision = self._grammar.revision

    # -- queries ---------------------------------------------------------

    @property
    def nullable(self) -> FrozenSet[NonTerminal]:
        """Non-terminals that derive the empty string."""
        self._refresh()
        return self._nullable

    def is_nullable(self, symbol: Symbol) -> bool:
        self._refresh()
        return isinstance(symbol, NonTerminal) and symbol in self._nullable

    def sequence_nullable(self, seq: Sequence[Symbol]) -> bool:
        """True if every symbol of ``seq`` is nullable (so ``seq`` =>* ε)."""
        self._refresh()
        return all(
            isinstance(s, NonTerminal) and s in self._nullable for s in seq
        )

    def first(self, nonterminal: NonTerminal) -> FrozenSet[Terminal]:
        self._refresh()
        return self._first.get(nonterminal, frozenset())

    def first_of(self, seq: Sequence[Symbol]) -> FrozenSet[Terminal]:
        """FIRST of a sentential form (terminals that can begin ``seq``)."""
        self._refresh()
        result: Set[Terminal] = set()
        for sym in seq:
            if isinstance(sym, Terminal):
                result.add(sym)
                break
            result |= self._first.get(sym, frozenset())
            if sym not in self._nullable:
                break
        return frozenset(result)

    def follow(self, nonterminal: NonTerminal) -> FrozenSet[Terminal]:
        """FOLLOW set; the start symbol's always contains the end-marker."""
        self._refresh()
        return self._follow.get(nonterminal, frozenset())

    # -- structural well-formedness --------------------------------------

    def reachable(self) -> FrozenSet[NonTerminal]:
        """Non-terminals reachable from the start symbol."""
        g = self._grammar
        seen: Set[NonTerminal] = {g.start}
        work: List[NonTerminal] = [g.start]
        while work:
            nt = work.pop()
            for rule in g.rules_for(nt):
                for sym in rule.rhs:
                    if isinstance(sym, NonTerminal) and sym not in seen:
                        seen.add(sym)
                        work.append(sym)
        return frozenset(seen)

    def productive(self) -> FrozenSet[NonTerminal]:
        """Non-terminals that derive at least one terminal string."""
        g = self._grammar
        productive: Set[NonTerminal] = set()
        changed = True
        while changed:
            changed = False
            for rule in g.rules:
                if rule.lhs in productive:
                    continue
                if all(
                    isinstance(s, Terminal) or s in productive for s in rule.rhs
                ):
                    productive.add(rule.lhs)
                    changed = True
        return frozenset(productive)

    def useless_rules(self) -> FrozenSet[Rule]:
        """Rules that can never take part in a derivation of a sentence."""
        reachable = self.reachable()
        productive = self.productive()
        useless: Set[Rule] = set()
        for rule in self._grammar.rules:
            if rule.lhs not in reachable:
                useless.add(rule)
                continue
            for sym in rule.rhs:
                if isinstance(sym, NonTerminal) and sym not in productive:
                    useless.add(rule)
                    break
        return frozenset(useless)

    def left_recursive(self) -> FrozenSet[NonTerminal]:
        """Non-terminals A with A =>+ A alpha (direct or indirect).

        Used by the Fig. 2.1 capability bench: recursive-descent/LL
        baselines reject grammars containing such non-terminals.
        """
        self._refresh()
        g = self._grammar
        # edge A -> B when A ::= alpha B beta with alpha nullable
        edges: Dict[NonTerminal, Set[NonTerminal]] = {}
        for rule in g.rules:
            for sym in rule.rhs:
                if isinstance(sym, NonTerminal):
                    edges.setdefault(rule.lhs, set()).add(sym)
                if not self.is_nullable(sym):
                    break
        result: Set[NonTerminal] = set()
        for nt in g.nonterminals:
            if _on_cycle(nt, edges):
                result.add(nt)
        return frozenset(result)

    def has_cycles(self) -> bool:
        """True if A =>+ A for some non-terminal (unit-derivation cycle).

        Cyclic grammars give sentences with infinitely many parse trees;
        the pool parser's sweep guard exists precisely for them.
        """
        self._refresh()
        g = self._grammar
        edges: Dict[NonTerminal, Set[NonTerminal]] = {}
        for rule in g.rules:
            body = rule.rhs
            for i, sym in enumerate(body):
                if not isinstance(sym, NonTerminal):
                    continue
                rest_nullable = all(
                    self.is_nullable(s) for j, s in enumerate(body) if j != i
                )
                if rest_nullable:
                    edges.setdefault(rule.lhs, set()).add(sym)
        return any(_on_cycle(nt, edges) for nt in g.nonterminals)


def _on_cycle(start: NonTerminal, edges: Dict[NonTerminal, Set[NonTerminal]]) -> bool:
    seen: Set[NonTerminal] = set()
    work = list(edges.get(start, ()))
    while work:
        nt = work.pop()
        if nt == start:
            return True
        if nt in seen:
            continue
        seen.add(nt)
        work.extend(edges.get(nt, ()))
    return False


# -- fixpoint computations ---------------------------------------------------


def _compute_nullable(grammar: Grammar) -> FrozenSet[NonTerminal]:
    nullable: Set[NonTerminal] = set()
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            if rule.lhs in nullable:
                continue
            if all(isinstance(s, NonTerminal) and s in nullable for s in rule.rhs):
                nullable.add(rule.lhs)
                changed = True
    return frozenset(nullable)


def _compute_first(
    grammar: Grammar, nullable: FrozenSet[NonTerminal]
) -> Dict[NonTerminal, FrozenSet[Terminal]]:
    first: Dict[NonTerminal, Set[Terminal]] = {
        nt: set() for nt in grammar.nonterminals
    }
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            target = first.setdefault(rule.lhs, set())
            before = len(target)
            for sym in rule.rhs:
                if isinstance(sym, Terminal):
                    target.add(sym)
                    break
                target |= first.get(sym, set())
                if sym not in nullable:
                    break
            if len(target) != before:
                changed = True
    return {nt: frozenset(ts) for nt, ts in first.items()}


def _compute_follow(
    grammar: Grammar,
    nullable: FrozenSet[NonTerminal],
    first: Dict[NonTerminal, FrozenSet[Terminal]],
) -> Dict[NonTerminal, FrozenSet[Terminal]]:
    follow: Dict[NonTerminal, Set[Terminal]] = {
        nt: set() for nt in grammar.nonterminals
    }
    follow.setdefault(grammar.start, set()).add(END)
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            body = rule.rhs
            for i, sym in enumerate(body):
                if not isinstance(sym, NonTerminal):
                    continue
                target = follow.setdefault(sym, set())
                before = len(target)
                tail = body[i + 1 :]
                for t in tail:
                    if isinstance(t, Terminal):
                        target.add(t)
                        break
                    target |= first.get(t, frozenset())
                    if t not in nullable:
                        break
                else:
                    # the whole tail is nullable (or empty):
                    # FOLLOW(lhs) flows into FOLLOW(sym)
                    target |= follow.setdefault(rule.lhs, set())
                if len(target) != before:
                    changed = True
    return {nt: frozenset(ts) for nt, ts in follow.items()}
