"""Desugaring of SDF-style iterators into plain context-free rules.

SDF (Appendix B of the paper) lets right-hand sides contain
``SORT+``, ``SORT*`` and ``{SORT sep}+`` / ``{SORT sep}*`` elements.  The
core grammar and the LR machinery only know plain rules, so the SDF
normalizer calls into this module to expand each iterator into a fresh
non-terminal with left-recursive rules:

``A+``            ``A-plus ::= A              | A-plus A``
``A*``            ``A-star ::= ε              | A-star A``  (via A-plus)
``{A s}+``        ``A-s-list ::= A            | A-s-list s A``
``{A s}*``        ``A-s-list-opt ::= ε        | A-s-list``

Left recursion is the natural encoding for an LR-family parser (constant
stack depth while iterating); it is also precisely what the top-down
baselines cannot handle, which the Fig. 2.1 capability bench exploits.

The expansion is *idempotent and shared*: asking twice for ``A+`` in the
same grammar returns the same non-terminal and adds no duplicate rules, so
iterator-heavy grammars (like SDF's own) stay small.
"""

from __future__ import annotations

from typing import Tuple

from .grammar import Grammar
from .rules import Rule
from .symbols import NonTerminal, Symbol, Terminal


def _derived_name(base: str, suffix: str) -> str:
    return f"{base}{suffix}"


def plus(grammar: Grammar, element: Symbol) -> NonTerminal:
    """Return a non-terminal deriving one-or-more ``element``."""
    nt = NonTerminal(_derived_name(element.name, "+"))
    if not grammar.defines(nt):
        grammar.add_rule(Rule(nt, [element], label=f"{element}+ base"))
        grammar.add_rule(Rule(nt, [nt, element], label=f"{element}+ step"))
    return nt


def star(grammar: Grammar, element: Symbol) -> NonTerminal:
    """Return a non-terminal deriving zero-or-more ``element``."""
    nt = NonTerminal(_derived_name(element.name, "*"))
    if not grammar.defines(nt):
        plus_nt = plus(grammar, element)
        grammar.add_rule(Rule(nt, [], label=f"{element}* empty"))
        grammar.add_rule(Rule(nt, [plus_nt], label=f"{element}* non-empty"))
    return nt


def separated_plus(
    grammar: Grammar, element: Symbol, separator: Symbol
) -> NonTerminal:
    """Return a non-terminal deriving ``element (separator element)*``.

    This is SDF's ``{ELEM sep}+`` notation, used pervasively in Appendix B
    (e.g. ``{SORT ","}+`` in sorts declarations).
    """
    nt = NonTerminal(_derived_name(element.name, f"-{separator.name}-list"))
    if not grammar.defines(nt):
        grammar.add_rule(Rule(nt, [element], label=f"{{{element} {separator}}}+ base"))
        grammar.add_rule(
            Rule(nt, [nt, separator, element], label=f"{{{element} {separator}}}+ step")
        )
    return nt


def separated_star(
    grammar: Grammar, element: Symbol, separator: Symbol
) -> NonTerminal:
    """Return a non-terminal deriving a possibly-empty separated list."""
    nt = NonTerminal(_derived_name(element.name, f"-{separator.name}-list?"))
    if not grammar.defines(nt):
        base = separated_plus(grammar, element, separator)
        grammar.add_rule(Rule(nt, [], label="empty separated list"))
        grammar.add_rule(Rule(nt, [base], label="non-empty separated list"))
    return nt


def optional(grammar: Grammar, element: Symbol) -> NonTerminal:
    """Return a non-terminal deriving zero-or-one ``element``."""
    nt = NonTerminal(_derived_name(element.name, "?"))
    if not grammar.defines(nt):
        grammar.add_rule(Rule(nt, [], label=f"{element}? absent"))
        grammar.add_rule(Rule(nt, [element], label=f"{element}? present"))
    return nt


def augment(grammar: Grammar, *roots: NonTerminal) -> None:
    """Add ``START ::= root`` rules for each given root non-terminal.

    Section 4 requires every grammar handed to GENERATE-PARSER to define
    the distinguished ``START`` symbol; front ends call this once they know
    the user's intended top sort(s).  Multiple roots are permitted — the
    parallel parser will simply fork at the first token if their languages
    overlap.
    """
    for root in roots:
        grammar.add_rule(Rule(grammar.start, [root], label=f"start via {root}"))


def strip_unreachable(grammar: Grammar) -> Tuple[Rule, ...]:
    """Delete rules unreachable from the start symbol; return them.

    Useful after heavy editing sessions; the incremental generator does not
    need this (its GC reclaims item sets, not rules), but language
    designers appreciate the hygiene and the modular-composition example
    uses it to show what an import actually contributed.
    """
    from .analysis import GrammarAnalysis

    reachable = GrammarAnalysis(grammar).reachable()
    doomed = tuple(
        rule for rule in grammar.rules if rule.lhs not in reachable
    )
    for rule in doomed:
        grammar.delete_rule(rule)
    return doomed
