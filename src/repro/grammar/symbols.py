"""Grammar symbols: terminals, non-terminals, and the reserved markers.

The paper (section 4) works with grammars whose rules are ``A ::= alpha``
where ``A`` is a non-terminal and ``alpha`` a list of terminals and/or
non-terminals.  The distinguished non-terminal ``START`` is the start symbol
and may not occur in any right-hand side; the distinguished terminal ``$``
is the end-of-input marker appended to every sentence.

Symbols are immutable value objects: two ``Terminal("x")`` instances compare
equal and hash identically, so they can be freely used as dictionary keys in
parse tables and item-set transition maps.  Construction is interned so that
symbol-heavy code (closure computation, table generation) benefits from
pointer-fast equality in the common case.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union


class Symbol:
    """Base class for grammar symbols.

    A symbol is identified by its ``name`` and its concrete class.  The
    class is ``Terminal`` or ``NonTerminal``; ``Symbol`` itself is abstract
    and never instantiated directly.
    """

    __slots__ = ("name",)

    _intern: Dict[Tuple[type, str], "Symbol"] = {}

    def __new__(cls, name: str) -> "Symbol":
        if cls is Symbol:
            raise TypeError("instantiate Terminal or NonTerminal, not Symbol")
        if not isinstance(name, str) or not name:
            raise ValueError(f"symbol name must be a non-empty string, got {name!r}")
        key = (cls, name)
        cached = cls._intern.get(key)
        if cached is not None:
            return cached
        obj = object.__new__(cls)
        obj.name = name
        cls._intern[key] = obj
        return obj

    # Equality and hashing are *identity-based* (inherited from object):
    # interning in ``__new__`` guarantees that two symbols with the same
    # class and name are the same object, and ``__reduce__`` re-interns on
    # unpickling.  Identity semantics lets every symbol-keyed dict probe in
    # the hot ACTION/GOTO loop use the C-level pointer hash instead of
    # dispatching into a Python-level ``__hash__``.

    def __lt__(self, other: "Symbol") -> bool:
        """Stable ordering used to make generated automata deterministic.

        Terminals sort before non-terminals; within a class, by name.  A
        total order over symbols keeps item-set numbering reproducible,
        which is what lets the test suite check the exact state numbers of
        the paper's Fig. 4.1.
        """
        if not isinstance(other, Symbol):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self) -> Tuple[int, str]:
        return (0 if isinstance(self, Terminal) else 1, self.name)

    @property
    def is_terminal(self) -> bool:
        return isinstance(self, Terminal)

    @property
    def is_nonterminal(self) -> bool:
        return isinstance(self, NonTerminal)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __reduce__(self):
        return (type(self), (self.name,))


class Terminal(Symbol):
    """A terminal symbol (a token kind as seen by the parser)."""

    __slots__ = ()


class NonTerminal(Symbol):
    """A non-terminal symbol (a sort, in SDF terminology)."""

    __slots__ = ()


#: End-of-input marker.  Sentences handed to the parsing algorithms are
#: terminated by this terminal (the ``$`` of section 3.1).
END = Terminal("$")

#: Name of the distinguished start symbol (section 4: "The non-terminal
#: START is the start symbol of the grammar").
START_NAME = "START"

#: The distinguished start symbol itself.
START = NonTerminal(START_NAME)


SymbolLike = Union[Symbol, str]


def as_symbol(value: SymbolLike, nonterminals: "frozenset[str]" = frozenset()) -> Symbol:
    """Coerce ``value`` to a :class:`Symbol`.

    Strings are interpreted as terminals unless their name appears in
    ``nonterminals``.  Existing symbols pass through unchanged.  This is a
    convenience for test code and the builder DSL; the core algorithms only
    ever see proper :class:`Symbol` instances.
    """
    if isinstance(value, Symbol):
        return value
    if value in nonterminals or value == START_NAME:
        return NonTerminal(value)
    return Terminal(value)
