"""Syntax rules (productions).

A rule is the paper's ``A ::= alpha``: a non-terminal left-hand side and a
(possibly empty) sequence of symbols on the right.  Rules are immutable and
compare by value — the paper treats a grammar as a *set* of rules, and the
incremental algorithms of section 6 add and delete individual rules, so rule
identity must be structural.

An optional ``label`` carries a human-readable name (SDF attaches attribute
information to functions); it is deliberately excluded from equality and
hashing so that labelling a rule does not change the language or confuse the
incremental generator.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .symbols import NonTerminal, Symbol, Terminal


class Rule:
    """An immutable production ``lhs ::= rhs``.

    Parameters
    ----------
    lhs:
        The non-terminal being defined.
    rhs:
        The body: an iterable of :class:`Symbol`.  An empty body denotes an
        epsilon rule (``A ::=``), which the LR machinery supports (the dot
        of such an item is immediately at the end, so the item contributes a
        reduction in the very state whose closure introduced it).
    label:
        Optional descriptive name; ignored for equality.
    """

    __slots__ = ("lhs", "rhs", "label", "_hash")

    def __init__(
        self,
        lhs: NonTerminal,
        rhs: Iterable[Symbol],
        label: Optional[str] = None,
    ) -> None:
        if not isinstance(lhs, NonTerminal):
            raise TypeError(f"rule left-hand side must be a NonTerminal, got {lhs!r}")
        body: Tuple[Symbol, ...] = tuple(rhs)
        for sym in body:
            if not isinstance(sym, Symbol):
                raise TypeError(f"rule body must contain Symbols, got {sym!r}")
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "rhs", body)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "_hash", hash((lhs, body)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Rule is immutable")

    # -- value semantics ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Rule):
            return NotImplemented
        return self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Rule") -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def sort_key(self):
        return (self.lhs.name, tuple(s.sort_key() for s in self.rhs))

    # -- convenience -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rhs)

    @property
    def is_epsilon(self) -> bool:
        """True for an empty body (``A ::=``)."""
        return not self.rhs

    def symbols(self) -> Tuple[Symbol, ...]:
        """All symbols mentioned by the rule, left-hand side included."""
        return (self.lhs,) + self.rhs

    def terminals(self) -> Tuple[Terminal, ...]:
        return tuple(s for s in self.rhs if isinstance(s, Terminal))

    def nonterminals(self) -> Tuple[NonTerminal, ...]:
        result = [self.lhs]
        result.extend(s for s in self.rhs if isinstance(s, NonTerminal))
        return tuple(result)

    def __repr__(self) -> str:
        return f"Rule({self!s})"

    def __str__(self) -> str:
        body = " ".join(str(s) for s in self.rhs) if self.rhs else "ε"
        return f"{self.lhs} ::= {body}"
