"""The mutable, observable grammar object.

The incremental parser generator of section 6 revolves around a grammar that
changes over time: ``ADD-RULE`` and ``DELETE-RULE`` update the global
``Grammar`` variable and then repair the graph of item sets.  This module
provides that mutable grammar:

* a *set* of :class:`~repro.grammar.rules.Rule` (the paper's ``Grammar``),
* the distinguished start symbol ``START`` which may not occur in any
  right-hand side (enforced),
* an observer interface so that generators (and anything else, e.g. the
  metrics layer) are notified of every rule addition and deletion,
* derived views: terminals, non-terminals, rules-per-non-terminal, all kept
  incrementally so queries are O(1).

A :class:`Grammar` is deliberately *not* hashable — it is an identity-bearing
mutable object.  Snapshots (:meth:`Grammar.snapshot`) are frozen sets of
rules and can be compared, stored, and replayed.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Set,
    Tuple,
)

from .rules import Rule
from .symbols import END, NonTerminal, START, Symbol, Terminal

#: Observer signature: ``callback(grammar, rule, added)`` where ``added`` is
#: True for an addition and False for a deletion.  Observers run *after* the
#: grammar has been updated, matching the order of the paper's ``MODIFY``
#: (grammar first, then the graph of item sets).
GrammarObserver = Callable[["Grammar", Rule, bool], None]


class GrammarError(ValueError):
    """Raised for structurally invalid grammars or invalid edits."""


class Grammar:
    """A mutable set of syntax rules with change notification.

    Parameters
    ----------
    rules:
        Initial rules.  At least one rule must (eventually) define
        ``START``; parsing an empty grammar is permitted but accepts
        nothing.
    start:
        The start symbol; defaults to the distinguished ``START``
        non-terminal of the paper.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        start: NonTerminal = START,
    ) -> None:
        if not isinstance(start, NonTerminal):
            raise GrammarError(f"start symbol must be a NonTerminal, got {start!r}")
        self._start = start
        # Insertion-ordered: closure computation (and therefore item-set
        # numbering) follows the order rules were written, exactly like
        # the paper's figures follow its grammar listings.
        self._rules: Dict[Rule, None] = {}
        self._by_lhs: Dict[NonTerminal, List[Rule]] = {}
        self._terminal_counts: Dict[Terminal, int] = {}
        self._nonterminal_counts: Dict[NonTerminal, int] = {}
        self._observers: List[GrammarObserver] = []
        self._revision = 0
        for rule in rules:
            self.add_rule(rule)

    # -- basic queries -------------------------------------------------

    @property
    def start(self) -> NonTerminal:
        return self._start

    @property
    def revision(self) -> int:
        """Monotone counter bumped by every successful edit."""
        return self._revision

    def advance_revision(self, to: int) -> int:
        """Raise the revision counter to at least ``to`` (never lowers it).

        A restored snapshot continues the counter of the session that was
        saved, so protocol clients keying on the advertised version never
        see it move backwards.
        """
        self._revision = max(self._revision, to)
        return self._revision

    @property
    def rules(self) -> FrozenSet[Rule]:
        return frozenset(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(sorted(self._rules))

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def rules_for(self, nonterminal: NonTerminal) -> Tuple[Rule, ...]:
        """All rules defining ``nonterminal``, in insertion order.

        Insertion order is what makes closure computation — and therefore
        item-set numbering — both deterministic *and* faithful to the
        paper's figures, which follow the order of the grammar listing.
        """
        return tuple(self._by_lhs.get(nonterminal, ()))

    def start_rules(self) -> Tuple[Rule, ...]:
        """The rules defining the start symbol (kernel seeds of section 4)."""
        return self.rules_for(self._start)

    @property
    def terminals(self) -> FrozenSet[Terminal]:
        return frozenset(self._terminal_counts)

    @property
    def nonterminals(self) -> FrozenSet[NonTerminal]:
        return frozenset(self._nonterminal_counts)

    @property
    def symbols(self) -> FrozenSet[Symbol]:
        return self.terminals | self.nonterminals

    def defines(self, nonterminal: NonTerminal) -> bool:
        """True if at least one rule has ``nonterminal`` as left-hand side."""
        return bool(self._by_lhs.get(nonterminal))

    # -- mutation --------------------------------------------------------

    def add_rule(self, rule: Rule) -> bool:
        """Add ``rule``; return True if the grammar changed.

        Enforces the two structural restrictions of section 4: the start
        symbol may not occur in a right-hand side, and the end-marker ``$``
        may not occur anywhere (it is reserved for the accept transition).
        """
        self._validate(rule)
        if rule in self._rules:
            return False
        self._rules[rule] = None
        self._by_lhs.setdefault(rule.lhs, []).append(rule)
        self._count_symbols(rule, +1)
        self._revision += 1
        self._notify(rule, added=True)
        return True

    def delete_rule(self, rule: Rule) -> bool:
        """Delete ``rule``; return True if the grammar changed."""
        if rule not in self._rules:
            return False
        del self._rules[rule]
        bucket = self._by_lhs[rule.lhs]
        bucket.remove(rule)
        if not bucket:
            del self._by_lhs[rule.lhs]
        self._count_symbols(rule, -1)
        self._revision += 1
        self._notify(rule, added=False)
        return True

    def replace_rule(self, old: Rule, new: Rule) -> None:
        """Delete ``old`` and add ``new`` (two notifications, as in MODIFY)."""
        if not self.delete_rule(old):
            raise GrammarError(f"cannot replace absent rule {old}")
        self.add_rule(new)

    def update(self, add: Iterable[Rule] = (), delete: Iterable[Rule] = ()) -> None:
        """Batch edit: deletions first, then additions."""
        for rule in delete:
            self.delete_rule(rule)
        for rule in add:
            self.add_rule(rule)

    # -- observation -------------------------------------------------------

    def subscribe(self, observer: GrammarObserver) -> Callable[[], None]:
        """Register ``observer``; returns an unsubscribe callable."""
        self._observers.append(observer)

        def unsubscribe() -> None:
            try:
                self._observers.remove(observer)
            except ValueError:
                pass

        return unsubscribe

    def _notify(self, rule: Rule, added: bool) -> None:
        for observer in list(self._observers):
            observer(self, rule, added)

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> FrozenSet[Rule]:
        """An immutable copy of the current rule set."""
        return frozenset(self._rules)

    def copy(self) -> "Grammar":
        """An independent grammar with the same rules (no observers)."""
        return Grammar(self._rules, start=self._start)

    # -- internals -----------------------------------------------------

    def _validate(self, rule: Rule) -> None:
        if not isinstance(rule, Rule):
            raise GrammarError(f"expected a Rule, got {rule!r}")
        for sym in rule.rhs:
            if sym == self._start:
                raise GrammarError(
                    f"start symbol {self._start} may not occur in a "
                    f"right-hand side (rule {rule})"
                )
            if sym == END:
                raise GrammarError(
                    f"the end-marker {END} is reserved and may not occur "
                    f"in a rule (rule {rule})"
                )
        if rule.lhs == END:  # unreachable given types, kept for clarity
            raise GrammarError("the end-marker cannot be defined")

    def _count_symbols(self, rule: Rule, delta: int) -> None:
        for sym in rule.symbols():
            counts = (
                self._terminal_counts
                if isinstance(sym, Terminal)
                else self._nonterminal_counts
            )
            new = counts.get(sym, 0) + delta
            if new:
                counts[sym] = new
            else:
                counts.pop(sym, None)

    def __repr__(self) -> str:
        return f"Grammar({len(self._rules)} rules, start={self._start})"

    def pretty(self) -> str:
        """A BNF-style listing, one rule per line, deterministic order."""
        return "\n".join(str(rule) for rule in self)
