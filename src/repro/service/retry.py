"""Client-side retry policy for transient service errors.

The supervised scheduler answers with *retryable* shapes — ``overloaded``
(a shard queue at its bound) and ``shard-restarting`` (the supervisor is
respawning a crashed shard, with a ``retry_after_ms`` hint) — under the
contract that the client re-sends: journal replay reproduces only
acknowledged mutations, so re-sending an unacknowledged request is safe
by construction.  This module is the matching client half, used by the
bench harnesses and the chaos suite; the standalone example client
(``examples/tcp_client.py``) carries its own copy so it keeps working
without the package on ``sys.path``.

``shard-degraded`` is deliberately not retryable: the circuit breaker
tripped because retries were *not* going to help.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, Optional

__all__ = ["is_retryable", "call_with_retries"]

#: Error strings that mean "same request, try again shortly".
RETRYABLE_ERRORS = frozenset({"shard-restarting"})


def is_retryable(response: Any) -> bool:
    if not isinstance(response, dict):
        return False
    error = response.get("error")
    if not isinstance(error, str):
        return False
    return error in RETRYABLE_ERRORS or response.get("overloaded") is True


def backoff_ms(
    response: Any,
    attempt: int,
    base_ms: float = 25.0,
    max_ms: float = 2_000.0,
    rng: Optional[random.Random] = None,
) -> float:
    """Delay before re-sending: the server's hint plus jittered exponential."""
    hint = 0.0
    if isinstance(response, dict):
        value = response.get("retry_after_ms")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            hint = float(value)
    ceiling = min(max_ms, base_ms * (2.0**attempt))
    jitter = (rng.random() if rng is not None else random.random()) * ceiling
    return hint + jitter


def call_with_retries(
    handle: Callable[[Dict[str, Any]], Dict[str, Any]],
    request: Dict[str, Any],
    retries: int = 6,
    base_ms: float = 25.0,
    max_ms: float = 2_000.0,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Dict[str, Any]:
    """``handle(request)``, re-sent through transient errors.

    Returns the first non-retryable response, or the last retryable one
    once ``retries`` re-sends are spent (the caller sees the transient
    error it could not outwait — never a silent drop).
    """
    response = handle(request)
    for attempt in range(retries):
        if not is_retryable(response):
            return response
        sleep(backoff_ms(response, attempt, base_ms, max_ms, rng) / 1000.0)
        response = handle(request)
    return response
