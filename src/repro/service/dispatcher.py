"""The request dispatcher: one JSON request in, one JSON response out.

Every response carries ``time`` (seconds spent on the request) and, for the
parse-shaped commands, ``cache`` (whether the answer came from the LRU
result cache) — the two bookkeeping fields of the Korp command API that
made its cache behaviour observable from the outside.  Errors are data,
not exceptions: a failed request produces ``{"error": ..., "time": ...}``
so one bad line never takes the serve loop down.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from .. import obs
from ..core.metrics import LatencyStats, full_table_states, states_materialized
from ..grammar.grammar import GrammarError
from ..runtime.deadline import deadline_scope
from ..runtime.errors import DeadlineExceeded, ParseError
from .protocol import (
    COMMANDS,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    require,
)
from .snapshot import (
    load_session,
    save_session,
    session_from_dict,
    session_to_dict,
)
from .workspace import Workspace

Handler = Callable[[Dict[str, Any]], Dict[str, Any]]

#: Export formats the ``metrics-export`` command understands.
EXPORT_FORMATS = ("prometheus", "json")

_REQUEST_SECONDS = obs.histogram("repro.service.request.seconds")
_ERRORS = obs.counter("repro.service.errors")
_REQUEST_COUNTERS: Dict[str, obs.Counter] = {}


def _request_counter(cmd: str) -> obs.Counter:
    counter = _REQUEST_COUNTERS.get(cmd)
    if counter is None:
        counter = _REQUEST_COUNTERS[cmd] = obs.counter(
            "repro.service.requests", cmd=cmd
        )
    return counter


class Dispatcher:
    """Serves the protocol of :mod:`repro.service.protocol` over a workspace."""

    def __init__(
        self,
        workspace: Optional[Workspace] = None,
        cache_capacity: int = 1024,
        clock: Callable[[], float] = time.perf_counter,
        default_deadline_ms: Optional[float] = None,
        corpus_root: Optional[str] = None,
        table_cache: Optional[str] = None,
    ) -> None:
        table_store = None
        if table_cache is not None:
            # Imported lazily to keep the service importable without the
            # LR layer fully loaded (mirrors the corpus import below).
            from ..lr.tablestore import TableStore

            table_store = TableStore(table_cache)
        if workspace is not None:
            self.workspace = workspace
        else:
            self.workspace = Workspace(cache_capacity, table_store=table_store)
        self.stats = LatencyStats()
        self.default_deadline_ms = default_deadline_ms
        self._clock = clock
        self.corpus = None
        if corpus_root is not None:
            # Imported lazily: repro.corpus sits above this module in the
            # layering (it submits ordinary parse requests back through
            # the service), so a module-level import would be a cycle.
            from ..corpus.manager import CorpusManager

            def _inline_submit(request: Dict[str, Any]):
                from concurrent.futures import Future

                future: "Future[Dict[str, Any]]" = Future()
                future.set_result(self.handle(request))
                return future

            self.corpus = CorpusManager(corpus_root, submit=_inline_submit)
        self._handler_map = self._handlers()

    def close(self) -> None:
        """Stop corpus jobs and close their journals.  Idempotent."""
        if self.corpus is not None:
            self.corpus.close()

    # -- the entry point ---------------------------------------------------

    def handle(self, request: Any) -> Dict[str, Any]:
        """Serve one request; always returns a response with ``time``.

        A request carrying ``"trace": true`` is served inside a forced
        root span; the finished span tree rides back in the response's
        ``trace`` field (its duration is necessarily within ``time``,
        which also covers the bookkeeping around the span).
        """
        started = self._clock()
        cmd = request.get("cmd") if isinstance(request, dict) else None
        root = None
        try:
            deadline_ms = self._deadline_of(request)
            with deadline_scope(deadline_ms):
                if isinstance(request, dict) and request.get("trace"):
                    with obs.trace(
                        "request", cmd=cmd if isinstance(cmd, str) else "?"
                    ) as root:
                        response = self._dispatch(request, cmd)
                else:
                    response = self._dispatch(request, cmd)
        except DeadlineExceeded as error:
            # Caught before the broad handlers so a deadline can never be
            # misreported as an ordinary parse failure: the input was not
            # rejected, the budget ran out.
            response = {"error": "deadline-exceeded", "detail": str(error)}
            if error.deadline_ms is not None:
                response["deadline_ms"] = error.deadline_ms
            if error.tokens_consumed is not None:
                response["tokens_consumed"] = error.tokens_consumed
            obs.counter("repro.service.deadline_exceeded").inc()
        except (ServiceError, GrammarError, ParseError, OSError) as error:
            response = {"error": str(error)}
        except Exception as error:  # noqa: BLE001 — server boundary
            # One malformed request (wrong field types, corrupt payloads)
            # must never take down the loop and every other session's
            # state; unexpected types are named so bugs stay diagnosable.
            response = {"error": f"{type(error).__name__}: {error}"}
        if root is not None:
            response["trace"] = root.to_dict()
        if cmd is not None:
            response.setdefault("cmd", cmd)
        if isinstance(request, dict) and "session" in request:
            response.setdefault("session", request["session"])
        elapsed = self._clock() - started
        response["time"] = round(elapsed, 6)
        key = cmd if isinstance(cmd, str) else "<invalid>"
        self.stats.record(key, elapsed)
        _request_counter(key).inc()
        _REQUEST_SECONDS.observe(elapsed)
        if "error" in response:
            _ERRORS.inc()
        return response

    def _deadline_of(self, request: Any) -> Optional[float]:
        """The effective wall-clock budget: request field or server default."""
        if not isinstance(request, dict) or "deadline_ms" not in request:
            return self.default_deadline_ms
        value = request["deadline_ms"]
        if value is None:
            # Explicit null opts out of the server default.
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                f"'deadline_ms' must be a number of milliseconds, got "
                f"{type(value).__name__}"
            )
        if value <= 0:
            raise ProtocolError(
                f"'deadline_ms' must be positive, got {value}"
            )
        return float(value)

    def _dispatch(self, request: Any, cmd: Any) -> Dict[str, Any]:
        if not isinstance(request, dict):
            raise ProtocolError(
                f"requests must be JSON objects, got {type(request).__name__}"
            )
        if not isinstance(cmd, str):
            raise ProtocolError("request is missing the 'cmd' field")
        handler = self._handler_map.get(cmd)
        if handler is None:
            raise ProtocolError(
                f"unknown command {cmd!r} — known: {', '.join(COMMANDS)}"
            )
        return handler(request)

    def _handlers(self) -> Dict[str, Handler]:
        return {
            "open": self._open,
            "close": self._close,
            "add-rule": self._add_rule,
            "delete-rule": self._delete_rule,
            "parse": self._parse,
            "edit-parse": self._edit_parse,
            "recognize": self._recognize,
            "batch-parse": self._batch_parse,
            "snapshot": self._snapshot,
            "restore": self._restore,
            "metrics": self._metrics,
            "metrics-export": self._metrics_export,
            "info": self._info,
            "sessions": self._sessions,
            "health": self._health,
            "ready": self._ready,
            "corpus-create": self._corpus("create"),
            "corpus-ingest": self._corpus("ingest"),
            "corpus-parse": self._corpus("parse"),
            "corpus-status": self._corpus("status"),
            "corpus-query": self._corpus("query"),
            "corpus-info": self._corpus("info"),
        }

    def _corpus(self, method: str) -> Handler:
        """A corpus command handler, or a helpful refusal without a root."""

        def handler(request: Dict[str, Any]) -> Dict[str, Any]:
            if self.corpus is None:
                raise ProtocolError(
                    f"{request.get('cmd')!r} needs a corpus root — start "
                    f"the service with --corpus-root DIR"
                )
            return getattr(self.corpus, method)(request)

        return handler

    # -- session lifecycle -------------------------------------------------

    def _open(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = require(request, "session")
        session = self.workspace.open(
            name,
            grammar_text=request.get("grammar", ""),
            sorts=request.get("sorts", ()),
            force=bool(request.get("force", False)),
        )
        return {
            "opened": name,
            "rules": len(session.ipg.grammar),
            "version": session.version,
        }

    def _close(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = require(request, "session")
        return {"closed": self.workspace.close(name)}

    def _sessions(self, _request: Dict[str, Any]) -> Dict[str, Any]:
        return {"sessions": list(self.workspace.names())}

    # -- grammar modification ----------------------------------------------

    def _add_rule(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self.workspace.get(require(request, "session"))
        added = session.add_rule(
            require(request, "rule"), sorts=request.get("sorts", ())
        )
        return {"added": added, "version": session.version}

    def _delete_rule(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self.workspace.get(require(request, "session"))
        deleted = session.delete_rule(
            require(request, "rule"), sorts=request.get("sorts", ())
        )
        return {"deleted": deleted, "version": session.version}

    # -- parsing -----------------------------------------------------------

    @staticmethod
    def _engine_of(request: Dict[str, Any]) -> Optional[str]:
        """The validated ``engine`` field, or None for the session default."""
        engine = request.get("engine")
        if engine is None:
            return None
        from ..api import engines

        if engine not in engines():
            raise ProtocolError(
                f"unknown engine {engine!r} — known: {', '.join(engines())}"
            )
        return engine

    @staticmethod
    def _cache_flag(request: Dict[str, Any]) -> bool:
        """The protocol v6 ``cache`` field: ``false`` bypasses the LRU."""
        value = request.get("cache", True)
        if not isinstance(value, bool):
            raise ProtocolError(
                f"'cache' must be a boolean, got {type(value).__name__}"
            )
        return value

    @staticmethod
    def _max_trees_of(request: Dict[str, Any]) -> Optional[int]:
        """The validated v7 ``max_trees`` bound, or None for unbounded."""
        value = request.get("max_trees")
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ProtocolError(
                f"'max_trees' must be a positive integer, got {value!r}"
            )
        return value

    def _parse(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = require(request, "session")
        payload, cached = self.workspace.parse(
            name,
            require(request, "tokens"),
            engine=self._engine_of(request),
            checkpoint=bool(request.get("checkpoint", False)),
            use_cache=self._cache_flag(request),
            max_trees=self._max_trees_of(request),
        )
        return self._parse_response(name, payload, cached)

    def _edit_parse(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Incremental re-parse of a retained result after a splice edit."""
        name = require(request, "session")
        base = require(request, "base")
        edit = require(request, "edit")
        if not isinstance(base, str):
            raise ProtocolError(
                "'edit-parse' wants a result id string in the 'base' field"
            )
        if not isinstance(edit, dict):
            raise ProtocolError(
                "'edit-parse' wants an object in the 'edit' field: "
                '{"start": N, "end": N, "replacement": "tok tok ..."}'
            )
        start = edit.get("start")
        end = edit.get("end")
        if not isinstance(start, int) or not isinstance(end, int):
            raise ProtocolError(
                "'edit-parse' needs integer 'start' and 'end' in the edit"
            )
        replacement = edit.get("replacement", "")
        if not isinstance(replacement, (str, list)):
            raise ProtocolError(
                "'edit-parse' wants the edit 'replacement' as a string or "
                "a list of token names"
            )
        payload, cached = self.workspace.edit_parse(
            name,
            base,
            start,
            end,
            replacement,
            engine=self._engine_of(request),
            max_trees=self._max_trees_of(request),
        )
        return self._parse_response(name, payload, cached)

    def _parse_response(
        self, name: str, payload: Dict[str, Any], cached: bool
    ) -> Dict[str, Any]:
        obs.annotate(cache=cached)
        response = dict(payload)
        if "trees" in payload:
            # Absent for recognition-mode results (checkpointed recognize
            # and edit-parse over a recognition base).  ``tree_count``
            # counts the whole packed forest (v7 ``ambiguity``), which may
            # exceed the enumerated ``trees`` under a ``max_trees`` bound.
            response["trees"] = list(payload["trees"])
            ambiguity = payload.get("ambiguity")
            response["tree_count"] = (
                ambiguity["tree_count"]
                if ambiguity is not None
                else len(payload["trees"])
            )
        response["cache"] = cached
        response["version"] = self.workspace.get(name).version
        return response

    def _recognize(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = require(request, "session")
        payload, cached = self.workspace.recognize(
            name,
            require(request, "tokens"),
            engine=self._engine_of(request),
            checkpoint=bool(request.get("checkpoint", False)),
            use_cache=self._cache_flag(request),
        )
        obs.annotate(cache=cached)
        response = dict(payload)
        response["cache"] = cached
        response["version"] = self.workspace.get(name).version
        return response

    def _batch_parse(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = require(request, "session")
        inputs = require(request, "inputs")
        if not isinstance(inputs, (list, tuple)):
            raise ProtocolError("'batch-parse' needs a list in the 'inputs' field")
        engine = self._engine_of(request)
        max_trees = self._max_trees_of(request)
        results = []
        hits = 0
        for tokens in inputs:
            payload, cached = self.workspace.parse(
                name, tokens, engine=engine, max_trees=max_trees
            )
            hits += cached
            ambiguity = payload.get("ambiguity")
            result = {
                "tokens": tokens,
                "accepted": payload["accepted"],
                "tree_count": (
                    ambiguity["tree_count"]
                    if ambiguity is not None
                    else len(payload["trees"])
                ),
                "cache": cached,
            }
            if ambiguity is not None:
                result["ambiguity"] = ambiguity
            if "diagnostics" in payload:
                result["diagnostics"] = payload["diagnostics"]
            results.append(result)
        return {
            "results": results,
            "cache_hits": hits,
            "cache": bool(inputs) and hits == len(inputs),
            "version": self.workspace.get(name).version,
        }

    # -- persistence -------------------------------------------------------

    def _snapshot(self, request: Dict[str, Any]) -> Dict[str, Any]:
        session = self.workspace.get(require(request, "session"))
        path = request.get("path")
        if path is not None:
            payload = save_session(session, path)
            return {
                "saved": path,
                "version": session.version,
                "deterministic": payload["table"] is not None,
            }
        payload = session_to_dict(session)
        return {
            "snapshot": payload,
            "version": session.version,
            "deterministic": payload["table"] is not None,
        }

    def _restore(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("session")
        table_store = self.workspace.table_store
        if "path" in request:
            session = load_session(
                request["path"], name=name, table_store=table_store
            )
        elif "snapshot" in request:
            session = session_from_dict(
                request["snapshot"], name=name, table_store=table_store
            )
        else:
            raise ProtocolError("'restore' needs a 'path' or 'snapshot' field")
        self.workspace.adopt(session, force=bool(request.get("force", False)))
        return {
            "restored": session.name,
            "rules": len(session.ipg.grammar),
            "version": session.version,
            "fast_path": session.has_fast_path,
        }

    # -- introspection -----------------------------------------------------

    def _metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if "session" in request:
            session = self.workspace.get(request["session"])
            return {
                "version": session.version,
                "rules": len(session.ipg.grammar),
                "fast_path": session.has_fast_path,
                "summary": session.summary(),
            }
        return {
            "sessions": len(self.workspace),
            "cache": self.workspace.cache.stats.snapshot(),
            "cache_entries": len(self.workspace.cache),
            "action_cache": self.workspace.action_cache_summary(),
            "generation": self.workspace.generation_summary(),
            "requests": self.stats.snapshot(),
        }

    def _record_laziness(self) -> None:
        """Publish the §5.2 laziness measurement over the open sessions.

        Computed only at export time (never per parse); the full-table
        denominator is memoized per grammar version, so repeated scrapes
        cost one graph walk per session.
        """
        materialized = full = 0
        for name in self.workspace.names():
            try:
                session = self.workspace.get(name)
            except ServiceError:  # closed between names() and get()
                continue
            language = session.language
            materialized += states_materialized(language.generator.graph)
            full += full_table_states(language.grammar)
        obs.gauge("repro.lazy.states_materialized").set(materialized)
        obs.gauge("repro.lazy.full_table_states").set(full)
        obs.gauge("repro.lazy.table_fraction").set(
            round(materialized / full, 4) if full else 0.0
        )

    def _metrics_export(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The unified telemetry surface: Prometheus text or JSON.

        Global by design — the registry is per process.  Under a
        process-mode scheduler this handler runs in every child; the
        parent merges the JSON snapshots (see
        :mod:`repro.service.scheduler`).
        """
        fmt = request.get("format", "prometheus")
        if fmt not in EXPORT_FORMATS:
            raise ProtocolError(
                f"unknown metrics-export format {fmt!r} — known: "
                f"{', '.join(EXPORT_FORMATS)}"
            )
        self._record_laziness()
        snapshot = obs.REGISTRY.snapshot()
        response: Dict[str, Any] = {"format": fmt}
        if fmt == "prometheus":
            response["text"] = obs.render_prometheus(snapshot)
        else:
            response["metrics"] = snapshot
        spans = request.get("spans")
        if isinstance(spans, int) and not isinstance(spans, bool) and spans > 0:
            response["spans"] = obs.recent_spans(spans)
        return response

    def _health(self, _request: Dict[str, Any]) -> Dict[str, Any]:
        """Single-process liveness: reaching this handler *is* the check.

        Under a supervising scheduler the command is answered parent-side
        with per-shard detail; this handler is the answer a standalone
        dispatcher (or one process-shard child) gives, so the parent's
        ``shards`` array and a child's probe use the same verb.
        """
        return {
            "healthy": True,
            "mode": "inline",
            "sessions": len(self.workspace),
        }

    def _ready(self, _request: Dict[str, Any]) -> Dict[str, Any]:
        return {"ready": True, "mode": "inline"}

    def _info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if "session" in request:
            session = self.workspace.get(request["session"])
            return {
                "version": session.version,
                "rules": len(session.ipg.grammar),
                "grammar": session.grammar_text,
                "sorts": sorted(session.sorts),
                "fast_path": session.has_fast_path,
            }
        from ..api import engines

        return {
            "protocol": PROTOCOL_VERSION,
            "commands": list(COMMANDS),
            "engines": list(engines()),
            "sessions": list(self.workspace.names()),
        }
