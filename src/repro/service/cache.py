"""The LRU result cache of the parse service.

Keys are ``(session, grammar_version, mode, tokens, text)`` tuples.  Because the
grammar version participates in the key, a MODIFY invalidates every cached
parse *implicitly* — a stale entry can never be returned, only linger.  The
workspace additionally subscribes to each session's grammar and calls
:meth:`ResultCache.invalidate` on every notification, so stale entries are
reclaimed eagerly instead of waiting for LRU pressure.

Values are plain JSON-able payload dicts (the exact object the dispatcher
puts in a response), so a cache hit costs one ``OrderedDict`` move and no
re-serialization work.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Set, Tuple

#: Cache key: (session name, grammar version, mode[:engine], token names,
#: raw source text — None for token-list inputs, ``max_trees`` bound —
#: None when unbounded).  The text participates because rejection
#: payloads carry line/column/offset diagnostics that depend on the exact
#: spelling, not just the token names; ``max_trees`` participates because
#: differently-bounded enumerations produce different ``trees`` lists
#: (protocol v7).
CacheKey = Tuple[str, int, str, Tuple[str, ...], Optional[str], Optional[int]]


class CacheStats:
    """Hit/miss/eviction counters, reported by the ``metrics`` command."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return f"CacheStats({self.snapshot()})"


class ResultCache:
    """A bounded LRU mapping cache keys to response payloads.

    Thread-safe: under the sharded scheduler, sessions on different worker
    threads share one cache, and cross-session operations (``close``,
    ``metrics``) touch it from yet another thread.  Every operation that
    reads or mutates the entry map runs under one re-entrant lock — the
    critical sections are dict operations, far cheaper than the parses
    being cached, so a single lock is not a throughput concern.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        #: session name -> its live keys, so a grammar edit invalidates in
        #: O(that session's entries) instead of scanning the whole cache.
        self._by_session: Dict[str, Set[CacheKey]] = {}
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def get(self, key: CacheKey) -> Tuple[bool, Optional[Any]]:
        """``(found, value)``; a hit refreshes the entry's recency."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return True, self._entries[key]
            self.stats.misses += 1
            return False, None

    def put(self, key: CacheKey, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._by_session.setdefault(key[0], set()).add(key)
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._discard_index(evicted)
                self.stats.evictions += 1

    def invalidate(self, session: str) -> int:
        """Drop every entry belonging to ``session``; returns the count."""
        with self._lock:
            stale = self._by_session.pop(session, None)
            if not stale:
                return 0
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._by_session.clear()
            self.stats.invalidations += count
            return count

    def _discard_index(self, key: CacheKey) -> None:
        # Always called with the lock held (put's eviction sweep).
        keys = self._by_session.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_session[key[0]]

    def check_consistency(self) -> None:
        """Assert the session index exactly covers the entry map.

        A torn update (the bug class the lock exists to prevent) leaves
        the two structures disagreeing; the concurrency regression tests
        call this after hammering the cache from many threads.
        """
        with self._lock:
            indexed = {key for keys in self._by_session.values() for key in keys}
            if indexed != set(self._entries):
                raise AssertionError(
                    f"cache index out of sync: {len(indexed)} indexed keys "
                    f"vs {len(self._entries)} entries"
                )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache({len(self._entries)}/{self.capacity} entries, "
            f"hit_rate={self.stats.hit_rate:.2%})"
        )
