"""The asyncio TCP/UNIX-socket front end of the parse service.

Same wire format as the stdio loop — newline-delimited JSON, protocol
v2 — served concurrently: the event loop owns all sockets, every decoded
request is submitted to a :class:`~repro.service.scheduler.Scheduler`
(which shards sessions across worker threads or processes), and a
per-connection writer task emits responses **in request order**, so a
client may pipeline any number of requests on one connection and still
correlate responses by position, exactly as over stdin.

Flow control is layered: the scheduler's bounded shard queues answer
``overloaded`` errors when a shard falls behind (the client sees the
error instead of unbounded buffering), and the writer applies normal
asyncio transport backpressure (``await drain()``) toward slow readers.

Shutdown is graceful by default: SIGTERM/SIGINT stop the listener, let
every connection finish writing the responses for requests it has already
read, drain the scheduler's queues, and only then exit — a supervisor's
``kill -TERM`` loses no accepted work.  :class:`BackgroundServer` runs
the same server on a daemon thread for tests and embedding.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import stat
import sys
import threading
from typing import Any, Dict, List, Optional, Set

from . import faults
from .protocol import encode
from .scheduler import Scheduler
from .server import decode_line

__all__ = ["ParseServer", "BackgroundServer", "run_server", "write_ready_file"]

#: Per-line read limit.  asyncio's default (64 KiB) is smaller than a
#: legitimate ``restore`` request embedding a snapshot payload (which
#: carries a fully expanded parse table); the stdio loop has no such
#: bound, and the socket transport must accept the same protocol.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Per-connection in-flight response bound.  A client that pipelines
#: without reading parks the writer in ``drain()``; without this bound
#: the reader would keep buffering futures (and instant ``overloaded``
#: answers) without limit, so the shard queues alone would not bound
#: server memory.  At the limit the reader stops reading, which pushes
#: the backpressure onto the client's TCP window.
MAX_PIPELINED = 512


class ParseServer:
    """One listening socket in front of a scheduler.

    Exactly one of ``(host, port)`` or ``unix_path`` selects the address
    family.  ``start`` binds, :meth:`shutdown` drains; the server object
    is single-use.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        drain_timeout: float = 30.0,
        max_line_bytes: Optional[int] = None,
    ) -> None:
        if (unix_path is None) == (host is None or port is None):
            raise ValueError("pass either host+port or unix_path")
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.drain_timeout = drain_timeout
        self.max_line_bytes = (
            max_line_bytes if max_line_bytes is not None else MAX_LINE_BYTES
        )
        if self.max_line_bytes < 1:
            raise ValueError("max_line_bytes must be positive")
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set["_Connection"] = set()
        self._draining = False
        self.requests_served = 0
        self.connections_served = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self.unix_path is not None:
            self._remove_stale_socket()
            self._server = await asyncio.start_unix_server(
                self._on_connection,
                path=self.unix_path,
                limit=self.max_line_bytes,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.host,
                port=self.port,
                limit=self.max_line_bytes,
            )
            # Port 0 means "pick one": report what the OS chose.
            sockets = self._server.sockets or ()
            for listener in sockets:
                if listener.family in (socket.AF_INET, socket.AF_INET6):
                    self.port = listener.getsockname()[1]
                    break

    def _remove_stale_socket(self) -> None:
        """Unlink a leftover socket file so supervisor restarts can bind.

        Only socket files are removed — a regular file at the path is
        somebody else's data and stays put (the bind then fails loudly).
        """
        try:
            if stat.S_ISSOCK(os.stat(self.unix_path).st_mode):
                os.unlink(self.unix_path)
        except FileNotFoundError:
            pass

    @property
    def address(self) -> str:
        if self.unix_path is not None:
            return f"unix:{self.unix_path}"
        return f"{self.host}:{self.port}"

    async def shutdown(self) -> None:
        """Stop accepting, flush every connection, drain the scheduler."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Stop the readers; writers finish everything already submitted.
        for connection in list(self._connections):
            connection.stop_reading()
        if self._connections:
            waiters = [
                asyncio.ensure_future(c.finished())
                for c in list(self._connections)
            ]
            _done, stuck = await asyncio.wait(
                waiters, timeout=self.drain_timeout
            )
            if stuck:
                # A peer that stopped reading can park its writer in
                # drain() forever; after the grace period the drain
                # contract (exit, don't hang the supervisor) wins.
                for waiter in stuck:
                    waiter.cancel()
                for connection in list(self._connections):
                    connection.abort()
        # Shard queues are already empty of our requests (every submitted
        # future resolved before the writers exited), but close() also
        # stops intake and joins workers/children.
        await asyncio.get_running_loop().run_in_executor(
            None, self.scheduler.close
        )
        if self.unix_path is not None:
            self._remove_stale_socket()

    async def serve_until_stopped(
        self, stop: Optional[asyncio.Event] = None
    ) -> None:
        """Install signal handlers, serve until stopped, then drain."""
        if stop is None:
            stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        installed: List[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loop: rely on KeyboardInterrupt
        try:
            await stop.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.shutdown()

    # -- connections -------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        connection = _Connection(self, reader, writer)
        self._connections.add(connection)
        self.connections_served += 1
        try:
            await connection.run()
        finally:
            self._connections.discard(connection)


class _Connection:
    """One client: a reader coroutine feeding a FIFO writer coroutine."""

    def __init__(
        self,
        server: ParseServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.server = server
        self.reader = reader
        self.writer = writer
        #: futures in request order; ``None`` is the end-of-stream sentinel
        self.pending: "asyncio.Queue[Optional[asyncio.Future]]" = asyncio.Queue()
        #: in-flight bound: the reader takes a slot per request, the
        #: writer gives it back once the response left (or was dropped)
        self._slots = asyncio.Semaphore(MAX_PIPELINED)
        self._reader_task: Optional[asyncio.Task] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._done = asyncio.Event()

    async def run(self) -> None:
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._writer_task = asyncio.ensure_future(self._write_loop())
        try:
            await asyncio.gather(self._reader_task, self._writer_task)
        except asyncio.CancelledError:  # pragma: no cover — loop teardown
            pass
        finally:
            self._done.set()

    def stop_reading(self) -> None:
        """Drain trigger: stop accepting new requests from this client."""
        if self._reader_task is not None:
            self._reader_task.cancel()

    def abort(self) -> None:
        """Hard stop: a writer stuck on a non-reading peer past the drain
        grace period is cancelled and the transport torn down."""
        if self._writer_task is not None:
            self._writer_task.cancel()
        try:
            self.writer.transport.abort()
        except Exception:  # pragma: no cover — already-dead transport
            pass
        self._done.set()

    async def finished(self) -> None:
        await self._done.wait()

    async def _enqueue(self, make_future) -> None:
        """Take a pipeline slot, then materialize and queue the future.

        The factory runs strictly after the slot is acquired: the slot
        wait is the read loop's only cancellation point per request, so a
        drain can never cancel *between* submitting work to the scheduler
        and queueing its response — accepted work always gets answered.
        """
        await self._slots.acquire()
        self.pending.put_nowait(make_future())

    @staticmethod
    def _failed(
        loop: asyncio.AbstractEventLoop, message: str
    ) -> "asyncio.Future":
        future: asyncio.Future = loop.create_future()
        future.set_result({"error": message, "time": 0.0})
        return future

    def _submit(self, request) -> "asyncio.Future":
        self.server.requests_served += 1
        return asyncio.ensure_future(
            asyncio.wrap_future(self.server.scheduler.submit(request))
        )

    async def _read_loop(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    line = await self.reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                except ValueError:
                    # A line beyond even the configured limit.  Line
                    # boundaries cannot be resynchronized after an
                    # overrun, so answer the error and stop reading from
                    # this client.
                    message = (
                        f"request line exceeds "
                        f"{self.server.max_line_bytes} bytes"
                    )
                    await self._enqueue(
                        lambda: self._failed(loop, message)
                    )
                    break
                if not line:
                    break  # client closed its write side
                requests, error = decode_line(line.decode("utf-8", "replace"))
                if error is not None:
                    await self._enqueue(
                        lambda error=error: self._failed(loop, error)
                    )
                    continue
                for request in requests:
                    if faults.fire("drop-connection"):
                        # Chaos: the client vanishes right after its
                        # request was decoded — the abort path every
                        # mid-pipeline disconnect takes.
                        self.writer.transport.abort()
                        return
                    await self._enqueue(
                        lambda request=request: self._submit(request)
                    )
        except asyncio.CancelledError:
            pass  # shutdown: keep everything already queued
        finally:
            # put_nowait: the queue is unbounded, and an await here could
            # swallow a second cancellation delivered during teardown.
            self.pending.put_nowait(None)

    async def _write_loop(self) -> None:
        try:
            while True:
                future = await self.pending.get()
                if future is None:
                    break
                response = await future
                self._slots.release()
                data = (encode(response) + "\n").encode("utf-8")
                if faults.fire("corrupt-frame"):
                    # Chaos: a torn write — half a frame, no newline.
                    # The *client* must cope (and the server must not
                    # crash); subsequent frames glue onto the fragment.
                    data = data[: max(1, len(data) // 2)]
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # Client went away mid-write: keep consuming futures so the
            # scheduler's results are collected, but write nothing.
            while True:
                future = await self.pending.get()
                if future is None:
                    break
                future.cancel()
                self._slots.release()
        finally:
            try:
                self.writer.close()
            except Exception:  # pragma: no cover — already-dead transport
                pass


# -- entry points ----------------------------------------------------------


def write_ready_file(path: str, address: str) -> None:
    """Publish ``address`` at ``path`` atomically.

    Watchers poll for the file's *existence* and connect the moment it
    appears, so the contract is: if the file exists, the socket is
    already listening and the content is the complete address.  A plain
    ``open(path, "w")`` breaks that — the file exists (empty, then
    partial) before the write lands, and a fast watcher reads a truncated
    address.  Writing to a temp file and ``os.replace``-ing it in makes
    the publish a single atomic rename.
    """
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w") as handle:
        handle.write(address + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def _announce(server: ParseServer, ready_file: Optional[str]) -> None:
    print(
        f"repro service listening on {server.address} "
        f"({server.scheduler!r})",
        file=sys.stderr,
        flush=True,
    )
    if ready_file:
        # Only reached after ParseServer.start() returned, i.e. after the
        # listening socket is bound — and published atomically, so the
        # file's existence alone certifies a connectable address.
        write_ready_file(ready_file, server.address)


def run_server(
    scheduler: Scheduler,
    host: Optional[str] = None,
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    ready_file: Optional[str] = None,
) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, return 0."""

    async def main() -> Dict[str, Any]:
        server = ParseServer(
            scheduler, host=host, port=port, unix_path=unix_path
        )
        await server.start()
        _announce(server, ready_file)
        await server.serve_until_stopped()
        return {
            "requests": server.requests_served,
            "connections": server.connections_served,
        }

    try:
        summary = asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover — non-Unix fallback
        scheduler.close()
        summary = {"requests": -1, "connections": -1}
    print(
        f"repro service drained cleanly: {summary['requests']} requests "
        f"over {summary['connections']} connections",
        file=sys.stderr,
        flush=True,
    )
    return 0


class BackgroundServer:
    """A ParseServer on a daemon thread — for tests and embedding.

    ::

        with BackgroundServer(Scheduler(workers=2)) as server:
            sock = socket.create_connection(("127.0.0.1", server.port))
            ...

    ``stop()`` (or leaving the ``with`` block) performs the same graceful
    drain as SIGTERM on the CLI server.
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        host: str = "127.0.0.1",
        unix_path: Optional[str] = None,
        max_line_bytes: Optional[int] = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.server = ParseServer(
            self.scheduler,
            host=None if unix_path else host,
            port=None if unix_path else 0,
            unix_path=unix_path,
            max_line_bytes=max_line_bytes,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )
        self._startup_error: Optional[BaseException] = None
        #: Unhandled event-loop exceptions (task died without anyone
        #: awaiting it).  Always empty in a healthy server — the
        #: malformed-input tests assert exactly that.
        self.loop_errors: List[str] = []

    def _on_loop_exception(
        self, loop: asyncio.AbstractEventLoop, context: Dict[str, Any]
    ) -> None:
        error = context.get("exception")
        self.loop_errors.append(
            f"{type(error).__name__}: {error}"
            if error is not None
            else str(context.get("message", "unknown loop error"))
        )
        loop.default_exception_handler(context)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        loop.set_exception_handler(self._on_loop_exception)
        self._loop = loop
        self._stop = asyncio.Event()

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as error:
                # Recorded for start() to re-raise on the caller's thread;
                # raising here would only trip pytest's unhandled-thread-
                # exception hook.
                self._startup_error = error
                self._ready.set()
                return
            self._ready.set()
            assert self._stop is not None
            await self._stop.wait()
            await self.server.shutdown()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()

    def start(self, timeout: float = 30.0) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout=timeout):
            # The server thread never signalled readiness — a wedged bind
            # or an event loop that could not start.  Returning anyway
            # would hand the caller a server object with no address whose
            # first connect fails with something far less diagnosable.
            raise RuntimeError(
                f"server failed to start listening within {timeout:g}s "
                f"(thread {'alive' if self._thread.is_alive() else 'dead'}, "
                f"scheduler: {self.scheduler!r})"
            )
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    @property
    def host(self) -> Optional[str]:
        return self.server.host

    @property
    def port(self) -> Optional[int]:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop is not None:
            stop_event = self._stop

            def trigger() -> None:
                stop_event.set()

            try:
                self._loop.call_soon_threadsafe(trigger)
            except RuntimeError:  # pragma: no cover — loop already closed
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
