"""The JSON request/response protocol of the parse service.

Requests are JSON objects with a ``cmd`` field; responses are JSON objects
that always carry a ``time`` field (seconds spent serving the request) and,
for parse-shaped commands, a ``cache`` field — the shape of the Korp corpus
backend's command/parameter API, which this service deliberately mirrors.

The wire format is line-delimited JSON, but the decoder is tolerant: a
single physical line may carry several concatenated objects (optionally
separated by literal ``\\n`` escape sequences, as produced by shells whose
``echo`` does not interpret backslash escapes), and :func:`iter_requests`
yields each object in order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, Optional

#: Version of the request/response protocol, reported by ``info``.
#: Version 2: parse/recognize accept an optional ``engine`` field
#: (validated against the :mod:`repro.api` registry), rejected parses
#: carry a structured ``diagnostics`` object, and parse-shaped responses
#: name the ``engine`` that served them.
#: Version 3: ``parse`` accepts ``"checkpoint": true`` (the response
#: gains a ``result`` id naming the retained incremental checkpoint) and
#: the ``edit-parse`` command re-parses a previous result after a splice
#: edit, reusing its checkpoints (response carries ``result`` and
#: ``reuse``).
#: Version 4 (v3-compatible): the ``metrics-export`` command emits the
#: unified :mod:`repro.obs` registry as Prometheus text
#: (``"format": "prometheus"``, the default) or JSON
#: (``"format": "json"``, optionally with ``"spans": N`` recent span
#: trees), and any request may set ``"trace": true`` to receive its
#: span tree in a ``trace`` response field alongside the Korp-style
#: ``time``.
#: Version 5 (v4-compatible): any request may set ``"deadline_ms": N``
#: (a per-request wall-clock budget; exceeding it answers
#: ``{"error": "deadline-exceeded", "deadline_ms": N,
#: "tokens_consumed": M}``), the ``health`` and ``ready`` commands
#: report per-shard liveness/supervision state, and a supervised
#: scheduler answers requests to a crashed or tripped shard with the
#: retryable ``{"error": "shard-restarting", "retry_after_ms": N}`` and
#: terminal ``{"error": "shard-degraded"}`` shapes.
#: Version 6 (v5-compatible): the corpus service.  ``parse``/``recognize``
#: accept ``"cache": false`` (bypass the shared result cache — Korp's
#: ``cache`` parameter), and the ``corpus-*`` commands (``corpus-create``,
#: ``corpus-ingest``, ``corpus-parse``, ``corpus-status``,
#: ``corpus-query``, ``corpus-info``) manage named corpora under a
#: persistent ``--corpus-root``: content-hashed bulk ingest, resumable
#: batch parsing across shards, and paginated queries over the stored
#: results.
#: Version 7 (v6-compatible): shared-forest results.  ``parse`` (and
#: ``edit-parse``/``batch-parse``) accept ``"max_trees": N`` bounding how
#: many derivations are enumerated into the ``trees`` list; accepted
#: tree-building responses carry an ``ambiguity`` object
#: ``{"tree_count": T, "enumerated": E, "truncated": bool}`` counting the
#: whole packed forest even when enumeration is capped.  Cache entries
#: are keyed by ``max_trees``, so differently-bounded requests never
#: alias.  ``parse`` against a recognize-only engine degrades to
#: recognition (``"trees_built": false``) instead of erroring.
PROTOCOL_VERSION = 7

#: Commands the dispatcher understands (documented in README.md).
COMMANDS = (
    "open",
    "close",
    "add-rule",
    "delete-rule",
    "parse",
    "edit-parse",
    "recognize",
    "batch-parse",
    "snapshot",
    "restore",
    "metrics",
    "metrics-export",
    "info",
    "sessions",
    "health",
    "ready",
    "corpus-create",
    "corpus-ingest",
    "corpus-parse",
    "corpus-status",
    "corpus-query",
    "corpus-info",
)


class ServiceError(Exception):
    """Base class for errors reported as ``{"error": ...}`` responses."""


class ProtocolError(ServiceError):
    """Malformed request: bad JSON, missing field, unknown command."""


class SessionNotFound(ServiceError):
    """The request names a session the workspace does not hold."""


def require(request: Dict[str, Any], field: str) -> Any:
    """The value of ``field``, or a :class:`ProtocolError` naming it."""
    if field not in request:
        cmd = request.get("cmd", "?")
        raise ProtocolError(f"{cmd!r} request is missing the {field!r} field")
    return request[field]


def encode(response: Dict[str, Any]) -> str:
    """One response as compact, key-sorted JSON (no trailing newline)."""
    return json.dumps(response, separators=(",", ":"), sort_keys=True)


def iter_requests(text: str) -> Iterator[Dict[str, Any]]:
    """Yield every JSON object embedded in ``text``.

    Handles the strict case (one object) and the concatenated case
    (several objects on one line, separated by whitespace or by the
    two-character sequences ``\\n`` / ``\\r`` that an escape-unaware
    ``echo`` leaves between objects).
    """
    decoder = json.JSONDecoder()
    index, length = 0, len(text)
    while index < length:
        while index < length:
            if text[index].isspace():
                index += 1
            elif text[index] == "\\" and index + 1 < length and text[index + 1] in "nrt":
                index += 2
            else:
                break
        if index >= length:
            break
        try:
            payload, index = decoder.raw_decode(text, index)
        except json.JSONDecodeError as error:
            raise ProtocolError(f"bad JSON request: {error}") from error
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"requests must be JSON objects, got {type(payload).__name__}"
            )
        yield payload


def parse_request(line: str) -> Optional[Dict[str, Any]]:
    """The single request on ``line`` (None for blank/comment lines)."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    requests = list(iter_requests(stripped))
    if len(requests) != 1:
        raise ProtocolError(f"expected one request per line, got {len(requests)}")
    return requests[0]
