"""Per-shard mutation journals: the replay log behind shard recovery.

A process shard's sessions live in its child's memory; when the child
dies they die with it.  The supervisor's contract is that **acknowledged
state survives**: any mutation the client saw a success response for
must exist again after the respawn, at the exact same grammar version.
The journal is how — the shard records every acknowledged mutating
request (``open``/``add-rule``/``delete-rule``/``restore``) in arrival
order, and replaying that sequence into a fresh child reproduces the
sessions deterministically (grammar versions advance once per mutation,
and :func:`~repro.service.snapshot.session_from_dict` pins the version
on restore, so replay reproduces versions exactly, not just rule sets).

Unacknowledged mutations are deliberately *absent*: a request that was
in flight when the child died is answered ``shard-restarting`` and
retried by the client, so recording it too would apply it twice.

Compaction keeps replay O(sessions), not O(history): once a session
accumulates enough entries the shard asks the live child for a
``snapshot`` and the journal collapses that session's run into a single
forced ``restore`` — the same protocol command, so replay stays "feed
the log back through the service".
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

__all__ = ["MutationJournal"]

Request = Dict[str, Any]

#: Journal entries replayed verbatim never need these transport-level
#: fields; stripping them keeps replay quiet and deterministic.
_STRIP_FIELDS = ("trace", "deadline_ms")


class MutationJournal:
    """An ordered, compactable log of acknowledged session mutations.

    Thread-safe: the shard worker records and compacts, while health
    endpoints read counts from other threads.
    """

    def __init__(self, compact_threshold: int = 32) -> None:
        if compact_threshold < 2:
            raise ValueError(
                f"compact_threshold must be at least 2, got {compact_threshold}"
            )
        self.compact_threshold = compact_threshold
        self._lock = threading.Lock()
        #: (session, request-copy) in arrival order
        self._entries: List[Any] = []
        self._per_session: Dict[str, int] = {}
        self.recorded = 0
        self.compactions = 0

    # -- recording ---------------------------------------------------------

    @staticmethod
    def _session_of(request: Request) -> Optional[str]:
        session = request.get("session")
        if isinstance(session, str):
            return session
        if request.get("cmd") == "restore":
            payload = request.get("snapshot")
            if isinstance(payload, dict) and isinstance(
                payload.get("session"), str
            ):
                return payload["session"]
        return None

    def record(self, request: Any, response: Any) -> bool:
        """Journal ``request`` if it is an acknowledged mutation.

        Returns True when an entry was added (or the log shrank, for
        ``close``).  Error responses are never journaled — the client
        was told the mutation did not happen, so replay must agree.
        """
        if not isinstance(request, dict) or not isinstance(response, dict):
            return False
        if "error" in response:
            return False
        cmd = request.get("cmd")
        session = self._session_of(request)
        if session is None:
            return False
        if cmd == "close":
            # A closed session needs no replay; drop its whole history so
            # recovery does not resurrect it.
            with self._lock:
                self._drop_session(session)
            return True
        if cmd not in ("open", "add-rule", "delete-rule", "restore"):
            return False
        entry = {
            key: value
            for key, value in request.items()
            if key not in _STRIP_FIELDS
        }
        with self._lock:
            if cmd in ("open", "restore"):
                # Both replace the session wholesale — earlier entries
                # can no longer affect the replayed state.
                self._drop_session(session)
            self._entries.append((session, entry))
            self._per_session[session] = self._per_session.get(session, 0) + 1
            self.recorded += 1
        return True

    def _drop_session(self, session: str) -> None:
        if self._per_session.pop(session, 0):
            self._entries = [
                item for item in self._entries if item[0] != session
            ]

    # -- compaction --------------------------------------------------------

    def needs_compaction(self) -> Optional[str]:
        """A session whose run exceeds the threshold, or None."""
        with self._lock:
            for session, count in self._per_session.items():
                if count >= self.compact_threshold:
                    return session
        return None

    def compact(self, session: str, snapshot_payload: Dict[str, Any]) -> None:
        """Collapse ``session``'s entries into one forced ``restore``.

        ``snapshot_payload`` is the live child's answer to ``snapshot`` —
        it already carries the grammar version, so the collapsed entry
        reproduces exactly the state the long run would have.
        """
        entry = {
            "cmd": "restore",
            "session": session,
            "snapshot": snapshot_payload,
            "force": True,
        }
        with self._lock:
            self._drop_session(session)
            self._entries.append((session, entry))
            self._per_session[session] = 1
            self.compactions += 1

    # -- replay ------------------------------------------------------------

    def replay_requests(self) -> List[Request]:
        """The ordered commands that rebuild every journaled session."""
        with self._lock:
            return [dict(entry) for _session, entry in self._entries]

    # -- introspection -----------------------------------------------------

    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    def session_count(self) -> int:
        with self._lock:
            return len(self._per_session)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "sessions": len(self._per_session),
                "recorded": self.recorded,
                "compactions": self.compactions,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"MutationJournal({stats['entries']} entries, "
            f"{stats['sessions']} sessions)"
        )
