"""Session persistence: snapshot to JSON, restore for a warm restart.

A snapshot records what cannot be recomputed instantly — the grammar text
and sort declarations — plus one thing that *can* but is worth shipping:
when the grammar's SLR(1) table is conflict-free, the fully expanded table
rides along (via :mod:`repro.lr.serialize`) and the restored session parses
through the deterministic LR-PARSE fast path until its first MODIFY.

Graphs of item sets are still never serialized (see ``lr/serialize.py``):
the lazy generator rebuilds them by need, which is exactly what it is fast
at.  The table is the one representation whose reconstruction requires the
full ``expand_all`` the service wants to avoid at restart time.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..lr.serialize import (
    grammar_from_dict,
    grammar_to_dict,
    load_payload,
    save_payload,
    table_from_dict,
    table_to_dict,
)
from .protocol import ServiceError
from .workspace import ParseSession

#: Format tag for serialized sessions.
SESSION_FORMAT_VERSION = 1


def session_to_dict(session: ParseSession) -> Dict[str, Any]:
    """A JSON-able snapshot of ``session`` (grammar + optional table)."""
    grammar = session.ipg.grammar
    payload: Dict[str, Any] = {
        "format": SESSION_FORMAT_VERSION,
        "kind": "ipg-session",
        "session": session.name,
        "version": session.version,
        "grammar": grammar_to_dict(grammar, tuple(session.sorts)),
        "table": None,
    }
    table = session.deterministic_table()
    if table is not None:
        payload["table"] = table_to_dict(table)
    return payload


def session_from_dict(
    payload: Dict[str, Any],
    name: Optional[str] = None,
    table_store: Optional[Any] = None,
) -> ParseSession:
    """Rebuild a session from a snapshot payload.

    ``name`` overrides the recorded session name (restoring somebody
    else's snapshot under a fresh name is how sessions are cloned).  With
    a ``table_store`` the restored session warm-starts its lazy control
    plane from the persistent cache on top of whatever SLR fast path the
    snapshot itself carries.
    """
    if payload.get("format") != SESSION_FORMAT_VERSION:
        raise ServiceError(
            f"unsupported session snapshot format {payload.get('format')!r}"
        )
    if payload.get("kind") != "ipg-session":
        raise ServiceError(f"not a session snapshot: kind={payload.get('kind')!r}")
    grammar_payload = payload.get("grammar") or {}
    grammar = grammar_from_dict(grammar_payload)
    # Continue the saved session's version counter so protocol clients
    # keying on the advertised version never see it move backwards.
    grammar.advance_revision(int(payload.get("version", 0)))
    session = ParseSession(
        name or payload.get("session", "restored"),
        sorts=grammar_payload.get("sorts", ()),
        grammar=grammar,
        table_store=table_store,
    )
    table_payload = payload.get("table")
    if table_payload is not None:
        session.attach_fast_path(table_from_dict(table_payload))
    return session


def save_session(session: ParseSession, path: str) -> Dict[str, Any]:
    """Snapshot ``session`` to ``path``; returns the written payload."""
    payload = session_to_dict(session)
    save_payload(payload, path)
    return payload


def load_session(
    path: str,
    name: Optional[str] = None,
    table_store: Optional[Any] = None,
) -> ParseSession:
    return session_from_dict(
        load_payload(path), name=name, table_store=table_store
    )
