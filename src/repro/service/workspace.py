"""Named IPG sessions and the registry that owns them.

A :class:`ParseSession` wraps one :class:`~repro.core.ipg.IPG` with the
state an interactive user accumulates — declared sorts, the monotone
grammar version, and (after a snapshot restore of a conflict-free grammar)
a deterministic-table fast path.  A :class:`Workspace` is the paper's
"many users" made concrete: a dictionary of named sessions sharing one
LRU result cache, wired so that every MODIFY (observed through the
existing :meth:`Grammar.subscribe` hook) evicts that session's cached
results and drops its fast path.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..api.language import LexedInput
from ..core.ipg import IPG, TokenInput
from ..grammar.builders import grammar_from_text
from ..grammar.grammar import Grammar, GrammarError
from ..grammar.rules import Rule
from ..lr.slr import slr_table
from ..lr.table import ParseTable, TableControl
from ..runtime.errors import AmbiguousInputError, ParseError
from ..runtime.forest import bracketed
from ..runtime.lr_parse import SimpleLRParser
from .cache import CacheKey, ResultCache
from .protocol import ServiceError, SessionNotFound

#: ``engine`` value payloads report when the deterministic SLR fast path
#: (snapshot restore of a conflict-free grammar) answered the request.
FAST_PATH_ENGINE = "slr-fast-path"

#: Callback invoked (with the session) after every grammar modification.
ModifyListener = Callable[["ParseSession"], None]

#: Checkpointed results retained per session for ``edit-parse``.  Each
#: entry pins an :class:`~repro.runtime.incremental.IncrementalOutcome`
#: (stack frontiers + forest), so the bound is a memory bound; sessions
#: are shard-pinned, so the store needs no lock.
CHECKPOINT_CAPACITY = 16


class ParseSession:
    """One named grammar-definition session: an IPG plus user state."""

    def __init__(
        self,
        name: str,
        grammar_text: str = "",
        sorts: Iterable[str] = (),
        grammar: Optional[Grammar] = None,
        table_store: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.sorts = set(sorts)
        if grammar is None:
            grammar = (
                grammar_from_text(grammar_text, sorts=self.sorts)
                if grammar_text.strip()
                else Grammar()
            )
        #: the shared persistent table store (warm starts), or None
        self.table_store = table_store
        self.ipg = IPG(grammar, table_store=table_store)
        #: the unified front door (tokenizer + engine registry); the IPG
        #: facade and this Language share one generator and control plane
        self.language = self.ipg.language
        self.fast_table: Optional[ParseTable] = None
        self._fast_parser: Optional[SimpleLRParser] = None
        self._table_cache: Optional[Tuple[int, Optional[ParseTable]]] = None
        self._listeners: List[ModifyListener] = []
        #: result id -> (checkpoint-carrying ParseOutcome, response
        #: payload); the store behind ``parse {"checkpoint": true}`` and
        #: ``edit-parse`` — session-local, so shards serve edits without
        #: any cross-shard state.
        self.results: "OrderedDict[str, Tuple[Any, Dict[str, Any]]]" = (
            OrderedDict()
        )
        #: Checkpoints dropped by LRU pressure in :meth:`_retain` —
        #: surfaced as ``repro.checkpoints.evictions`` so clients whose
        #: ``edit-parse`` bases keep disappearing can see why.
        self.checkpoint_evictions = 0
        self._unsubscribe = self.ipg.grammar.subscribe(self._on_modify)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Detach from the grammar's observer list."""
        self._unsubscribe()
        self._listeners.clear()
        self.language.close()

    def on_modify(self, listener: ModifyListener) -> None:
        self._listeners.append(listener)

    def _on_modify(self, _grammar: Grammar, _rule: Rule, _added: bool) -> None:
        # Any MODIFY outdates the deterministic fast path, the retained
        # incremental checkpoints, and (via the registered listeners)
        # every cached result for this session.
        self.fast_table = None
        self._fast_parser = None
        self.results.clear()
        for listener in list(self._listeners):
            listener(self)

    # -- grammar state -----------------------------------------------------

    @property
    def version(self) -> int:
        return self.ipg.version

    @property
    def grammar_text(self) -> str:
        return self.ipg.grammar.pretty()

    def declare_sorts(self, names: Iterable[str]) -> None:
        self.sorts.update(names)

    def add_rule(self, rule: str, sorts: Iterable[str] = ()) -> bool:
        self.declare_sorts(sorts)
        return self.ipg.add_rule(rule, sorts=self.sorts)

    def delete_rule(self, rule: str, sorts: Iterable[str] = ()) -> bool:
        self.declare_sorts(sorts)
        return self.ipg.delete_rule(rule, sorts=self.sorts)

    # -- the deterministic fast path ---------------------------------------

    def attach_fast_path(self, table: ParseTable) -> None:
        """Parse through ``table`` until the next grammar modification.

        Only snapshots of conflict-free grammars carry a table; the simple
        LR parser over it is the service's analogue of the paper's Yacc
        deployment mode ("about twice as fast" a parser, section 7).
        A conflicted table is rejected outright — the deterministic parser
        would make ``parse`` and ``recognize`` disagree on conflicted
        states (e.g. from a corrupted snapshot file).
        """
        if not table.is_deterministic:
            raise ServiceError(
                f"cannot attach a fast path for session {self.name!r}: "
                f"the table has {len(table.conflicts())} conflict(s)"
            )
        if frozenset(table.rule_numbers) != self.ipg.grammar.rules:
            raise ServiceError(
                f"cannot attach a fast path for session {self.name!r}: "
                f"the table was generated from a different grammar"
            )
        self.fast_table = table
        self._fast_parser = SimpleLRParser(TableControl(table), self.ipg.grammar)

    def deterministic_table(self) -> Optional[ParseTable]:
        """The conflict-free SLR(1) table for the current grammar, or None.

        Memoized per grammar version: building the table costs a full
        ``expand_all``, and periodic snapshotting (autosave) would
        otherwise pay it on every request — for conflicted grammars
        without ever getting a table back.
        """
        if self.fast_table is not None:
            return self.fast_table
        if self._table_cache is not None and self._table_cache[0] == self.version:
            return self._table_cache[1]
        candidate: Optional[ParseTable] = None
        if self.ipg.grammar.start_rules():
            # Work on a copy: table construction must not leak observers
            # into (or expansion work onto) the live session's grammar.
            try:
                table = slr_table(self.ipg.grammar.copy())
            except GrammarError:
                table = None
            if table is not None and table.is_deterministic:
                candidate = table
        self._table_cache = (self.version, candidate)
        return candidate

    @property
    def has_fast_path(self) -> bool:
        return self._fast_parser is not None

    # -- parsing (JSON-able payloads) --------------------------------------

    def parse_payload(
        self,
        tokens: TokenInput,
        engine: Optional[str] = None,
        max_trees: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The cacheable ``{"accepted", "trees", "engine", ...}`` value.

        Built from a :class:`~repro.api.ParseOutcome`: rejected inputs
        carry a ``diagnostics`` object (token index, line/column when the
        input was raw text, and the expected terminal set).  Accepted
        tree-building payloads carry the protocol v7 ``ambiguity`` object;
        ``max_trees`` bounds how many derivations the ``trees`` list
        enumerates (the forest is counted in full regardless).
        """
        return self._parse_lexed(self.language.lex(tokens), engine, max_trees)

    def _parse_lexed(
        self,
        lexed: "LexedInput",
        engine: Optional[str] = None,
        max_trees: Optional[int] = None,
    ) -> Dict[str, Any]:
        if engine is None and self._fast_parser is not None:
            try:
                result = self._fast_parser.parse(list(lexed.terminals))
                tree = result.tree
                return {
                    "accepted": True,
                    "trees": [bracketed(tree)] if tree is not None else [],
                    "engine": FAST_PATH_ENGINE,
                    # A deterministic table admits exactly one derivation.
                    "ambiguity": {
                        "tree_count": 1,
                        "enumerated": 1 if tree is not None else 0,
                        "truncated": False,
                    },
                }
            except AmbiguousInputError:
                pass  # defensive: fall through to the forking parser
            except ParseError:
                pass  # rejected: the outcome path derives the diagnostics
        if not self.language.engine(engine).supports_trees:
            # Recognize-only engines degrade to recognition instead of a
            # CapabilityError: the service keeps its v6 behaviour of
            # answering with ``"trees_built": false``.
            outcome = self.language.parse_lexed(
                lexed, engine=engine, build_trees=False
            )
            payload = outcome.to_payload()
        else:
            payload = self.language.parse_lexed(
                lexed, engine=engine
            ).to_payload(max_trees=max_trees)
        self.persist_tables()
        return payload

    def recognize_payload(
        self, tokens: TokenInput, engine: Optional[str] = None
    ) -> Dict[str, Any]:
        return self._recognize_lexed(self.language.lex(tokens), engine)

    def _recognize_lexed(
        self, lexed: "LexedInput", engine: Optional[str] = None
    ) -> Dict[str, Any]:
        if engine is None and self._fast_parser is not None:
            if self._fast_parser.recognize(list(lexed.terminals)):
                return {"accepted": True, "engine": FAST_PATH_ENGINE}
            # Rejected: re-derive through the outcome path so the payload
            # carries diagnostics (failure is the cold path by design).
        outcome = self.language.parse_lexed(
            lexed, engine=engine, build_trees=False
        )
        payload = outcome.to_payload()
        payload.pop("trees", None)
        payload.pop("trees_built", None)
        self.persist_tables()
        return payload

    # -- incremental re-parsing (checkpoint store) -------------------------

    def _result_id(self, *parts: Any) -> str:
        """Deterministic id for a (version-chained) parse result.

        Ids are pure functions of the session state and request, so a
        repeated request maps to the same id (and the same retained
        checkpoint), and an ``edit-parse`` id chains
        ``(version, base id, edit)`` — the lineage of the checkpoints it
        reuses.
        """
        blob = json.dumps(parts, sort_keys=True, default=str)
        return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:16]

    def _retain(
        self, result_id: str, outcome: Any, payload: Dict[str, Any]
    ) -> None:
        self.results[result_id] = (outcome, payload)
        self.results.move_to_end(result_id)
        while len(self.results) > CHECKPOINT_CAPACITY:
            self.results.popitem(last=False)
            self.checkpoint_evictions += 1

    def checkpoint_parse(
        self,
        tokens: TokenInput,
        engine: Optional[str] = None,
        mode: str = "parse",
        max_trees: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], bool]:
        """A parse/recognize that retains checkpoints for ``edit-parse``.

        Returns ``(payload, was_cached)``; the payload's ``result`` field
        is the id ``edit-parse`` requests pass as ``base``.  Bypasses the
        SLR fast path and the shared result cache: the retained
        checkpoint-carrying outcome *is* the cache here, and a hit must
        hand back an entry that still owns live checkpoints.  In
        ``"recognize"`` mode checkpoints carry pure state frontiers, the
        regime where an edit re-converges a token or two past the damage.
        """
        lexed = self.language.lex(tokens)
        result_id = self._result_id(
            mode,
            self.version,
            engine or "",
            [t.name for t in lexed.terminals],
            lexed.text,
            max_trees,
        )
        held = self.results.get(result_id)
        if held is not None:
            self.results.move_to_end(result_id)
            return held[1], True
        build_trees = (
            mode == "parse" and self.language.engine(engine).supports_trees
        )
        outcome = self.language.parse_lexed(
            lexed,
            engine=engine,
            build_trees=build_trees,
            checkpoint=True,
        )
        payload = self._result_payload(outcome, result_id, mode, max_trees)
        self._retain(result_id, outcome, payload)
        self.persist_tables()
        return payload, False

    @staticmethod
    def _result_payload(
        outcome: Any,
        result_id: str,
        mode: str,
        max_trees: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The retained response payload (tree-less in recognition mode,
        matching the plain ``recognize`` payload shape)."""
        payload = outcome.to_payload(max_trees=max_trees)
        if mode == "recognize":
            payload.pop("trees", None)
            payload.pop("trees_built", None)
            payload.pop("ambiguity", None)
        payload["result"] = result_id
        return payload

    def edit_parse(
        self,
        base: str,
        start: int,
        end: int,
        replacement: TokenInput = (),
        engine: Optional[str] = None,
        max_trees: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], bool]:
        """Re-parse retained result ``base`` after a splice edit.

        The new result is retained under an id chaining
        ``(session version, base id, edit)``, so chains of edits keep
        resuming from checkpoints, and a repeated identical edit request
        is a cache hit.  An unknown ``base`` (never parsed with
        ``checkpoint``, evicted, or dropped by a grammar edit) is a
        :class:`ServiceError` telling the client to re-establish one.
        """
        held = self.results.get(base)
        if held is None:
            raise ServiceError(
                f"unknown result {base!r} in session {self.name!r} — "
                f"checkpoints are dropped by grammar edits and LRU "
                f"pressure; re-parse with \"checkpoint\": true"
            )
        replacement_names = (
            replacement
            if isinstance(replacement, str)
            else [getattr(t, "name", str(t)) for t in replacement]
        )
        result_id = self._result_id(
            "edit",
            self.version,
            engine or "",
            base,
            start,
            end,
            replacement_names,
            max_trees,
        )
        cached = self.results.get(result_id)
        if cached is not None:
            self.results.move_to_end(result_id)
            return cached[1], True
        outcome = self.language.reparse(
            held[0], start, end, replacement, engine=engine
        )
        # The edit inherits the base's mode; a recognition-mode base
        # ("trees" absent from its payload) yields tree-less responses.
        mode = "parse" if "trees" in held[1] else "recognize"
        payload = self._result_payload(outcome, result_id, mode, max_trees)
        payload["base"] = base
        self._retain(result_id, outcome, payload)
        self.persist_tables()
        return payload, False

    def persist_tables(self) -> int:
        """Write states this session materialized back to the table store.

        A no-op without a store, and when nothing new was materialized
        since the last write-back — cheap enough to run after every parse.
        """
        return self.ipg.persist_tables()

    def summary(self) -> Dict[str, int]:
        return self.ipg.summary()

    def __repr__(self) -> str:
        return (
            f"ParseSession({self.name!r}, {len(self.ipg.grammar)} rules, "
            f"version={self.version})"
        )


class Workspace:
    """The registry of sessions plus the shared result cache.

    The registry dict is guarded by a re-entrant lock: under the sharded
    scheduler, each *session* is only ever driven by its owning shard
    (single-writer — parse/edit calls on a session need no lock), but
    registry operations (``open``/``close``/``sessions``/``metrics``)
    cross shards and would otherwise race with each other and with the
    per-request ``get`` lookups.  Session-internal state stays lock-free
    by shard ownership; only the shared structures (this registry and the
    :class:`ResultCache`) take locks.
    """

    def __init__(
        self,
        cache_capacity: int = 1024,
        table_store: Optional[Any] = None,
    ) -> None:
        self._sessions: Dict[str, ParseSession] = {}
        self._lock = threading.RLock()
        self.cache = ResultCache(cache_capacity)
        #: shared persistent table store inherited by every session this
        #: workspace opens (snapshot restores included), or None
        self.table_store = table_store
        #: Checkpoint evictions of already-closed sessions, so the
        #: ``repro.checkpoints.evictions`` counter stays monotone.
        self._retired_checkpoint_evictions = 0
        # Surface the shared result-cache counters and the session count
        # through the obs registry.  The registration is weak: a
        # workspace dropped by its dispatcher stops being polled, so
        # short-lived workspaces (tests, `repro batch`) cannot leak.
        obs.register_object_collector(self, Workspace._collect_metrics)

    @staticmethod
    def _collect_metrics(self: "Workspace"):
        for key, value in self.cache.stats.snapshot().items():
            if key != "hit_rate":
                yield ("repro.result_cache." + key, None, "counter", value)
        yield ("repro.result_cache.entries", None, "gauge", len(self.cache))
        yield ("repro.workspace.sessions", None, "gauge", len(self))
        with self._lock:
            sessions = list(self._sessions.values())
            retired = self._retired_checkpoint_evictions
        yield (
            "repro.checkpoints.evictions",
            None,
            "counter",
            retired + sum(session.checkpoint_evictions for session in sessions),
        )
        yield (
            "repro.checkpoints.entries",
            None,
            "gauge",
            sum(len(session.results) for session in sessions),
        )

    # -- registry ----------------------------------------------------------

    def open(
        self,
        name: str,
        grammar_text: str = "",
        sorts: Iterable[str] = (),
        force: bool = False,
    ) -> ParseSession:
        # Fast-fail duplicate check, then build OUTSIDE the lock: a large
        # grammar takes real time to build, and holding the registry lock
        # through it would stall every other shard's get() lookups.  A
        # losing racer (same name opened concurrently) is caught again by
        # adopt's locked check-and-insert.
        with self._lock:
            if name in self._sessions and not force:
                raise ServiceError(
                    f"session {name!r} is already open (pass force to replace it)"
                )
        session = ParseSession(
            name, grammar_text, sorts, table_store=self.table_store
        )
        return self.adopt(session, force=force)

    def adopt(self, session: ParseSession, force: bool = False) -> ParseSession:
        """Register an externally built session (e.g. a snapshot restore)."""
        with self._lock:
            if self._sessions.get(session.name) is session:
                # Idempotent re-adoption: closing-and-re-adding the same
                # object would detach its own grammar subscription for good.
                return session
            if session.name in self._sessions:
                if not force:
                    raise ServiceError(
                        f"session {session.name!r} is already open "
                        f"(pass force to replace it)"
                    )
                self.close(session.name)
            session.on_modify(self._invalidate)
            self._sessions[session.name] = session
            return session

    def get(self, name: str) -> ParseSession:
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise SessionNotFound(
                    f"no open session named {name!r} — 'open' it first"
                ) from None

    def close(self, name: str) -> bool:
        with self._lock:
            session = self._sessions.pop(name, None)
            if session is not None:
                self._retired_checkpoint_evictions += session.checkpoint_evictions
        if session is None:
            return False
        session.close()
        self.cache.invalidate(name)
        return True

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._sessions))

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._sessions

    def _invalidate(self, session: ParseSession) -> None:
        self.cache.invalidate(session.name)

    def action_cache_summary(self) -> Dict[str, int]:
        """Aggregate compiled-control ACTION-cache counters over sessions.

        Warm service traffic should show hits dominating misses; a grammar
        edit shows up as a flush with a small eviction count (only the
        states MODIFY touched).
        """
        with self._lock:
            sessions = list(self._sessions.values())
        total: Dict[str, int] = {}
        for session in sessions:
            for key, value in session.ipg.control.stats.snapshot().items():
                total[key] = total.get(key, 0) + value
        return total

    def generation_summary(self) -> Dict[str, int]:
        """Warm-start accounting summed over open sessions.

        ``saved_states`` — states adopted from the persistent table store
        instead of being expanded; ``cold_states`` — EXPAND calls paid by
        this process.  A second process opening the same grammars should
        show ``saved_states > 0`` and a near-zero ``cold_states``.
        """
        with self._lock:
            sessions = list(self._sessions.values())
        total = {"saved_states": 0, "cold_states": 0}
        for session in sessions:
            language = session.language
            total["saved_states"] += language.saved_states
            total["cold_states"] += language.generator.graph.stats.expansions
        return total

    # -- cached parsing ----------------------------------------------------

    def _cached(
        self,
        name: str,
        mode: str,
        tokens: TokenInput,
        engine: Optional[str] = None,
        use_cache: bool = True,
        max_trees: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], bool]:
        session = self.get(name)
        lexed = session.language.lex(tokens)
        if not use_cache:
            # Korp's ``cache=false``: bulk/corpus traffic must neither
            # read possibly-hot entries (its answers are stored anyway)
            # nor evict the interactive sessions' working set.
            payload = (
                session._parse_lexed(lexed, engine, max_trees)
                if mode == "parse"
                else session._recognize_lexed(lexed, engine)
            )
            return payload, False
        # The engine participates in the key: payloads differ across
        # engines (tree availability, reported engine name), so a cached
        # answer for one engine must never serve another.  So does the
        # raw source text: two inputs whose tokens merely match by name
        # ("true\nor" vs "true or", or a token list) produce different
        # line/column/offset diagnostics, and a cached rejection must
        # never serve another spelling's positions.  And ``max_trees``
        # (v7): differently-bounded enumerations are different payloads.
        key: CacheKey = (
            name,
            session.version,
            mode if engine is None else f"{mode}:{engine}",
            tuple(t.name for t in lexed.terminals),
            lexed.text,
            max_trees,
        )
        hit, value = self.cache.get(key)
        if hit:
            return value, True
        payload = (
            session._parse_lexed(lexed, engine, max_trees)
            if mode == "parse"
            else session._recognize_lexed(lexed, engine)
        )
        self.cache.put(key, payload)
        return payload, False

    def parse(
        self,
        name: str,
        tokens: TokenInput,
        engine: Optional[str] = None,
        checkpoint: bool = False,
        use_cache: bool = True,
        max_trees: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], bool]:
        """``(payload, was_cached)`` for a tree-building parse.

        With ``checkpoint=True`` the parse goes through the session's
        checkpoint store instead of the shared LRU (the retained
        incremental outcome is the cacheable thing), and the payload
        carries the ``result`` id for ``edit-parse``.  With
        ``use_cache=False`` the shared LRU is bypassed entirely.
        ``max_trees`` bounds how many derivations are enumerated into the
        payload's ``trees`` (protocol v7).
        """
        if checkpoint:
            return self.get(name).checkpoint_parse(
                tokens, engine, mode="parse", max_trees=max_trees
            )
        return self._cached(
            name, "parse", tokens, engine, use_cache=use_cache,
            max_trees=max_trees,
        )

    def edit_parse(
        self,
        name: str,
        base: str,
        start: int,
        end: int,
        replacement: TokenInput = (),
        engine: Optional[str] = None,
        max_trees: Optional[int] = None,
    ) -> Tuple[Dict[str, Any], bool]:
        """``(payload, was_cached)`` for an incremental edit re-parse."""
        return self.get(name).edit_parse(
            base, start, end, replacement, engine=engine, max_trees=max_trees
        )

    def recognize(
        self,
        name: str,
        tokens: TokenInput,
        engine: Optional[str] = None,
        checkpoint: bool = False,
        use_cache: bool = True,
    ) -> Tuple[Dict[str, Any], bool]:
        """``(payload, was_cached)`` for accept/reject recognition.

        ``checkpoint=True`` retains state-frontier checkpoints for
        ``edit-parse`` — the regime where edits re-converge a token or
        two past the damage.  ``use_cache=False`` bypasses the LRU.
        """
        if checkpoint:
            return self.get(name).checkpoint_parse(
                tokens, engine, mode="recognize"
            )
        return self._cached(
            name, "recognize", tokens, engine, use_cache=use_cache
        )

    def __repr__(self) -> str:
        return f"Workspace({len(self)} sessions, cache={self.cache!r})"
