"""Named fault points for chaos-testing the serving layer.

Production failure modes — a crashed shard child, a stalled queue, a
half-written frame, a vanished client — are exactly the paths CI never
exercises by accident.  This module gives each of them a *named fault
point* that the serving code consults at the right moment; a test (or an
operator, via ``REPRO_FAULTS``) arms a point a bounded number of times
and the next pass through that code path fails deliberately.

The catalog (each name is checked at one code site):

``kill-child``
    :class:`~repro.service.scheduler.ProcessExecutor` SIGKILLs its child
    before forwarding the next request — the supervisor's respawn +
    journal-replay path.
``delay``
    The shard worker sleeps ``delay_ms`` before serving a batch —
    latency injection for deadline and p99 assertions.
``queue-stall``
    The shard worker sleeps ``delay_ms`` *before draining its queue*, so
    the queue fills and the bounded-backpressure (``overloaded``) path
    runs under load.
``drop-connection``
    The TCP front end aborts the client's transport right after decoding
    a request — mid-pipeline disconnects.
``corrupt-frame``
    The TCP writer truncates one response frame — a torn write toward
    the client (the server must stay healthy; the client sees bad JSON).

Arming is process-local and thread-safe.  ``REPRO_FAULTS`` is parsed
once at import: a comma-separated list of ``point[:times[:delay_ms]]``
specs, e.g. ``REPRO_FAULTS="kill-child:1,delay:3:50"``.  Tests prefer
the API (:func:`arm` / :func:`reset`) so state never leaks across tests.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "POINTS",
    "active",
    "arm",
    "disarm",
    "fire",
    "load_env",
    "reset",
    "sleep_if_armed",
]

#: Every fault point the serving code consults.
POINTS = frozenset(
    {"kill-child", "delay", "drop-connection", "corrupt-frame", "queue-stall"}
)

#: Environment variable holding fault specs for process-level activation.
ENV_VAR = "REPRO_FAULTS"


class _Fault:
    __slots__ = ("remaining", "delay_ms")

    def __init__(self, times: Optional[int], delay_ms: float) -> None:
        #: ``None`` means unbounded (fires until disarmed).
        self.remaining = times
        self.delay_ms = delay_ms


_LOCK = threading.Lock()
_ARMED: Dict[str, _Fault] = {}


def _require_point(point: str) -> None:
    if point not in POINTS:
        raise ValueError(
            f"unknown fault point {point!r} — known: {', '.join(sorted(POINTS))}"
        )


def arm(point: str, times: Optional[int] = 1, delay_ms: float = 0.0) -> None:
    """Arm ``point`` to fire ``times`` times (``None`` = until disarmed)."""
    _require_point(point)
    if times is not None and times < 1:
        raise ValueError(f"times must be positive or None, got {times}")
    if delay_ms < 0:
        raise ValueError(f"delay_ms must be non-negative, got {delay_ms}")
    with _LOCK:
        _ARMED[point] = _Fault(times, delay_ms)


def disarm(point: str) -> None:
    _require_point(point)
    with _LOCK:
        _ARMED.pop(point, None)


def reset() -> None:
    """Disarm every fault point (test teardown)."""
    with _LOCK:
        _ARMED.clear()


def active() -> Dict[str, Dict[str, object]]:
    """Snapshot of the armed points (for health/debug surfaces)."""
    with _LOCK:
        return {
            point: {"remaining": fault.remaining, "delay_ms": fault.delay_ms}
            for point, fault in _ARMED.items()
        }


def fire(point: str) -> bool:
    """Consume one firing of ``point``; True when the fault should happen.

    The hot-path cost when nothing is armed is one dict lookup under an
    uncontended lock — the serving code calls this unconditionally.
    """
    with _LOCK:
        fault = _ARMED.get(point)
        if fault is None:
            return False
        if fault.remaining is not None:
            fault.remaining -= 1
            if fault.remaining <= 0:
                del _ARMED[point]
        return True


def delay_of(point: str) -> float:
    """The armed delay for ``point`` in milliseconds (0.0 if unarmed)."""
    with _LOCK:
        fault = _ARMED.get(point)
        return fault.delay_ms if fault is not None else 0.0


def sleep_if_armed(point: str) -> bool:
    """Fire ``point`` and sleep its ``delay_ms``; True when it fired."""
    delay_ms = delay_of(point)
    if not fire(point):
        return False
    if delay_ms > 0:
        time.sleep(delay_ms / 1000.0)
    return True


def load_env(value: Optional[str] = None) -> int:
    """Arm points from a ``REPRO_FAULTS`` spec string; returns the count.

    ``value=None`` reads the environment.  Malformed specs raise — a
    silently ignored chaos schedule would fake fault coverage.
    """
    if value is None:
        value = os.environ.get(ENV_VAR, "")
    count = 0
    for spec in value.split(","):
        spec = spec.strip()
        if not spec:
            continue
        parts = spec.split(":")
        point = parts[0]
        if len(parts) > 3:
            raise ValueError(
                f"bad {ENV_VAR} spec {spec!r} — want point[:times[:delay_ms]]"
            )
        times: Optional[int] = 1
        if len(parts) > 1:
            times = None if parts[1] in ("inf", "*") else int(parts[1])
        delay_ms = float(parts[2]) if len(parts) > 2 else 0.0
        arm(point, times=times, delay_ms=delay_ms)
        count += 1
    return count


load_env()
