"""The multi-session parse service.

Section 1 motivates IPG with *"an environment where language definitions
are developed (and modified) interactively"* by many users at once.  This
package is that environment's server side: a long-lived process that
multiplexes many named grammar sessions, answers a line-delimited JSON
request protocol, caches parse results aggressively, and persists session
snapshots for warm restarts.

========================  ====================================================
``service.workspace``     :class:`Workspace` — the registry of named
                          :class:`ParseSession` objects (IPG + version)
``service.cache``         :class:`ResultCache` — LRU over
                          ``(session, version, mode, tokens)`` keys
``service.protocol``      request decoding, response encoding, error types
``service.dispatcher``    :class:`Dispatcher` — one JSON request in, one
                          JSON response (with ``time``/``cache``) out
``service.snapshot``      session <-> JSON persistence (grammar text plus a
                          deterministic-table fast path when conflict-free)
``service.server``        the stdio serve loop and batch runner
``service.scheduler``     :class:`Scheduler` — session-sharded worker pool
                          (thread or process shards) with request
                          coalescing, bounded backpressure, per-shard
                          p50/p99 metrics and graceful drain
``service.net``           asyncio TCP/UNIX front end over the scheduler
                          (pipelined connections, ordered responses,
                          SIGTERM drain)
========================  ====================================================

Quickstart::

    from repro.service import Dispatcher

    d = Dispatcher()
    d.handle({"cmd": "open", "session": "s1",
              "grammar": "START ::= B\\nB ::= true"})
    response = d.handle({"cmd": "parse", "session": "s1", "tokens": "true"})
    assert response["accepted"] and "time" in response
"""

from .cache import CacheStats, ResultCache
from .dispatcher import Dispatcher
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    SessionNotFound,
    encode,
    iter_requests,
)
from .net import BackgroundServer, ParseServer, run_server
from .scheduler import Scheduler, merge_global, plan_batch
from .server import decode_line, run_batch, serve
from .snapshot import (
    SESSION_FORMAT_VERSION,
    load_session,
    save_session,
    session_from_dict,
    session_to_dict,
)
from .workspace import ParseSession, Workspace

__all__ = [
    "BackgroundServer",
    "CacheStats",
    "Dispatcher",
    "ParseServer",
    "ParseSession",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResultCache",
    "SESSION_FORMAT_VERSION",
    "Scheduler",
    "ServiceError",
    "SessionNotFound",
    "Workspace",
    "decode_line",
    "encode",
    "iter_requests",
    "load_session",
    "merge_global",
    "plan_batch",
    "run_batch",
    "run_server",
    "save_session",
    "serve",
    "session_from_dict",
    "session_to_dict",
]
