"""Restart policy primitives for supervised shards.

Two small, independently testable pieces of the supervisor's brain:

* :class:`BackoffPolicy` — how long to wait before the next respawn.
  Exponential with full jitter (AWS-style): the delay for attempt *n*
  is uniform in ``[0, min(max_ms, base_ms * factor**n)]``, so a burst of
  crashing shards never respawns in lockstep.
* :class:`CircuitBreaker` — when to stop trying.  A sliding window of
  restart timestamps; once ``max_restarts`` land inside
  ``window_seconds`` the breaker trips and the shard is *degraded*:
  requests fail fast with ``shard-degraded`` instead of burning CPU on
  a respawn loop against a deterministic crash (a poisoned session, a
  broken interpreter).

Both are plain state machines driven by the caller's clock — no threads,
no timers — which is what makes the chaos suite able to test them with
injected timestamps.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from typing import Deque, Dict, Optional

__all__ = ["BackoffPolicy", "CircuitBreaker"]


class BackoffPolicy:
    """Exponential backoff with full jitter, in milliseconds."""

    def __init__(
        self,
        base_ms: float = 50.0,
        factor: float = 2.0,
        max_ms: float = 5_000.0,
        jitter: bool = True,
        rng: Optional[random.Random] = None,
    ) -> None:
        if base_ms < 0 or max_ms < 0:
            raise ValueError("backoff durations must be non-negative")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.base_ms = base_ms
        self.factor = factor
        self.max_ms = max_ms
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()

    def ceiling_ms(self, attempt: int) -> float:
        """The un-jittered delay ceiling for 0-based ``attempt``."""
        if attempt < 0:
            attempt = 0
        return min(self.max_ms, self.base_ms * (self.factor**attempt))

    def delay_ms(self, attempt: int) -> float:
        """The actual delay to sleep before restart ``attempt``."""
        ceiling = self.ceiling_ms(attempt)
        if not self.jitter:
            return ceiling
        return self._rng.uniform(0.0, ceiling)


class CircuitBreaker:
    """Trips after ``max_restarts`` restarts within ``window_seconds``.

    Thread-safe; once tripped it stays tripped (a degraded shard needs
    operator attention or a new scheduler, not a timer-based retry that
    would re-enter the same crash loop).
    """

    def __init__(
        self, max_restarts: int = 5, window_seconds: float = 60.0
    ) -> None:
        if max_restarts < 1:
            raise ValueError(
                f"max_restarts must be positive, got {max_restarts}"
            )
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        self.max_restarts = max_restarts
        self.window_seconds = window_seconds
        self._lock = threading.Lock()
        self._events: Deque[float] = deque()
        self._tripped = False
        self.total_restarts = 0

    def record(self, now: float) -> bool:
        """Count one restart at time ``now``; False means: stop restarting.

        ``now`` is any monotonic clock the caller uses consistently —
        tests pass synthetic timestamps.
        """
        with self._lock:
            if self._tripped:
                return False
            self.total_restarts += 1
            self._events.append(now)
            cutoff = now - self.window_seconds
            while self._events and self._events[0] < cutoff:
                self._events.popleft()
            if len(self._events) > self.max_restarts:
                self._tripped = True
                return False
            return True

    @property
    def tripped(self) -> bool:
        with self._lock:
            return self._tripped

    def window_count(self, now: float) -> int:
        """Restarts currently inside the window (drives backoff growth)."""
        with self._lock:
            cutoff = now - self.window_seconds
            return sum(1 for event in self._events if event >= cutoff)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "tripped": self._tripped,
                "total_restarts": self.total_restarts,
                "window_events": len(self._events),
                "max_restarts": self.max_restarts,
                "window_seconds": self.window_seconds,
            }

    def __repr__(self) -> str:
        state = "tripped" if self.tripped else "closed"
        return (
            f"CircuitBreaker({state}, {self.total_restarts} restarts, "
            f"limit {self.max_restarts}/{self.window_seconds:g}s)"
        )
