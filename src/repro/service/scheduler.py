"""Shard-aware concurrent scheduling for the parse service.

The PR 1 service answered one request at a time.  This module is the
concurrency layer between any transport (stdin, TCP, tests) and the
dispatcher: a :class:`Scheduler` partitions sessions across a pool of
worker *shards*, so that each session's grammar, item-set graph, compiled
tables and caches stay **single-writer** — the locking audited into
:mod:`repro.service.workspace` only covers the shared registry and result
cache, everything session-internal stays lock-free by ownership.

Two shard flavours share one parent-side worker loop:

``mode="thread"``
    Every shard executes batches inline against one shared
    :class:`~repro.service.dispatcher.Dispatcher`.  Cheap (no IPC), fully
    shared state — but the GIL serializes the actual parse work, so this
    mode buys *concurrency* (no head-of-line blocking across sessions),
    not CPU parallelism.

``mode="process"``
    Every shard owns a child process running the existing stdio serve
    loop (``python -m repro serve``) and speaks the line-delimited JSON
    protocol over its pipes — the transport-independent core reused a
    third time.  Parse work is pure-Python CPU, so this is the mode that
    scales with cores; cross-shard commands (``sessions``/``metrics``/
    ``info``) are broadcast to every shard and merged.

Independently of the flavour, every shard applies:

* **batching** — the worker drains up to ``max_batch`` queued requests
  at once and serves them as one unit;
* **coalescing** — inside a batch, ``parse``/``recognize`` requests for
  the same ``(session, engine, tokens)`` with no intervening grammar
  modification execute once; duplicates get a copy of the answer marked
  ``"coalesced": true`` (their grammar version is necessarily identical:
  the shard is the session's only writer);
* **bounded backpressure** — a full shard queue answers immediately with
  an ``overloaded`` error instead of growing without bound;
* **metrics** — queue depth, batch sizes, and p50/p99 latency per shard
  via :class:`~repro.core.metrics.LatencyStats`;
* **graceful drain** — :meth:`Scheduler.close` stops intake, serves
  everything already queued, then joins workers and children.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
import zlib
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .. import obs
from ..core.metrics import LatencyStats
from . import faults
from .dispatcher import Dispatcher
from .journal import MutationJournal
from .protocol import encode
from .supervision import BackoffPolicy, CircuitBreaker

__all__ = [
    "GLOBAL_COMMANDS",
    "MUTATING_COMMANDS",
    "Scheduler",
    "merge_global",
    "plan_batch",
]

#: Commands that modify a session's grammar or registry entry — they end
#: every coalescing run for their session (the grammar version moves).
MUTATING_COMMANDS = frozenset(
    {"open", "close", "add-rule", "delete-rule", "restore"}
)

#: Commands eligible for within-batch coalescing.
COALESCIBLE_COMMANDS = frozenset({"parse", "recognize"})

#: Commands addressing the whole workspace rather than one session; in
#: process mode these are broadcast to every shard and merged.
GLOBAL_COMMANDS = frozenset({"sessions", "metrics", "metrics-export", "info"})

Request = Dict[str, Any]
Response = Dict[str, Any]

#: Routing verdict for requests whose owning session cannot be named.
_UNROUTABLE = object()


def _error_response(request: Any, message: str, **extra: Any) -> Response:
    """An error response shaped like the dispatcher's (cmd/session echoed)."""
    response: Response = {"error": message}
    if isinstance(request, dict):
        if isinstance(request.get("cmd"), str):
            response["cmd"] = request["cmd"]
        if "session" in request:
            response["session"] = request["session"]
    response.update(extra)
    response["time"] = 0.0
    return response


def _resolved(request: Any, message: str, **extra: Any) -> "Future[Response]":
    future: "Future[Response]" = Future()
    future.set_result(_error_response(request, message, **extra))
    return future


def _token_key(tokens: Any) -> Optional[Tuple[str, Any]]:
    """A hashable identity for a request's ``tokens`` field, or None.

    Only exact spellings coalesce: raw text and a token list that merely
    lex to the same terminals produce different rejection diagnostics, so
    they must not share an answer (same rule as the result-cache key).
    """
    if isinstance(tokens, str):
        return ("text", tokens)
    if isinstance(tokens, list) and all(isinstance(t, str) for t in tokens):
        return ("list", tuple(tokens))
    return None


def plan_batch(
    requests: List[Request],
) -> Tuple[List[Request], List[Tuple[str, int]]]:
    """Coalescing plan for one drained batch.

    Returns ``(execute, placements)``: the deduplicated requests to run,
    and for each input request either ``("run", i)`` (it is ``execute[i]``)
    or ``("copy", i)`` (answer with a copy of ``execute[i]``'s response).

    A ``parse``/``recognize`` duplicates an earlier one when session,
    command, engine and token spelling all match **and** no grammar
    modification for that session sits between them — a mutation ends the
    session's coalescing runs, an unroutable mutation (no session) ends
    all of them.  Order is preserved: ``execute`` keeps the first
    occurrence of every run in arrival order.
    """
    execute: List[Request] = []
    placements: List[Tuple[str, int]] = []
    live: Dict[Tuple[Any, ...], int] = {}
    for request in requests:
        cmd = request.get("cmd") if isinstance(request, dict) else None
        session = request.get("session") if isinstance(request, dict) else None
        key: Optional[Tuple[Any, ...]] = None
        if cmd in COALESCIBLE_COMMANDS:
            tokens = _token_key(request.get("tokens"))
            if tokens is not None:
                # ``checkpoint`` participates: a checkpointed parse's
                # response carries a ``result`` id (and retains session
                # state) that a plain parse's copy would lack.
                # ``trace`` participates too: a traced request must get
                # its own span tree, not a copy of an untraced answer
                # (and vice versa).  So does ``deadline_ms``: a request
                # with a longer budget must not receive a copy of a
                # ``deadline-exceeded`` answer computed under a shorter
                # one.  And ``cache`` (v6): a cache-bypassing corpus
                # request and a cached interactive one answer with
                # different ``cache`` fields.  And ``max_trees`` (v7):
                # differently-bounded requests enumerate different
                # ``trees`` lists.
                key = (
                    session,
                    cmd,
                    request.get("engine"),
                    bool(request.get("checkpoint", False)),
                    bool(request.get("trace", False)),
                    request.get("deadline_ms"),
                    bool(request.get("cache", True)),
                    request.get("max_trees"),
                    tokens,
                )
        elif cmd in MUTATING_COMMANDS or not isinstance(cmd, str):
            if isinstance(session, str):
                live = {k: v for k, v in live.items() if k[0] != session}
            else:
                live.clear()
        if key is not None:
            hit = live.get(key)
            if hit is not None:
                placements.append(("copy", hit))
                continue
            live[key] = len(execute)
        placements.append(("run", len(execute)))
        execute.append(request)
    return execute, placements


# -- executors -------------------------------------------------------------


class InlineExecutor:
    """Thread-mode shard body: batches run on the shared dispatcher."""

    def __init__(self, dispatcher: Dispatcher) -> None:
        self.dispatcher = dispatcher

    def run(self, requests: List[Request]) -> List[Response]:
        return [self.dispatcher.handle(request) for request in requests]

    def close(self) -> None:
        pass

    def terminate(self) -> None:
        pass


class ProcessExecutor:
    """Process-mode shard body: a ``repro serve`` child over its pipes.

    The child is the unmodified stdio serve loop — one JSON request line
    in, one response line out — so the shard protocol *is* the service
    protocol and needs no second serializer.  Requests are written and
    read strictly one at a time: a shard is sequential by design (that is
    what makes its sessions single-writer), so pipelining into the child
    would buy nothing and risk pipe-buffer deadlock on huge responses.
    """

    def __init__(
        self,
        cache_capacity: int = 1024,
        deadline_ms: Optional[float] = None,
        table_cache: Optional[str] = None,
    ) -> None:
        package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src_dir = os.path.dirname(package_root)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir if not existing else src_dir + os.pathsep + existing
        )
        # Fault injection is parent-owned: a child that also parsed
        # REPRO_FAULTS would double-fire every point.
        env.pop(faults.ENV_VAR, None)
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--cache-capacity",
            str(cache_capacity),
        ]
        if deadline_ms is not None:
            argv += ["--deadline-ms", str(deadline_ms)]
        if table_cache is not None:
            # Every child (including supervision respawns) inherits the
            # persistent table store, so a replacement shard warm-starts
            # its sessions' control planes instead of re-expanding them
            # under journal replay.
            argv += ["--table-cache", table_cache]
        # Child stderr goes to a spooled temp file so crash tracebacks
        # survive the child (a pipe would deadlock a chatty child; the
        # parent only reads this after a failure).
        self._stderr = tempfile.TemporaryFile(mode="w+b")
        self._process = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=self._stderr,
            env=env,
            text=True,
        )

    @property
    def pid(self) -> int:
        return self._process.pid

    def stderr_tail(self, limit: int = 4096) -> str:
        """The last ``limit`` bytes the child wrote to stderr."""
        try:
            self._stderr.flush()
            size = self._stderr.seek(0, os.SEEK_END)
            self._stderr.seek(max(0, size - limit))
            return self._stderr.read().decode("utf-8", "replace").strip()
        except (OSError, ValueError):
            return ""

    def run(self, requests: List[Request]) -> List[Response]:
        stdin, stdout = self._process.stdin, self._process.stdout
        assert stdin is not None and stdout is not None
        responses: List[Response] = []
        for request in requests:
            if faults.fire("kill-child"):
                self._process.kill()
                self._process.wait(timeout=10)
            stdin.write(encode(request) + "\n")
            stdin.flush()
            line = stdout.readline()
            if not line:
                tail = self.stderr_tail()
                raise RuntimeError(
                    f"shard child (pid {self._process.pid}) exited with "
                    f"code {self._process.poll()}"
                    + (f"; stderr tail: {tail}" if tail else "")
                )
            responses.append(json.loads(line))
        return responses

    def close(self) -> None:
        try:
            if self._process.stdin is not None:
                self._process.stdin.close()
            self._process.wait(timeout=10)
        except (OSError, subprocess.TimeoutExpired):
            self.terminate()
            return
        self._close_stderr()

    def terminate(self) -> None:
        if self._process.poll() is None:
            self._process.kill()
            self._process.wait(timeout=10)
        self._close_stderr()

    def _close_stderr(self) -> None:
        try:
            self._stderr.close()
        except OSError:
            pass


# -- shards ----------------------------------------------------------------


class Shard:
    """One worker: a bounded queue, a batching loop, and its executor.

    When built with an ``executor_factory`` the shard is *supervised*:
    an executor crash answers the in-flight batch with a retryable
    ``shard-restarting`` error, then the worker thread respawns the
    executor under exponential backoff with jitter and replays the
    shard's :class:`~repro.service.journal.MutationJournal`, so every
    acknowledged session mutation exists again — at the same grammar
    version — before the next request runs.  A
    :class:`~repro.service.supervision.CircuitBreaker` turns a crash
    *loop* into a terminal ``degraded`` state that fails fast instead of
    burning CPU on doomed respawns.
    """

    #: Shard lifecycle states, also exported as the gauge value of
    #: ``repro.shard.state`` (list index = gauge value).
    STATES = ("ok", "restarting", "degraded")

    def __init__(
        self,
        index: int,
        executor: Any,
        max_depth: int = 256,
        max_batch: int = 16,
        stats_window: int = 512,
        executor_factory: Optional[Callable[[], Any]] = None,
        journal: Optional[MutationJournal] = None,
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if max_depth < 1 or max_batch < 1:
            raise ValueError("max_depth and max_batch must be positive")
        self.index = index
        self.executor = executor
        self.max_depth = max_depth
        self.max_batch = max_batch
        self.latency = LatencyStats(window=stats_window)
        self.submitted = 0
        self.completed = 0
        self.coalesced = 0
        self.overloaded = 0
        self.batches = 0
        self.batched_requests = 0
        self.largest_batch = 0
        # Supervision plumbing.  Without a factory the shard keeps the
        # pre-supervision behaviour: the first executor failure is
        # permanent (thread-mode InlineExecutor "crashes" are dispatcher
        # bugs, not recoverable infrastructure faults).
        self.executor_factory = executor_factory
        self.journal = journal if journal is not None else MutationJournal()
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.restarts = 0
        self.replayed_entries = 0
        self._state = "ok"
        self._retry_after_ms = self.backoff.ceiling_ms(0)
        # Per-shard latency histograms in the obs registry.  Recorded in
        # the parent process for both modes (the queue lives here), so a
        # process-mode parent still owns the shard latency surface.
        self._obs_wait = obs.histogram(
            "repro.shard.queue_wait.seconds", shard=str(index)
        )
        self._obs_request = obs.histogram(
            "repro.shard.request.seconds", shard=str(index)
        )
        self._failure: Optional[str] = None
        self._items: Deque[Tuple[Any, "Future[Response]", float]] = deque()
        self._ready = threading.Condition(threading.Lock())
        self._accepting = True
        self._thread = threading.Thread(
            target=self._run, name=f"repro-shard-{index}", daemon=True
        )
        self._thread.start()

    @property
    def supervised(self) -> bool:
        return self.executor_factory is not None

    @property
    def state(self) -> str:
        with self._ready:
            return self._state

    # -- intake ------------------------------------------------------------

    def submit(self, request: Any) -> "Future[Response]":
        with self._ready:
            if not self._accepting:
                return _resolved(
                    request,
                    f"shutting down: shard {self.index} no longer accepts "
                    f"requests",
                    overloaded=True,
                )
            if self._state == "degraded":
                return _resolved(
                    request,
                    "shard-degraded",
                    shard=self.index,
                    detail=(
                        f"shard {self.index} tripped its circuit breaker "
                        f"after {self.restarts} restart(s); last failure: "
                        f"{self._failure}"
                    ),
                )
            if self._state == "restarting":
                # Fail fast instead of queueing behind a recovery of
                # unknown length; the client retries after the hint.
                return _resolved(
                    request,
                    "shard-restarting",
                    shard=self.index,
                    retry_after_ms=round(self._retry_after_ms, 1),
                )
            if len(self._items) >= self.max_depth:
                self.overloaded += 1
                return _resolved(
                    request,
                    f"overloaded: shard {self.index} queue is at its depth "
                    f"limit ({self.max_depth})",
                    overloaded=True,
                )
            future: "Future[Response]" = Future()
            self._items.append((request, future, time.perf_counter()))
            self.submitted += 1
            self._ready.notify()
            return future

    def queue_depth(self) -> int:
        with self._ready:
            return len(self._items)

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Stop intake; the worker drains the queue and then exits."""
        with self._ready:
            self._accepting = False
            self._ready.notify()

    def join(self, timeout: Optional[float] = None) -> bool:
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def kill(self) -> None:
        """Last resort for a wedged executor (e.g. a hung child process)."""
        self.executor.terminate()

    # -- the worker loop ---------------------------------------------------

    def _run(self) -> None:
        while True:
            faults.sleep_if_armed("queue-stall")
            with self._ready:
                while not self._items and self._accepting:
                    self._ready.wait()
                if not self._items:
                    break  # closed and drained
                batch = [
                    self._items.popleft()
                    for _ in range(min(len(self._items), self.max_batch))
                ]
            self._serve(batch)
        self.executor.close()

    def _serve(
        self, batch: List[Tuple[Any, "Future[Response]", float]]
    ) -> None:
        faults.sleep_if_armed("delay")
        execute, placements = plan_batch([item[0] for item in batch])
        started = time.perf_counter()
        responses: Optional[List[Response]] = None
        crashed = False
        if self._failure is None or (self.supervised and self._state == "ok"):
            try:
                responses = self.executor.run(execute)
            except Exception as error:  # noqa: BLE001 — worker boundary
                self._failure = f"{type(error).__name__}: {error}"
                crashed = True
        self.batches += 1
        self.batched_requests += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))
        finished = time.perf_counter()
        for (request, future, enqueued), (kind, position) in zip(
            batch, placements
        ):
            queue_wait = max(0.0, started - enqueued)
            if responses is None:
                if self.supervised and self.state == "degraded":
                    response = _error_response(
                        request,
                        "shard-degraded",
                        shard=self.index,
                        detail=(
                            f"shard {self.index} tripped its circuit "
                            f"breaker; last failure: {self._failure}"
                        ),
                    )
                elif self.supervised:
                    # The whole batch — including any request the dead
                    # executor may have half-applied but never answered —
                    # is retryable: replay only reproduces *acknowledged*
                    # mutations, so a client retry cannot double-apply.
                    response = _error_response(
                        request,
                        "shard-restarting",
                        shard=self.index,
                        retry_after_ms=round(self._retry_after_ms, 1),
                    )
                else:
                    response = _error_response(
                        request, f"shard {self.index} failed: {self._failure}"
                    )
            else:
                response = responses[position]
                if kind == "copy":
                    response = dict(response)
                    response["coalesced"] = True
                    self.coalesced += 1
                if self.supervised:
                    # Journal only under supervision: an unsupervised
                    # (thread-mode) shard never replays, and an unbounded
                    # log would just leak.
                    self.journal.record(request, response)
            response = self._annotate_trace(response, kind, queue_wait)
            cmd = request.get("cmd") if isinstance(request, dict) else None
            self.latency.record(
                cmd if isinstance(cmd, str) else "<invalid>",
                finished - enqueued,
            )
            self._obs_wait.observe(queue_wait)
            self._obs_request.observe(finished - enqueued)
            self.completed += 1
            # The future may have been cancelled while queued (a TCP
            # client that disconnected mid-pipeline); setting a result
            # then raises InvalidStateError, and letting that escape
            # would kill this worker thread for every other client.
            if not future.cancelled():
                try:
                    future.set_result(response)
                except Exception:  # noqa: BLE001 — cancel/set race
                    pass
        if crashed and self.supervised:
            self._recover()
        elif responses is not None:
            self._maybe_compact()

    # -- supervision -------------------------------------------------------

    def _recover(self) -> None:
        """Respawn + replay until healthy, or trip into ``degraded``.

        Runs on the worker thread: requests submitted meanwhile fail
        fast with ``shard-restarting`` (see :meth:`submit`), so a long
        backoff never wedges clients behind an empty promise.
        """
        with self._ready:
            self._state = "restarting"
        while True:
            now = time.monotonic()
            if not self.breaker.record(now):
                with self._ready:
                    self._state = "degraded"
                obs.counter(
                    "repro.shard.degraded", shard=str(self.index)
                ).inc()
                try:
                    self.executor.terminate()
                except Exception:  # noqa: BLE001 — best-effort cleanup
                    pass
                return
            self.restarts += 1
            obs.counter("repro.shard.restarts", shard=str(self.index)).inc()
            delay_ms = self.backoff.delay_ms(self.breaker.window_count(now) - 1)
            with self._ready:
                # What submit() tells rejected clients: the remaining
                # backoff plus one more ceiling step if this attempt
                # also fails.
                self._retry_after_ms = max(delay_ms, self.backoff.base_ms)
            if delay_ms > 0:
                time.sleep(delay_ms / 1000.0)
            try:
                old = self.executor
                try:
                    old.terminate()
                except Exception:  # noqa: BLE001 — best-effort cleanup
                    pass
                assert self.executor_factory is not None
                self.executor = self.executor_factory()
                self._replay_journal()
            except Exception as error:  # noqa: BLE001 — worker boundary
                self._failure = f"{type(error).__name__}: {error}"
                continue
            with self._ready:
                self._state = "ok"
                self._failure = None
            return

    def _replay_journal(self) -> None:
        """Feed the journal back through the fresh executor.

        Any error response fails the replay — a half-rebuilt session
        must look like a crash (another supervised restart), never like
        a healthy shard with silently missing state.
        """
        requests = self.journal.replay_requests()
        if not requests:
            return
        responses = self.executor.run(requests)
        for request, response in zip(requests, responses):
            if isinstance(response, dict) and "error" in response:
                raise RuntimeError(
                    f"journal replay of {request.get('cmd')!r} for session "
                    f"{request.get('session')!r} failed: {response['error']}"
                )
        self.replayed_entries += len(requests)

    def _maybe_compact(self) -> None:
        """Collapse an over-long session run into one snapshot restore.

        Runs on the worker thread between batches — the only thread that
        talks to the executor — so the ``snapshot`` round-trip cannot
        interleave with client requests.
        """
        if not self.supervised:
            return
        session = self.journal.needs_compaction()
        if session is None:
            return
        try:
            [response] = self.executor.run(
                [{"cmd": "snapshot", "session": session}]
            )
        except Exception as error:  # noqa: BLE001 — worker boundary
            self._failure = f"{type(error).__name__}: {error}"
            self._recover()
            return
        payload = (
            response.get("snapshot") if isinstance(response, dict) else None
        )
        if isinstance(payload, dict):
            self.journal.compact(session, payload)

    def health(self) -> Dict[str, Any]:
        """Liveness and supervision state, as reported by ``health``."""
        with self._ready:
            state = self._state
            retry_after_ms = self._retry_after_ms
        report: Dict[str, Any] = {
            "index": self.index,
            "state": state,
            "alive": self._thread.is_alive(),
            "restarts": self.restarts,
            "queue_depth": self.queue_depth(),
            "breaker": self.breaker.stats(),
            "journal": self.journal.stats(),
        }
        if state == "restarting":
            report["retry_after_ms"] = round(retry_after_ms, 1)
        if self._failure is not None:
            report["failure"] = self._failure
        pid = getattr(self.executor, "pid", None)
        if pid is not None:
            report["pid"] = pid
        return report

    def _annotate_trace(
        self, response: Response, kind: str, queue_wait: float
    ) -> Response:
        """Stamp shard context onto a traced response's span tree.

        The dispatcher's root span cannot see the queue (it starts after
        the dequeue), so the shard adds what only it knows: its index,
        the queue wait, and whether the answer was coalesced.  The trace
        dict is copied first — a coalesced copy must not mutate the tree
        shared with the original response.
        """
        if not isinstance(response, dict):
            return response
        tree = response.get("trace")
        if not isinstance(tree, dict):
            return response
        tree = dict(tree)
        attributes = dict(tree.get("attributes", ()))
        attributes["shard"] = self.index
        attributes["queue_wait"] = round(queue_wait, 6)
        if kind == "copy":
            attributes["coalesced"] = True
        tree["attributes"] = attributes
        response = dict(response)
        response["trace"] = tree
        return response

    # -- introspection -----------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "queue_depth": self.queue_depth(),
            "submitted": self.submitted,
            "completed": self.completed,
            "coalesced": self.coalesced,
            "overloaded": self.overloaded,
            "batches": self.batches,
            "mean_batch": (
                round(self.batched_requests / self.batches, 3)
                if self.batches
                else 0.0
            ),
            "largest_batch": self.largest_batch,
            "state": self.state,
            "restarts": self.restarts,
            "failure": self._failure,
            "latency": self.latency.snapshot(),
        }

    def __repr__(self) -> str:
        return (
            f"Shard({self.index}, depth={self.queue_depth()}, "
            f"completed={self.completed})"
        )


# -- merging broadcast responses (process mode) ----------------------------


def _merge_cache_stats(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    merged = {
        key: sum(part.get(key, 0) for part in parts)
        for key in ("hits", "misses", "evictions", "invalidations")
    }
    lookups = merged["hits"] + merged["misses"]
    merged["hit_rate"] = round(merged["hits"] / lookups, 4) if lookups else 0.0
    return merged


def _merge_latency(parts: List[Dict[str, Any]]) -> Dict[str, Any]:
    merged: Dict[str, Dict[str, float]] = {}
    for part in parts:
        for key, entry in part.items():
            slot = merged.setdefault(key, {"count": 0, "seconds": 0.0})
            slot["count"] += entry.get("count", 0)
            slot["seconds"] += entry.get("seconds", 0.0)
    for slot in merged.values():
        slot["seconds"] = round(slot["seconds"], 6)
        slot["mean"] = (
            round(slot["seconds"] / slot["count"], 6) if slot["count"] else 0.0
        )
    return merged


def merge_global(request: Any, parts: List[Response]) -> Response:
    """One response for a global command broadcast to every shard."""
    for part in parts:
        if "error" in part:
            return part
    cmd = request.get("cmd") if isinstance(request, dict) else None
    elapsed = round(max(part.get("time", 0.0) for part in parts), 6)
    if cmd == "sessions":
        merged_names: set = set()
        for part in parts:
            merged_names.update(part.get("sessions", ()))
        return {"cmd": "sessions", "sessions": sorted(merged_names), "time": elapsed}
    if cmd == "info":
        merged = dict(parts[0])
        names = set()
        for part in parts:
            names.update(part.get("sessions", ()))
        merged["sessions"] = sorted(names)
        merged["time"] = elapsed
        return merged
    if cmd == "metrics-export":
        # Children answered in JSON regardless of the requested format
        # (the parent re-renders); keep the per-shard snapshots so
        # callers can audit that the merge preserved the totals.
        shard_snapshots = [part.get("metrics", {}) for part in parts]
        merged = {
            "cmd": "metrics-export",
            "format": "json",
            "metrics": obs.MetricsRegistry.merge(shard_snapshots),
            "shards": shard_snapshots,
            "time": elapsed,
        }
        spans: List[Any] = []
        for part in parts:
            spans.extend(part.get("spans", ()))
        if spans:
            merged["spans"] = spans
        return merged
    if cmd == "metrics":
        action_keys = sorted(
            {key for part in parts for key in part.get("action_cache", {})}
        )
        return {
            "cmd": "metrics",
            "sessions": sum(part.get("sessions", 0) for part in parts),
            "cache": _merge_cache_stats([part.get("cache", {}) for part in parts]),
            "cache_entries": sum(part.get("cache_entries", 0) for part in parts),
            "action_cache": {
                key: sum(part.get("action_cache", {}).get(key, 0) for part in parts)
                for key in action_keys
            },
            "generation": {
                key: sum(part.get("generation", {}).get(key, 0) for part in parts)
                for key in sorted(
                    {key for part in parts for key in part.get("generation", {})}
                )
            },
            "requests": _merge_latency([part.get("requests", {}) for part in parts]),
            "time": elapsed,
        }
    return dict(parts[0])


# -- the scheduler ---------------------------------------------------------


class Scheduler:
    """Routes requests to session-owning shards; the transport-facing API.

    Implements the same ``handle(request) -> response`` contract as
    :class:`~repro.service.dispatcher.Dispatcher` (so ``serve``/
    ``run_batch`` accept either), plus a non-blocking ``submit`` returning
    a :class:`concurrent.futures.Future` for async transports.
    """

    def __init__(
        self,
        workers: int = 1,
        mode: Optional[str] = None,
        max_depth: int = 256,
        max_batch: int = 16,
        cache_capacity: int = 1024,
        dispatcher: Optional[Dispatcher] = None,
        stats_window: int = 512,
        deadline_ms: Optional[float] = None,
        max_restarts: int = 5,
        restart_window: float = 60.0,
        backoff_ms: float = 50.0,
        max_backoff_ms: float = 5_000.0,
        compact_threshold: int = 32,
        corpus_root: Optional[str] = None,
        table_cache: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if max_depth < 1 or max_batch < 1:
            # Validated before any executor exists: raising after the
            # process-mode spawns would leak live children.
            raise ValueError("max_depth and max_batch must be positive")
        self.mode = mode if mode is not None else "thread"
        if self.mode not in ("thread", "process"):
            raise ValueError(f"unknown scheduler mode {self.mode!r}")
        self.deadline_ms = deadline_ms
        self.dispatcher: Optional[Dispatcher] = None
        factory: Optional[Callable[[], Any]] = None
        if self.mode == "thread":
            self.dispatcher = (
                dispatcher
                if dispatcher is not None
                else Dispatcher(
                    cache_capacity=cache_capacity,
                    default_deadline_ms=deadline_ms,
                    table_cache=table_cache,
                )
            )
            executors: List[Any] = [
                InlineExecutor(self.dispatcher) for _ in range(workers)
            ]
        else:
            if dispatcher is not None:
                raise ValueError(
                    "process mode builds a dispatcher per child; "
                    "an injected dispatcher would be silently unused"
                )

            def factory() -> ProcessExecutor:
                return ProcessExecutor(
                    cache_capacity=cache_capacity,
                    deadline_ms=deadline_ms,
                    table_cache=table_cache,
                )

            executors = []
            try:
                for _ in range(workers):
                    executors.append(factory())
            except BaseException:
                # A failed spawn (EAGAIN/ENOMEM) must not leak the
                # children already started — nothing would ever reach
                # them once __init__ raises.
                for executor in executors:
                    try:
                        executor.terminate()
                    except Exception:  # noqa: BLE001 — best-effort cleanup
                        pass
                raise
        self.shards = [
            Shard(
                index,
                executor,
                max_depth,
                max_batch,
                stats_window,
                executor_factory=factory,
                journal=MutationJournal(compact_threshold=compact_threshold),
                backoff=BackoffPolicy(base_ms=backoff_ms, max_ms=max_backoff_ms),
                breaker=CircuitBreaker(
                    max_restarts=max_restarts, window_seconds=restart_window
                ),
            )
            for index, executor in enumerate(executors)
        ]
        self._closed = False
        self.corpus = None
        if corpus_root is not None:
            # Lazily imported: repro.corpus layers *above* the service
            # (its jobs submit ordinary parse requests right back here).
            from ..corpus.manager import CorpusManager

            # The manager lives parent-side — corpus state is process
            # global — while its parse traffic flows through the normal
            # shard queues via submit(), so batch jobs queue *behind*
            # interactive requests under the same backpressure bound.
            self.corpus = CorpusManager(
                corpus_root,
                submit=self.submit,
                shard_count=len(self.shards),
                shard_of=self.shard_of,
            )
        # Shard work counters for the obs registry, polled at snapshot
        # time and weakly bound — a dropped scheduler stops reporting.
        obs.register_object_collector(self, Scheduler._collect_metrics)

    @staticmethod
    def _collect_metrics(self: "Scheduler"):
        for shard in self.shards:
            labels = {"shard": str(shard.index)}
            yield ("repro.shard.submitted", labels, "counter", shard.submitted)
            yield ("repro.shard.completed", labels, "counter", shard.completed)
            yield ("repro.shard.coalesced", labels, "counter", shard.coalesced)
            yield ("repro.shard.overloaded", labels, "counter", shard.overloaded)
            yield ("repro.shard.batches", labels, "counter", shard.batches)
            yield ("repro.shard.queue_depth", labels, "gauge", shard.queue_depth())
            yield ("repro.shard.restarts", labels, "counter", shard.restarts)
            yield (
                "repro.shard.state",
                labels,
                "gauge",
                Shard.STATES.index(shard.state),
            )

    # -- routing -----------------------------------------------------------

    @property
    def workspace(self):
        """The shared workspace (thread mode only; None for process mode)."""
        return self.dispatcher.workspace if self.dispatcher is not None else None

    def shard_of(self, session: str) -> int:
        """Stable session -> shard assignment (CRC32, not the salted hash)."""
        return zlib.crc32(session.encode("utf-8")) % len(self.shards)

    @staticmethod
    def _routing_session(request: Any) -> Any:
        """The session that must own ``request``, None, or _UNROUTABLE."""
        if not isinstance(request, dict):
            return None
        session = request.get("session")
        if isinstance(session, str):
            return session
        if request.get("cmd") == "restore":
            payload = request.get("snapshot")
            if isinstance(payload, dict) and isinstance(
                payload.get("session"), str
            ):
                return payload["session"]
            return _UNROUTABLE
        return None

    def submit(self, request: Any) -> "Future[Response]":
        """Enqueue one request; the future resolves to its response."""
        cmd = request.get("cmd") if isinstance(request, dict) else None
        if isinstance(cmd, str) and cmd.startswith("corpus-"):
            # Served parent-side, like health/ready: corpus state (the
            # registry, journals, jobs) is owned by this process, and
            # only the per-document parse work is routed to shards.
            # Served synchronously on the caller's thread — a
            # ``corpus-parse`` with ``wait`` blocks its own client, and
            # a shard worker thread must never serve one (the job would
            # deadlock waiting on that same shard's queue).
            future: "Future[Response]" = Future()
            if self.corpus is None:
                future.set_result(
                    _error_response(
                        request,
                        f"{cmd!r} needs a corpus root — start the "
                        f"service with --corpus-root DIR",
                    )
                )
            else:
                future.set_result(self.corpus.serve(request))
            return future
        if cmd in ("health", "ready"):
            # Answered parent-side without touching any shard queue: a
            # wedged or restarting shard must never block the probe that
            # exists to report exactly that condition.
            future: "Future[Response]" = Future()
            future.set_result(
                self.health_response()
                if cmd == "health"
                else self.ready_response()
            )
            return future
        session = self._routing_session(request)
        if session is _UNROUTABLE:
            return _resolved(
                request,
                "'restore' under a sharded scheduler needs a 'session' "
                "field (or a snapshot payload naming one) to route by",
            )
        if isinstance(session, str):
            return self.shards[self.shard_of(session)].submit(request)
        if cmd == "metrics-export" and self.mode == "process":
            # Children hold the session registries; ask every one for a
            # JSON snapshot (whatever format the caller wants — the
            # parent renders), merge, then fold in the parent's own
            # registry (shard queues/latency live here).
            inner = dict(request)
            inner["format"] = "json"
            inner.pop("trace", None)
            return self._finish_metrics_export(request, self._broadcast(inner))
        if (
            cmd in GLOBAL_COMMANDS
            and self.mode == "process"
            and len(self.shards) > 1
        ):
            future = self._broadcast(request)
        else:
            future = self.shards[0].submit(request)
        if cmd == "metrics":
            return self._with_scheduler_metrics(request, future)
        return future

    def handle(self, request: Any) -> Response:
        """Blocking dispatch — the Dispatcher-compatible entry point."""
        return self.submit(request).result()

    def _broadcast(self, request: Request) -> "Future[Response]":
        futures = [shard.submit(dict(request)) for shard in self.shards]
        result: "Future[Response]" = Future()
        lock = threading.Lock()
        remaining = {"count": len(futures)}

        def finish(_future: "Future[Response]") -> None:
            with lock:
                remaining["count"] -= 1
                if remaining["count"]:
                    return
            try:
                merged = merge_global(request, [f.result() for f in futures])
            except BaseException as error:  # noqa: BLE001 — CancelledError
                merged = _error_response(
                    request, f"{type(error).__name__}: {error}"
                )
            if not result.cancelled():
                try:
                    result.set_result(merged)
                except Exception:  # noqa: BLE001 — cancel/set race
                    pass

        for future in futures:
            future.add_done_callback(finish)
        return result

    def _finish_metrics_export(
        self, request: Request, future: "Future[Response]"
    ) -> "Future[Response]":
        """Parent-side half of a process-mode ``metrics-export``.

        Folds the parent registry (shard latency histograms, scheduler
        counters) into the merged child snapshots, recomputes the global
        laziness ratio (child fractions must not be summed), and renders
        the caller's requested format.
        """
        wrapped: "Future[Response]" = Future()

        def finish(done: "Future[Response]") -> None:
            try:
                response = dict(done.result())
            except BaseException as error:  # noqa: BLE001 — CancelledError
                response = _error_response(
                    request, f"{type(error).__name__}: {error}"
                )
            if "error" not in response:
                parent = obs.REGISTRY.snapshot()
                merged = obs.MetricsRegistry.merge(
                    [response.get("metrics", {}), parent]
                )
                fraction = merged.get("repro.lazy.table_fraction")
                if fraction is not None:
                    total = merged.get("repro.lazy.full_table_states", {}).get(
                        "value", 0
                    )
                    done_states = merged.get(
                        "repro.lazy.states_materialized", {}
                    ).get("value", 0)
                    fraction["value"] = (
                        round(done_states / total, 4) if total else 0.0
                    )
                response["parent"] = parent
                response["metrics"] = merged
                fmt = request.get("format", "prometheus")
                response["format"] = fmt
                if fmt == "prometheus":
                    response["text"] = obs.render_prometheus(merged)
                    # The text is the product; the raw snapshots would
                    # triple the payload for a scrape that ignores them.
                    response.pop("metrics", None)
                    response.pop("shards", None)
                    response.pop("parent", None)
            response.setdefault("cmd", "metrics-export")
            if not wrapped.cancelled():
                try:
                    wrapped.set_result(response)
                except Exception:  # noqa: BLE001 — cancel/set race
                    pass

        future.add_done_callback(finish)
        return wrapped

    def _with_scheduler_metrics(
        self, request: Request, future: "Future[Response]"
    ) -> "Future[Response]":
        """Attach per-shard scheduler metrics to a global metrics response."""
        if isinstance(request, dict) and "session" in request:
            return future
        wrapped: "Future[Response]" = Future()

        def enrich(done: "Future[Response]") -> None:
            try:
                response = dict(done.result())
            except BaseException as error:  # noqa: BLE001 — CancelledError
                response = _error_response(
                    request, f"{type(error).__name__}: {error}"
                )
            if "error" not in response:
                response["scheduler"] = self.metrics()
            if not wrapped.cancelled():
                try:
                    wrapped.set_result(response)
                except Exception:  # noqa: BLE001 — cancel/set race
                    pass

        future.add_done_callback(enrich)
        return wrapped

    # -- introspection -----------------------------------------------------

    def health_response(self) -> Response:
        """The ``health`` command's answer: per-shard supervision state."""
        started = time.perf_counter()
        shards = [shard.health() for shard in self.shards]
        healthy = all(
            entry["state"] == "ok" and entry["alive"] for entry in shards
        )
        return {
            "cmd": "health",
            "healthy": healthy,
            "mode": self.mode,
            "workers": len(self.shards),
            "restarts": sum(entry["restarts"] for entry in shards),
            "shards": shards,
            "time": round(time.perf_counter() - started, 6),
        }

    def ready_response(self) -> Response:
        """The ``ready`` command's answer: can this scheduler take traffic?

        Ready is softer than healthy: a shard mid-restart still counts
        (its requests fail fast but retryably); only a degraded shard —
        or a closed scheduler — makes the service not ready.
        """
        started = time.perf_counter()
        degraded = [
            shard.index for shard in self.shards if shard.state == "degraded"
        ]
        ready = not self._closed and not degraded
        response: Response = {
            "cmd": "ready",
            "ready": ready,
            "time": round(time.perf_counter() - started, 6),
        }
        if degraded:
            response["degraded_shards"] = degraded
        if self._closed:
            response["closed"] = True
        return response

    def metrics(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "workers": len(self.shards),
            "queue_depth": sum(s.queue_depth() for s in self.shards),
            "coalesced": sum(s.coalesced for s in self.shards),
            "overloaded": sum(s.overloaded for s in self.shards),
            "shards": [shard.metrics() for shard in self.shards],
        }

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful drain: stop intake, serve the queues, join everything.

        A shard that fails to drain within ``timeout`` (a wedged child
        process) is killed; its queued requests resolve with shard-failure
        errors rather than hanging their clients forever.
        """
        if self._closed:
            return
        self._closed = True
        if self.corpus is not None:
            # Before the shards: parked jobs still submit to them, and a
            # job's in-flight documents should journal before the drain.
            self.corpus.close()
        for shard in self.shards:
            shard.close()
        for shard in self.shards:
            if not shard.join(timeout):
                shard.kill()
                shard.join(timeout)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Scheduler({len(self.shards)} {self.mode} shard"
            f"{'s' if len(self.shards) != 1 else ''})"
        )
