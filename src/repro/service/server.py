"""The serve loop (line-delimited JSON over stdio) and the batch runner.

``serve`` is intentionally transport-minimal: it reads lines from any
file-like object, decodes the request(s) on each line, and writes one
response line per request, flushing after every write so a driving process
(editor, test harness, ``echo | python -m repro serve``) sees answers
immediately.

The ``dispatcher`` argument accepts anything with the
``handle(request) -> response`` contract — the single-threaded
:class:`~repro.service.dispatcher.Dispatcher` or the sharded
:class:`~repro.service.scheduler.Scheduler`.  The TCP front end
(:mod:`repro.service.net`) and the process-shard children reuse the same
core and the same :func:`decode_line` framing, so stdin, TCP, pipes and
tests all speak one protocol.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

from .dispatcher import Dispatcher
from .protocol import ProtocolError, encode, iter_requests


def decode_line(line: str) -> Tuple[List[Dict[str, Any]], Optional[str]]:
    """``(requests, error)`` for one physical input line.

    Blank lines and ``#`` comments decode to no requests; bad JSON decodes
    to an error string the caller reports as an error response.  Shared by
    the stdio loop, the batch runner, and the TCP front end.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return [], None
    try:
        return list(iter_requests(stripped)), None
    except ProtocolError as error:
        return [], str(error)


def serve(
    input_stream: IO[str],
    output_stream: IO[str],
    dispatcher: Optional[Any] = None,
) -> int:
    """Answer requests from ``input_stream`` until EOF; returns 0."""
    dispatcher = dispatcher if dispatcher is not None else Dispatcher()
    try:
        for line in input_stream:
            requests, error = decode_line(line)
            if error is not None:
                output_stream.write(encode({"error": error, "time": 0.0}) + "\n")
                output_stream.flush()
                continue
            for request in requests:
                response = dispatcher.handle(request)
                output_stream.write(encode(response) + "\n")
                output_stream.flush()
    except BrokenPipeError:
        # The reader went away (e.g. `... | head`); that ends the
        # session, it is not an error.
        pass
    return 0


#: In-flight bound of the pipelined batch runner: enough to keep every
#: shard's coalescing batches full, small enough never to trip the
#: per-shard queue bound (default depth 256) on a single-tenant run.
BATCH_WINDOW = 64


def run_batch(
    lines: Iterable[str],
    dispatcher: Optional[Any] = None,
    window: int = BATCH_WINDOW,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Serve every request in ``lines``; returns (responses, summary).

    Originally (PR 1) this drove the serial dispatcher one request at a
    time.  When ``dispatcher`` exposes the scheduler's non-blocking
    ``submit`` contract, requests are now pipelined through it under a
    bounded in-flight ``window`` instead — so ``repro batch`` gets shard
    concurrency, per-session coalescing, and (in process mode) real CPU
    parallelism, while responses still come back in request order.
    Ordering semantics are preserved: shards drain their queues FIFO and
    sessions are shard-pinned, so two requests naming the same session
    execute in submission order, exactly as the serial runner did.

    The summary reports what a throughput run cares about: request count,
    error count, total service time (sum of per-request ``time``), wall
    time, and the result-cache stats when the handler has an in-process
    workspace.
    """
    dispatcher = dispatcher if dispatcher is not None else Dispatcher()
    if window < 1:
        raise ValueError(f"window must be positive, got {window}")
    started = time.perf_counter()
    responses: List[Dict[str, Any]] = []
    errors = 0
    submit = getattr(dispatcher, "submit", None)
    in_flight: deque = deque()

    def drain(limit: int) -> None:
        nonlocal errors
        while len(in_flight) > limit:
            slot, future = in_flight.popleft()
            response = future.result()
            responses[slot] = response
            errors += "error" in response

    for line in lines:
        requests, error = decode_line(line)
        if error is not None:
            responses.append({"error": error, "time": 0.0})
            errors += 1
            continue
        for request in requests:
            if submit is None:
                response = dispatcher.handle(request)
                responses.append(response)
                errors += "error" in response
            else:
                responses.append({})  # placeholder, filled by drain()
                in_flight.append((len(responses) - 1, submit(request)))
                drain(window - 1)
    drain(0)
    wall = time.perf_counter() - started
    total_time = sum(r.get("time", 0.0) for r in responses)
    # A process-mode Scheduler has no parent-side workspace; its cache
    # stats live in the shard children (ask via the metrics command).
    workspace = getattr(dispatcher, "workspace", None)
    summary = {
        "requests": len(responses),
        "errors": errors,
        "seconds": round(total_time, 6),
        "wall_seconds": round(wall, 6),
        "pipelined": submit is not None,
        "requests_per_second": (
            round(len(responses) / total_time, 1) if total_time else 0.0
        ),
        "cache": (
            workspace.cache.stats.snapshot() if workspace is not None else {}
        ),
    }
    return responses, summary
