"""Incremental re-parsing across *input* edits: checkpoint, resume, converge.

The paper makes parser **generation** incremental under grammar edits; this
module closes the symmetric gap for **parsing** under input edits, in the
spirit of Plaisted's abstract-congruence view of reusing prior
derivations.  The observation is the same one that makes PAR-PARSE's
stacks cheap to copy: parse stacks are immutable cons chains, so the
configuration of the whole parser pool at a token boundary is captured by
a tuple of :class:`~repro.runtime.stacks.StackCell` pointers — an O(live
parsers) *checkpoint* that shares every cell with the run that produced
it.

:class:`IncrementalParser` runs the same sweep algorithm as
:class:`~repro.runtime.parallel.PoolParser` (shift-synchronized parser
pool, duplicate elision, sweep budget) but records the pool frontier at
every token boundary.  Given a splice edit ``(start, end, replacement)``
over the previous input, :meth:`IncrementalParser.reparse`

1. **resumes** from the last checkpoint at or before ``start`` instead of
   re-running the prefix (the frontier at boundary *i* depends only on
   ``tokens[:i]``),
2. re-parses the damaged region plus as much of the suffix as needed, and
3. **stops early** once the live frontier *re-converges* with the prior
   run's checkpoint at the corresponding boundary — from equal frontiers
   over an equal remaining input, every future sweep is identical, so the
   prior outcome's acceptance, derivations, failure record and remaining
   checkpoints are reused wholesale.

Convergence tests are cheap because a :class:`StackCell` *is* its own
O(1) signature (the incremental hash introduced for the compiled control
plane): comparing frontiers is a small set comparison, and the underlying
``__eq__`` walk stops at the first physically shared cell.

Two regimes fall out of the cell signature covering *trees as well as
states*:

* **Recognition** (``build_trees=False``) — cells carry no trees, so
  convergence is pure state-frontier equality and fires shortly after the
  damaged region for any edit, including length-changing ones.  This is
  the regime the service's hot re-submission traffic runs in.
* **Tree building** — cells carry hash-consed subtrees (the reparse
  reuses the prior run's :class:`~repro.runtime.forest.Forest`, so equal
  derivations are *identical* objects).  Convergence then certifies that
  derivations and token positions match exactly, which only happens for
  edits that rewrite a region into the same parse (e.g. re-submissions);
  a genuinely changed region keeps its differing subtree on the stack, so
  the run continues to the end — still skipping the whole prefix, and
  still correct by construction.

Checkpoints are **invalidated by grammar edits** through the existing
:meth:`Grammar.subscribe <repro.grammar.grammar.Grammar.subscribe>` hook:
every MODIFY bumps the parser's ``epoch``, and ``reparse`` falls back to
a full (checkpointed) parse when the base outcome's epoch, grammar
revision, owner, or tree mode no longer matches.  The fallback is the
correctness story: ``reparse`` never answers differently from parsing the
spliced input from scratch, it only answers faster when reuse is sound.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import END, Terminal
from ..lr.actions import Reduce, Shift
from .deadline import CHECK_MASK, active_deadline
from .errors import SweepLimitExceeded
from .forest import Forest, TreeNode
from .lr_parse import recover_start_trees
from .parallel import ParseFailure, ParseResult, ParseStats
from .stacks import StackCell

__all__ = ["Edit", "IncrementalOutcome", "IncrementalParser", "splice"]


class Edit:
    """One splice edit: replace ``tokens[start:end]`` with ``replacement``."""

    __slots__ = ("start", "end", "replacement")

    def __init__(
        self, start: int, end: int, replacement: Iterable[Terminal] = ()
    ) -> None:
        if start < 0 or end < start:
            raise ValueError(
                f"invalid edit range [{start}:{end}] — need 0 <= start <= end"
            )
        self.start = start
        self.end = end
        self.replacement: Tuple[Terminal, ...] = tuple(replacement)

    @property
    def delta(self) -> int:
        """How much the edit shifts every position after it."""
        return len(self.replacement) - (self.end - self.start)

    def apply(self, tokens: Sequence[Terminal]) -> Tuple[Terminal, ...]:
        """The spliced token sequence (the edit's *meaning*)."""
        if self.end > len(tokens):
            raise ValueError(
                f"edit range [{self.start}:{self.end}] exceeds the "
                f"{len(tokens)}-token input"
            )
        return (
            tuple(tokens[: self.start])
            + self.replacement
            + tuple(tokens[self.end :])
        )

    def key(self) -> Tuple[int, int, Tuple[str, ...]]:
        """Hashable identity for cache keys (names, not Terminal objects)."""
        return (self.start, self.end, tuple(t.name for t in self.replacement))

    def __repr__(self) -> str:
        names = " ".join(t.name for t in self.replacement)
        return f"Edit([{self.start}:{self.end}] -> {names!r})"


def splice(
    tokens: Sequence[Terminal], edit: Edit
) -> Tuple[Terminal, ...]:
    """Functional alias for :meth:`Edit.apply` (reads better in tests)."""
    return edit.apply(tokens)


#: Frontier at one token boundary: the live stacks *before* consuming the
#: token at that index (``None`` marks boundaries the run never reached).
Frontier = Optional[Tuple[StackCell, ...]]


class IncrementalOutcome:
    """A parse result plus everything a later ``reparse`` needs.

    ``frontiers[i]`` is the pool frontier before consuming token ``i``
    (``frontiers[0]`` is the start configuration, ``frontiers[n]`` the one
    facing the end-marker); entries after the point a rejected run died at
    are ``None``.  ``reuse`` describes how the outcome was obtained — see
    :meth:`IncrementalParser.reparse`.
    """

    __slots__ = (
        "result",
        "tokens",
        "frontiers",
        "build_trees",
        "forest",
        "version",
        "epoch",
        "owner",
        "reuse",
    )

    def __init__(
        self,
        result: ParseResult,
        tokens: Tuple[Terminal, ...],
        frontiers: List[Frontier],
        build_trees: bool,
        forest: Optional[Forest],
        version: int,
        epoch: int,
        owner: "IncrementalParser",
    ) -> None:
        self.result = result
        self.tokens = tokens
        self.frontiers = frontiers
        self.build_trees = build_trees
        self.forest = forest
        self.version = version
        self.epoch = epoch
        self.owner = owner
        self.reuse: Dict[str, Any] = {}

    @property
    def checkpoint_count(self) -> int:
        return sum(1 for frontier in self.frontiers if frontier is not None)

    def __repr__(self) -> str:
        return (
            f"IncrementalOutcome(accepted={self.result.accepted}, "
            f"tokens={len(self.tokens)}, "
            f"checkpoints={self.checkpoint_count})"
        )


class IncrementalParser:
    """PAR-PARSE with per-token checkpoints and splice-edit resume.

    Drives the same control protocol as :class:`PoolParser`
    (``start_state`` / ``action`` / ``goto``), so it runs over the lazy
    graph, the compiled control plane, or a dense table unchanged.  When
    constructed with a grammar it subscribes to it: every MODIFY bumps
    ``epoch``, which invalidates all previously issued checkpoints (a
    stale ``reparse`` silently becomes a full checkpointed parse).
    Call :meth:`close` to detach from the grammar's observer list.
    """

    def __init__(
        self,
        control: Any,
        grammar: Optional[Grammar] = None,
        max_sweep_steps: int = 1_000_000,
    ) -> None:
        self.control = control
        self.grammar = grammar
        self.max_sweep_steps = max_sweep_steps
        #: bumped by every grammar MODIFY (via ``Grammar.subscribe``)
        self.epoch = 0
        self._unsubscribe = (
            grammar.subscribe(self._on_modify) if grammar is not None else None
        )

    def _on_modify(self, _grammar: Grammar, _rule: Any, _added: bool) -> None:
        self.epoch += 1

    def close(self) -> None:
        """Detach from the grammar's observer chain."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- full (checkpointed) parsing ---------------------------------------

    def parse(
        self, tokens: Iterable[Terminal], build_trees: bool = True
    ) -> IncrementalOutcome:
        """A full parse that records a checkpoint at every token boundary."""
        sentence = tuple(tokens)
        frontiers: List[Frontier] = [None] * (len(sentence) + 1)
        frontiers[0] = (StackCell(self.control.start_state),)
        outcome = self._run(
            sentence,
            boundary=0,
            frontiers=frontiers,
            build_trees=build_trees,
            forest=Forest() if build_trees else None,
            base=None,
            delta=0,
            watch_from=None,
        )
        outcome.reuse.update(
            fallback=None,
            resumed_at=0,
            reused_prefix=0,
            parsed_tokens=outcome.reuse.pop("stopped_at"),
            total_tokens=len(sentence),
        )
        return outcome

    # -- incremental re-parsing --------------------------------------------

    def reparse(
        self,
        base: IncrementalOutcome,
        edit: Edit,
        build_trees: Optional[bool] = None,
        spliced: Optional[Sequence[Terminal]] = None,
    ) -> IncrementalOutcome:
        """Parse ``edit.apply(base.tokens)``, reusing ``base``'s work.

        Equivalent to ``parse(edit.apply(base.tokens))`` in every
        observable (acceptance, derivations, ambiguity, failure record) —
        proven by the differential property suite — but resumes from the
        last checkpoint before the edit and stops at frontier
        re-convergence.  When the base is unusable (grammar modified since
        it was produced, different tree mode, or a checkpoint from another
        parser) the method falls back to a full checkpointed parse;
        ``outcome.reuse["fallback"]`` names the reason.
        """
        if not isinstance(base, IncrementalOutcome):
            raise TypeError(
                f"reparse needs an IncrementalOutcome base, got {base!r}"
            )
        if build_trees is None:
            build_trees = base.build_trees
        # Callers that already spliced (Language.reparse needs the result
        # for its own bookkeeping) pass it in; recomputing would double
        # the O(n) splice on a path whose sweep often touches ~2 tokens.
        spliced = (
            tuple(spliced) if spliced is not None else edit.apply(base.tokens)
        )

        reason: Optional[str] = None
        if base.owner is not self:
            reason = "foreign-checkpoint"
        elif base.epoch != self.epoch or (
            self.grammar is not None and base.version != self.grammar.revision
        ):
            reason = "grammar-modified"
        elif base.build_trees != build_trees:
            reason = "mode-changed"
        if reason is not None:
            outcome = self.parse(spliced, build_trees=build_trees)
            outcome.reuse["fallback"] = reason
            return outcome

        n = len(spliced)
        forest = base.forest if build_trees else None
        if forest is not None and forest.size > 64 * (n + 16):
            # Chained tree-mode reparses share the base's hash-consing
            # forest (that is what makes identity-convergence O(1)), but
            # its memo tables retain every node ever built — a long edit
            # chain would grow memory linearly.  Past this cap the chain
            # restarts on a fresh forest: still correct (prefix resume
            # and run-out are forest-agnostic; resumed stacks keep their
            # old nodes alive only while reachable), only this turn's
            # tree-identity convergence is forfeited.
            forest = Forest()
        frontiers: List[Frontier] = [None] * (n + 1)
        # Checkpoints at boundaries <= start depend only on the unchanged
        # prefix, so they carry over verbatim; resume from the last one
        # the base run actually reached (a base that died before the edit
        # re-dies identically from there, at the same token).
        upto = min(edit.start, len(base.frontiers) - 1)
        frontiers[: upto + 1] = base.frontiers[: upto + 1]
        boundary = upto
        while boundary > 0 and frontiers[boundary] is None:
            boundary -= 1

        outcome = self._run(
            spliced,
            boundary=boundary,
            frontiers=frontiers,
            build_trees=build_trees,
            forest=forest,
            base=base,
            delta=edit.delta,
            watch_from=edit.start + len(edit.replacement),
        )
        outcome.reuse.update(
            fallback=None,
            resumed_at=boundary,
            reused_prefix=boundary,
            parsed_tokens=max(0, outcome.reuse.pop("stopped_at") - boundary),
            total_tokens=n,
        )
        return outcome

    # -- the sweep driver --------------------------------------------------

    def _run(
        self,
        sentence: Tuple[Terminal, ...],
        boundary: int,
        frontiers: List[Frontier],
        build_trees: bool,
        forest: Optional[Forest],
        base: Optional[IncrementalOutcome],
        delta: int,
        watch_from: Optional[int],
    ) -> IncrementalOutcome:
        """Sweep from ``boundary`` to acceptance, death, or convergence."""
        n = len(sentence)
        nonterminal_count = (
            len(self.grammar.nonterminals) if self.grammar is not None else 0
        )
        # Same structural guards as PoolParser._run: the depth bound
        # witnesses hidden left recursion, the sweep budget cyclicity.
        max_depth = (n + 3) * max(16, nonterminal_count + 2)

        stats = ParseStats()
        stats.max_live_parsers = 0
        accepted = False
        accepted_trees: Dict[TreeNode, None] = {}
        failure: Optional[ParseFailure] = None
        converged_at: Optional[int] = None

        frontier = frontiers[boundary]
        assert frontier is not None, "resume boundary has no checkpoint"
        position = boundary
        while position <= n:
            if (
                base is not None
                and watch_from is not None
                and position >= watch_from
            ):
                old_index = position - delta
                if 0 <= old_index < len(base.frontiers):
                    old_frontier = base.frontiers[old_index]
                    if (
                        old_frontier is not None
                        and len(old_frontier) == len(frontier)
                        and set(frontier) == set(old_frontier)
                    ):
                        converged_at = position
                        break
            symbol = sentence[position] if position < n else END
            next_frontier, dead_states, accepting = self._sweep(
                frontier, symbol, position, forest, max_depth, stats
            )
            for stack in accepting:
                accepted = True
                stats.accepting_parsers += 1
                if build_trees and forest is not None and self.grammar is not None:
                    for tree in recover_start_trees(
                        stack, self.grammar.start_rules(), forest
                    ):
                        accepted_trees.setdefault(tree)
            if not next_frontier:
                if not accepted:
                    failure = ParseFailure(
                        position, symbol, tuple(frontier), tuple(dead_states)
                    )
                break
            if position < n:
                frontiers[position + 1] = next_frontier
            frontier = next_frontier
            position += 1

        if converged_at is not None:
            assert base is not None
            # Equal frontiers + equal remaining input => every future
            # sweep is identical: adopt the base run's verdict and its
            # remaining checkpoints (shifted by the edit's delta).
            accepted = base.result.accepted
            if build_trees:
                accepted_trees = dict.fromkeys(base.result.trees)
            base_failure = base.result.failure
            if base_failure is not None:
                failure = ParseFailure(
                    base_failure.token_index + delta,
                    base_failure.symbol,
                    base_failure.stacks,
                    base_failure.states,
                )
            for index in range(converged_at + 1, n + 1):
                old_index = index - delta
                if 0 <= old_index < len(base.frontiers):
                    frontiers[index] = base.frontiers[old_index]

        result = ParseResult(
            accepted, tuple(accepted_trees), stats, failure
        )
        outcome = IncrementalOutcome(
            result,
            sentence,
            frontiers,
            build_trees,
            forest,
            self.grammar.revision if self.grammar is not None else 0,
            self.epoch,
            self,
        )
        # ``stopped_at``: the boundary the sweeps actually reached (the
        # convergence point, the death site, or the end) — parse/reparse
        # turn it into the user-facing ``parsed_tokens`` count.
        outcome.reuse = {
            "converged_at": converged_at,
            "stopped_at": min(position, n),
        }
        return outcome

    def _sweep(
        self,
        frontier: Tuple[StackCell, ...],
        symbol: Terminal,
        position: int,
        forest: Optional[Forest],
        max_depth: int,
        stats: ParseStats,
    ) -> Tuple[Tuple[StackCell, ...], List[Any], List[StackCell]]:
        """One shift-synchronized sweep (PAR-PARSE's inner loop).

        Returns ``(next frontier, dead states, accepting stacks)``.
        Semantics match ``PoolParser._run``'s general sweep exactly:
        reduces feed back into the current sweep behind a seen-set seeded
        with the initial configurations, shifts deduplicate into the next
        frontier, empty ACTION rows record the death site.
        """
        control_action = self.control.action
        control_goto = self.control.goto
        this_sweep: List[StackCell] = list(frontier)
        seen = set(this_sweep)
        next_seen: set = set()
        next_sweep: List[StackCell] = []
        dead_states: List[Any] = []
        accepting: List[StackCell] = []
        stats.sweeps += 1
        steps = 0
        deadline = active_deadline()
        if deadline is not None and deadline.expired():
            raise deadline.exceed(position)
        while this_sweep:
            stack = this_sweep.pop()
            steps += 1
            if steps > self.max_sweep_steps:
                raise SweepLimitExceeded(
                    f"more than {self.max_sweep_steps} parser steps on one "
                    f"input symbol (position {position}, {symbol!s}); "
                    f"the grammar is most likely cyclic",
                    position=position,
                    symbol=symbol,
                )
            if (
                deadline is not None
                and (steps & CHECK_MASK) == 0
                and deadline.expired()
            ):
                raise deadline.exceed(position)
            if stack.depth > max_depth:
                raise SweepLimitExceeded(
                    f"parse stack exceeded depth {max_depth} at position "
                    f"{position}; the grammar has hidden left recursion "
                    f"or is cyclic",
                    position=position,
                    symbol=symbol,
                )
            state = stack.state
            actions = control_action(state, symbol)
            stats.action_calls += 1
            if not actions:
                if state not in dead_states:
                    dead_states.append(state)
                continue
            if len(actions) > 1:
                stats.forks += len(actions) - 1
            for action in actions:
                if isinstance(action, Shift):
                    leaf = (
                        forest.leaf(symbol, position)
                        if forest is not None
                        else None
                    )
                    new_stack = StackCell(action.target, stack, leaf)
                    if new_stack in next_seen:
                        stats.duplicates_dropped += 1
                        continue
                    next_seen.add(new_stack)
                    next_sweep.append(new_stack)
                    stats.shifts += 1
                elif isinstance(action, Reduce):
                    rule = action.rule
                    below, children = stack.pop(len(rule.rhs))
                    goto_state = control_goto(below.state, rule.lhs)
                    node = (
                        forest.node(rule, children)
                        if forest is not None
                        else None
                    )
                    new_stack = StackCell(goto_state, below, node)
                    if new_stack in seen:
                        stats.duplicates_dropped += 1
                        continue
                    seen.add(new_stack)
                    this_sweep.append(new_stack)
                    stats.reduces += 1
                else:  # Accept
                    accepting.append(stack)
            live = len(this_sweep) + len(next_sweep)
            if live > stats.max_live_parsers:
                stats.max_live_parsers = live
        return tuple(next_sweep), dead_states, accepting
