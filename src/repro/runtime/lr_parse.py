"""LR-PARSE: the simple (deterministic) LR parser of section 3.1.

Works against any control object (graph-backed or table-backed).  As in
the paper, ``ACTION`` returns a *set* of actions and this parser *"can only
handle sets of at most one action correctly"* — more than one raises
:class:`~repro.runtime.errors.AmbiguousInputError`.

Extensions over the paper's listing, both used by the measurements:
the parser can build a parse tree (section 7 protocol: "the parsers
constructed a parse tree but did not print it") and can record a
:class:`~repro.runtime.trace.Trace` of its moves (Fig. 4.2).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import END, Terminal
from ..lr.actions import Accept, Reduce, Shift
from .errors import AmbiguousInputError, ParseError
from .forest import Forest, TreeNode
from .stacks import StackCell
from .trace import Trace, TraceEvent


class DetParseResult:
    """Outcome of a deterministic parse."""

    __slots__ = ("accepted", "tree", "consumed")

    def __init__(self, accepted: bool, tree: Optional[TreeNode], consumed: int) -> None:
        self.accepted = accepted
        self.tree = tree
        self.consumed = consumed

    def __bool__(self) -> bool:
        return self.accepted

    def __repr__(self) -> str:
        return f"DetParseResult(accepted={self.accepted}, consumed={self.consumed})"


def recover_start_trees(
    stack: StackCell,
    start_rules: Sequence[Rule],
    forest: Forest,
) -> List[TreeNode]:
    """Build START-rule trees from the cells on top of an accepting stack.

    When ACTION answers 'accept', the top ``len(beta)`` cells hold the
    trees of some ``START ::= beta``'s body.  Several START rules can match
    simultaneously (that is sentence-level ambiguity between roots).
    """
    trees: List[TreeNode] = []
    for rule in start_rules:
        arity = len(rule.rhs)
        if stack.depth - 1 < arity:
            continue
        cells: List[StackCell] = []
        cell: Optional[StackCell] = stack
        for _ in range(arity):
            assert cell is not None
            cells.append(cell)
            cell = cell.below
        cells.reverse()
        children = [c.tree for c in cells]
        if any(child is None for child in children):
            continue
        if all(
            child.symbol == expected
            for child, expected in zip(children, rule.rhs)
        ):
            trees.append(forest.node(rule, children))
    return trees


class SimpleLRParser:
    """The paper's LR-PARSE, packaged as a reusable object.

    Parameters
    ----------
    control:
        Provides ``start_state``, ``action(state, terminal)`` and
        ``goto(state, nonterminal)``.
    grammar:
        Optional; enables START-rule tree recovery at accept time.  Without
        it the tree of the last recognized body symbol is returned.
    """

    def __init__(self, control: Any, grammar: Optional[Grammar] = None) -> None:
        self.control = control
        self.grammar = grammar

    def recognize(self, tokens: Iterable[Terminal]) -> bool:
        try:
            return self.parse(tokens, build_tree=False).accepted
        except ParseError:
            return False

    def parse(
        self,
        tokens: Iterable[Terminal],
        build_tree: bool = True,
        trace: Optional[Trace] = None,
    ) -> DetParseResult:
        """Run LR-PARSE over ``tokens`` (the end-marker is appended here)."""
        sentence: List[Terminal] = list(tokens)
        sentence.append(END)
        forest = Forest() if build_tree else None

        stack = StackCell(self.control.start_state)
        position = 0
        symbol = sentence[position]

        while True:
            state = stack.state
            actions = self.control.action(state, symbol)
            if not actions:
                # the paper's error action: an empty action set
                raise ParseError(
                    f"no action in state {_uid(state)} on {symbol!s} "
                    f"at position {position}",
                    position=position,
                    symbol=symbol,
                )
            if len(actions) > 1:
                raise AmbiguousInputError(
                    f"{len(actions)} possible actions in state {_uid(state)} "
                    f"on {symbol!s}; LR-PARSE requires a deterministic table",
                    position=position,
                    symbol=symbol,
                )
            action = actions[0]

            if isinstance(action, Shift):
                leaf = forest.leaf(symbol, position) if forest else None
                stack = stack.push(action.target, leaf)
                if trace is not None:
                    trace.record(
                        TraceEvent(
                            "shift",
                            state,
                            symbol=symbol,
                            target=action.target,
                            position=position,
                        )
                    )
                position += 1
                symbol = sentence[position]
            elif isinstance(action, Reduce):
                rule = action.rule
                below, children = stack.pop(len(rule.rhs))
                goto_state = self.control.goto(below.state, rule.lhs)
                node = forest.node(rule, children) if forest else None
                stack = below.push(goto_state, node)
                if trace is not None:
                    trace.record(
                        TraceEvent(
                            "reduce", state, rule=rule, target=goto_state, position=position
                        )
                    )
            else:
                assert isinstance(action, Accept)
                if trace is not None:
                    trace.record(TraceEvent("accept", state, position=position))
                tree = self._final_tree(stack, forest) if forest else None
                return DetParseResult(True, tree, consumed=position)

    def _final_tree(self, stack: StackCell, forest: Forest) -> Optional[TreeNode]:
        if self.grammar is not None:
            trees = recover_start_trees(stack, self.grammar.start_rules(), forest)
            if len(trees) > 1:
                raise AmbiguousInputError(
                    "multiple START rules match the accepted input"
                )
            if trees:
                return trees[0]
        return stack.tree


def _uid(state: Any) -> Any:
    return getattr(state, "uid", state)
