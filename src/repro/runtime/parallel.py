"""PAR-PARSE: the (pseudo-)parallel LR parser of section 3.2.

A dynamically varying pool of simple LR parsers runs over the input.  All
parsers are synchronized on shift actions: the pool ``this_sweep`` holds
parsers that still have to act on the current symbol, ``next_sweep`` those
already waiting for the next one.  When ``ACTION`` returns several actions
the parser is *copied* per action — an O(1) operation because parse stacks
are shared cons chains (:mod:`repro.runtime.stacks`).

Deviations from the paper's listing, each deliberate and documented:

* **Tree building.**  The listing only recognizes; the measurement protocol
  of section 7 builds parse trees, so shift pushes a leaf and reduce pushes
  a hash-consed :class:`~repro.runtime.forest.ParseNode`.
* **Duplicate-parser elision.**  Two parsers whose stacks carry the same
  states *and* the same trees are interchangeable, so only one is kept.
  This loses nothing (their futures are identical) and keeps converging
  ambiguous reductions from multiplying the pool.
* **Sweep budget.**  Cyclic grammars (``A ::= A``) can reduce forever
  without consuming input.  Tomita's algorithm — and therefore IPG —
  restricts itself to finitely ambiguous grammars (section 2.1); the
  budget raises :class:`~repro.runtime.errors.SweepLimitExceeded` instead
  of hanging when that restriction is violated.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import END, Terminal
from ..lr.actions import Accept, Reduce, Shift
from ..lr.compiled import STEP_REDUCE, STEP_SHIFT, encode_step
from ..lr.states import ItemSet
from .deadline import CHECK_MASK, active_deadline
from .errors import SweepLimitExceeded
from .forest import Forest, TreeNode
from .stacks import StackCell
from .trace import Trace, TraceEvent


class ParseStats:
    """Work counters for one PAR-PARSE run (reported by the benches)."""

    __slots__ = (
        "sweeps",
        "action_calls",
        "shifts",
        "reduces",
        "forks",
        "max_live_parsers",
        "duplicates_dropped",
        "accepting_parsers",
    )

    def __init__(self) -> None:
        self.sweeps = 0
        self.action_calls = 0
        self.shifts = 0
        self.reduces = 0
        self.forks = 0
        self.max_live_parsers = 1
        self.duplicates_dropped = 0
        self.accepting_parsers = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"ParseStats({self.snapshot()})"


class ParseFailure:
    """Where (and in which configurations) a rejected parse died.

    ``token_index`` indexes the *input* token the pool could not act on;
    an index equal to the input length means the pool died on the
    end-marker (unexpected end of input).  ``stacks`` are the parser
    stacks alive at the *start* of the fatal sweep — replaying their
    (lookahead-independent) LR(0) reduce chains visits every state the
    sweep could reach, whose shift terminals are exactly the viable
    continuations a diagnostic should report.  ``states`` are the death
    sites themselves (states whose ACTION row was empty on ``symbol``).
    """

    __slots__ = ("token_index", "symbol", "stacks", "states")

    def __init__(
        self,
        token_index: int,
        symbol: Terminal,
        stacks: Tuple = (),
        states: Tuple = (),
    ) -> None:
        self.token_index = token_index
        self.symbol = symbol
        self.stacks = stacks
        self.states = states

    def __repr__(self) -> str:
        return (
            f"ParseFailure(token_index={self.token_index}, "
            f"symbol={self.symbol!s}, stacks={len(self.stacks)})"
        )


class ParseResult:
    """Outcome of a parallel parse.

    ``trees`` holds one root per *distinct* accepted derivation; an
    unambiguous sentence yields exactly one, an ambiguous one several.
    ``accepted`` is the paper's return value: at least one simple parser
    accepted.  On rejection, ``failure`` records where the pool died
    (:class:`ParseFailure`); it is ``None`` for accepted inputs.
    """

    __slots__ = ("accepted", "trees", "stats", "failure")

    def __init__(
        self,
        accepted: bool,
        trees: Tuple[TreeNode, ...],
        stats: ParseStats,
        failure: Optional[ParseFailure] = None,
    ) -> None:
        self.accepted = accepted
        self.trees = trees
        self.stats = stats
        self.failure = failure

    @property
    def is_ambiguous(self) -> bool:
        return len(self.trees) > 1

    @property
    def tree(self) -> Optional[TreeNode]:
        """The unique tree, if there is exactly one."""
        return self.trees[0] if len(self.trees) == 1 else None

    def __bool__(self) -> bool:
        return self.accepted

    def __repr__(self) -> str:
        return (
            f"ParseResult(accepted={self.accepted}, "
            f"trees={len(self.trees)}, sweeps={self.stats.sweeps})"
        )


class _Parser:
    """The paper's LRparser object: a single field, the stack."""

    __slots__ = ("stack",)

    def __init__(self, stack: StackCell) -> None:
        self.stack = stack


class PoolParser:
    """PAR-PARSE packaged as a reusable engine.

    Parameters
    ----------
    control:
        ``start_state`` / ``action`` / ``goto`` provider; pass a lazy
        control to get generation-during-parsing (section 5).
    grammar:
        Needed for START-rule tree recovery; optional in recognition mode.
    max_sweep_steps:
        Work budget per input symbol; exceeding it means the grammar is
        cyclic (infinitely ambiguous) and raises ``SweepLimitExceeded``.
    """

    def __init__(
        self,
        control: Any,
        grammar: Optional[Grammar] = None,
        max_sweep_steps: int = 1_000_000,
        legacy_signatures: bool = False,
    ) -> None:
        self.control = control
        self.grammar = grammar
        self.max_sweep_steps = max_sweep_steps
        #: Use the original O(depth) tuple signatures instead of the O(1)
        #: incremental cell hashes.  Only the hot-path benchmark sets
        #: this, to keep the seed's behaviour measurable as a baseline.
        self.legacy_signatures = legacy_signatures

    # -- public API ------------------------------------------------------

    def recognize(self, tokens: Iterable[Terminal]) -> bool:
        return self._run(tokens, build_trees=False, trace=None).accepted

    def recognize_result(self, tokens: Iterable[Terminal]) -> ParseResult:
        """Recognition that keeps the full result (stats and failure)."""
        return self._run(tokens, build_trees=False, trace=None)

    def parse(
        self,
        tokens: Iterable[Terminal],
        trace: Optional[Trace] = None,
    ) -> ParseResult:
        return self._run(tokens, build_trees=True, trace=trace)

    # -- the algorithm ---------------------------------------------------

    def _run(
        self,
        tokens: Iterable[Terminal],
        build_trees: bool,
        trace: Optional[Trace],
    ) -> ParseResult:
        sentence: List[Terminal] = list(tokens)
        sentence.append(END)

        stats = ParseStats()
        forest = Forest() if build_trees else None
        accepted = False
        # Keyed on the forest's hash-consed nodes themselves: within one
        # run the forest interns equal derivations into the *same* object,
        # so node identity — not a transient id() — is the dedup key, and
        # equal trees from distinct accepting parsers cannot double-report.
        accepted_trees: Dict[TreeNode, None] = {}

        # Structural termination guard: for a non-cyclic grammar, the LR
        # stack holds at most one cell per consumed token plus a bounded
        # run of epsilon-derived non-terminals between tokens.  A stack
        # deeper than that witnesses hidden left recursion / a cyclic
        # grammar — the configurations Tomita's algorithm excludes — and
        # raising beats growing without bound.
        nonterminal_count = (
            len(self.grammar.nonterminals) if self.grammar is not None else 0
        )
        max_depth = (len(sentence) + 2) * max(16, nonterminal_count + 2)

        start_parser = _Parser(StackCell(self.control.start_state))
        next_sweep: List[_Parser] = [start_parser]
        position = 0

        # Hot-loop locals: the ACTION/GOTO loop below runs once per parser
        # step under warm service traffic, so attribute lookups that are
        # invariant across the whole run are hoisted out of it.
        control_action = self.control.action
        control_goto = self.control.goto
        max_sweep_steps = self.max_sweep_steps
        sentence_length = len(sentence)
        legacy = self.legacy_signatures
        tracing = trace is not None
        # Cooperative request deadline (service layer).  Read once: the
        # scope installed by the dispatcher outlives the whole run, and a
        # single local makes the per-step poll a None check.
        deadline = active_deadline()
        # The deterministic stretch (below) bails back to the general pool
        # machinery after this many reduces on one symbol: a cyclic
        # grammar loops without net stack growth, and only the general
        # sweep's seen-set can converge it the way the paper's duplicate
        # elision does.  Scaled generously so legitimate unit/epsilon
        # cascades never bail.
        fast_mode = not tracing and not legacy
        fast_reduce_budget = 64 + 4 * (nonterminal_count + 2)
        # Zero-call probe surface: a compiled (or dense-table) control
        # exposes its pre-decoded step cells, so the fast stretch reads
        # memo dicts directly instead of paying a method call per step;
        # the hits taken this way are credited back below.  Warm-started
        # controls (states adopted from repro.lr.tablestore, step cells
        # replayed from stored hot-terminal lists) land here identically
        # — the probe surface cannot tell restored cells from computed
        # ones.
        step_cache = getattr(self.control, "fast_step_cache", None)
        credit_hits = getattr(self.control, "count_probe_hits", None)
        steps_get = step_cache.get if step_cache is not None else None
        # A compiled control wraps graph states (ItemSets with a
        # transitions dict), so GOTO can be probed directly as well.
        graph_states = getattr(self.control, "action_cache", None) is not None
        # Local step counters (both loops), folded into ``stats`` before
        # returning — attribute increments are hot-loop costs too.
        fast_calls = 0
        fast_shifts = 0
        fast_reduces = 0
        fast_hits = 0
        n_action_calls = 0
        n_shifts = 0
        n_reduces = 0
        n_forks = 0
        n_duplicates = 0
        n_sweeps = 0
        max_live = 1
        # States whose ACTION row came back empty during the current
        # general sweep.  Only the last sweep's list survives the run; if
        # the pool dies it is exactly the set of death sites a diagnostic
        # reads the expected terminals off.  Allocated lazily: the happy
        # path never touches it.
        dead_states: Optional[List[Any]] = None
        # The stacks alive at the start of the current sweep, for the
        # failure record.  Stacks are immutable cons cells, so keeping
        # references is O(live parsers) per symbol and shares everything.
        sweep_stacks: List[StackCell] = [start_parser.stack]

        while next_sweep and position < sentence_length:
            symbol = sentence[position]
            position += 1
            n_sweeps += 1
            if deadline is not None and deadline.expired():
                raise deadline.exceed(position - 1)
            dead_states = None
            sweep_stacks = [p.stack for p in next_sweep]

            # ACTION result carried from the stretch into the general
            # sweep on a bail, so controls without a step cache don't
            # compute the same conflicted cell twice.
            prefetched = None
            prefetched_state = None

            # -- deterministic stretch --------------------------------------
            # Elkhound-style LR/GLR hybrid: while exactly one parser is
            # live and ACTION is single-valued, run a plain LR loop across
            # symbols with no forking, no signature sets, and no pool
            # bookkeeping.  Warm deterministic traffic spends almost all
            # its steps here; the general machinery below takes over the
            # moment a conflict, an error, or a suspected cycle appears.
            if fast_mode and len(next_sweep) == 1:
                stack = next_sweep[0].stack
                # Config at the start of the sweep currently being
                # processed (one store per shift): the failure record
                # must see the pre-reduce-chain stack, not the bail point.
                stretch_start = stack
                outcome = 0  # 0 = bail to the general machinery
                reduces_here = 0
                while True:
                    state = stack.state
                    step = None
                    if steps_get is not None:
                        # The step cache is keyed by the state object
                        # itself (identity hash): one dict probe yields
                        # the pre-decoded deterministic step.
                        per_state = steps_get(state)
                        if per_state is not None:
                            step = per_state.get(symbol)
                            # A False (conflicted) cell bails to the
                            # general machinery, whose ACTION call scores
                            # the hit — crediting it here too would
                            # double-count the same logical lookup.
                            if step is not None and step is not False:
                                fast_hits += 1
                    if step is None:
                        # Cold cell (or a control without a step cache):
                        # the ACTION call populates compiled caches as a
                        # side effect, and the inline encode keeps the
                        # stretch available to every control.
                        actions = control_action(state, symbol)
                        step = encode_step(actions)
                        if step is False:
                            # Hand the computed cell to the general sweep
                            # rather than recomputing it there.
                            prefetched = actions
                            prefetched_state = state
                            break
                    if step is False:
                        break  # fork or error: the pool machinery decides
                    fast_calls += 1
                    kind = step[0]
                    if kind == STEP_SHIFT:
                        leaf = forest.leaf(symbol, position - 1) if forest else None
                        stack = StackCell(step[1], stack, leaf)
                        fast_shifts += 1
                        # A shift never consumes the end-marker ($ cannot
                        # occur in a rule), so the next position is valid:
                        # stay in the stretch and fetch the next symbol.
                        symbol = sentence[position]
                        position += 1
                        n_sweeps += 1
                        if (
                            deadline is not None
                            and (position & CHECK_MASK) == 0
                            and deadline.expired()
                        ):
                            raise deadline.exceed(position - 1)
                        reduces_here = 0
                        stretch_start = stack
                        continue
                    if kind == STEP_REDUCE:
                        rule = step[1]
                        arity = step[2]
                        lhs = step[3]
                        if forest is None:
                            below = stack
                            for _ in range(arity):
                                if below is None:
                                    raise IndexError(
                                        "pop past the bottom of the parse stack"
                                    )
                                below = below.below
                            if below is None:
                                raise IndexError("pop removed the start state")
                            node = None
                        else:
                            below, children = stack.pop(arity)
                            node = forest.node(rule, children)
                        if graph_states:
                            # Appendix A: the state below a reduction is
                            # complete, so GOTO is this one dict probe;
                            # anything irregular (None, the accept
                            # sentinel) goes through the control's strict
                            # error handling.
                            goto_state = below.state.transitions.get(lhs)
                            if goto_state.__class__ is not ItemSet:
                                goto_state = control_goto(below.state, lhs)
                        else:
                            goto_state = control_goto(below.state, lhs)
                        stack = StackCell(goto_state, below, node)
                        fast_reduces += 1
                        reduces_here += 1
                        if stack.depth > max_depth:
                            raise SweepLimitExceeded(
                                f"parse stack exceeded depth {max_depth} at "
                                f"position {position - 1}; the grammar has "
                                f"hidden left recursion or is cyclic",
                                position=position - 1,
                                symbol=symbol,
                            )
                        if reduces_here > fast_reduce_budget:
                            break  # possible cycle: let the seen-set decide
                        continue
                    # STEP_ACCEPT
                    accepted = True
                    stats.accepting_parsers += 1
                    if forest is not None and self.grammar is not None:
                        from .lr_parse import recover_start_trees

                        for tree in recover_start_trees(
                            stack, self.grammar.start_rules(), forest
                        ):
                            accepted_trees.setdefault(tree)
                    outcome = 2  # parser retired on accept
                    break
                if outcome == 2:
                    next_sweep = []
                    continue
                next_sweep = [_Parser(stack)]
                sweep_stacks = [stretch_start]
                # bail: fall through; the general sweep below re-reads
                # ACTION for this symbol (its call is the one counted, and
                # the direct probe above was already credited as a hit).

            this_sweep, next_sweep = next_sweep, []

            # NOTE: the general sweep below is mirrored (minus the fast
            # stretch, tracing, and legacy signatures) by
            # IncrementalParser._sweep in repro/runtime/incremental.py —
            # a semantic change here (seen-set seeding, budget/depth
            # guards, dead-state recording, duplicate elision) must be
            # applied there too, or reparse diverges from parse.
            # tests/property/test_incremental_reparse.py pins the
            # equivalence differentially.

            # Configurations already alive in this sweep; used to drop
            # exact duplicates produced by converging forks.  A stack cell
            # *is* its signature (incrementally hashed at push time), so
            # membership tests cost O(1) instead of an O(depth) tuple walk.
            seen: Set[Any]
            next_seen: Set[Any] = set()
            if legacy:
                seen = {
                    self._legacy_signature(p.stack, build_trees) for p in this_sweep
                }
            else:
                seen = {p.stack for p in this_sweep}

            steps = 0
            while this_sweep:
                parser = this_sweep.pop()
                steps += 1
                if steps > max_sweep_steps:
                    raise SweepLimitExceeded(
                        f"more than {self.max_sweep_steps} parser steps on one "
                        f"input symbol (position {position - 1}, {symbol!s}); "
                        f"the grammar is most likely cyclic",
                        position=position - 1,
                        symbol=symbol,
                    )
                if (
                    deadline is not None
                    and (steps & CHECK_MASK) == 0
                    and deadline.expired()
                ):
                    raise deadline.exceed(position - 1)
                stack = parser.stack
                state = stack.state
                if stack.depth > max_depth:
                    raise SweepLimitExceeded(
                        f"parse stack exceeded depth {max_depth} at position "
                        f"{position - 1}; the grammar has hidden left "
                        f"recursion or is cyclic",
                        position=position - 1,
                        symbol=symbol,
                    )
                if prefetched is not None and state is prefetched_state:
                    actions = prefetched
                    prefetched = None
                else:
                    actions = control_action(state, symbol)
                n_action_calls += 1
                if not actions:
                    # The paper's error action: this parser dies here.  The
                    # state is remembered so a rejection can report what
                    # *would* have been accepted instead.
                    if dead_states is None:
                        dead_states = []
                    if state not in dead_states:
                        dead_states.append(state)
                    continue
                if len(actions) > 1:
                    n_forks += len(actions) - 1

                for action in actions:
                    # "for each action a copy of the parser is made and the
                    # action is performed on this copy" — copying is just
                    # reusing the immutable stack pointer.
                    if isinstance(action, Shift):
                        leaf = forest.leaf(symbol, position - 1) if forest else None
                        new_stack = StackCell(action.target, stack, leaf)
                        sig = (
                            new_stack
                            if not legacy
                            else self._legacy_signature(new_stack, build_trees)
                        )
                        if sig in next_seen:
                            n_duplicates += 1
                            continue
                        next_seen.add(sig)
                        next_sweep.append(_Parser(new_stack))
                        n_shifts += 1
                        if tracing:
                            trace.record(
                                TraceEvent(
                                    "shift",
                                    state,
                                    symbol=symbol,
                                    target=action.target,
                                    position=position - 1,
                                )
                            )
                    elif isinstance(action, Reduce):
                        rule = action.rule
                        below, children = stack.pop(len(rule.rhs))
                        goto_state = control_goto(below.state, rule.lhs)
                        node = forest.node(rule, children) if forest else None
                        new_stack = StackCell(goto_state, below, node)
                        sig = (
                            new_stack
                            if not legacy
                            else self._legacy_signature(new_stack, build_trees)
                        )
                        if sig in seen:
                            n_duplicates += 1
                            continue
                        seen.add(sig)
                        this_sweep.append(_Parser(new_stack))
                        n_reduces += 1
                        if tracing:
                            trace.record(
                                TraceEvent(
                                    "reduce",
                                    state,
                                    rule=rule,
                                    target=goto_state,
                                    position=position - 1,
                                )
                            )
                    else:
                        assert isinstance(action, Accept)
                        accepted = True
                        stats.accepting_parsers += 1
                        if tracing:
                            trace.record(
                                TraceEvent("accept", state, position=position - 1)
                            )
                        if forest is not None and self.grammar is not None:
                            from .lr_parse import recover_start_trees

                            for tree in recover_start_trees(
                                parser.stack, self.grammar.start_rules(), forest
                            ):
                                accepted_trees.setdefault(tree)

                live = len(this_sweep) + len(next_sweep)
                if live > max_live:
                    max_live = live

        stats.sweeps = n_sweeps
        stats.action_calls = n_action_calls + fast_calls
        stats.shifts = n_shifts + fast_shifts
        stats.reduces = n_reduces + fast_reduces
        stats.forks = n_forks
        stats.duplicates_dropped = n_duplicates
        stats.max_live_parsers = max_live
        if fast_hits and credit_hits is not None:
            credit_hits(fast_hits)
        failure: Optional[ParseFailure] = None
        if not accepted:
            # position - 1 indexes the symbol of the final sweep; if that
            # symbol is the end-marker the index equals the input length.
            failure = ParseFailure(
                position - 1,
                symbol,
                tuple(sweep_stacks),
                tuple(dead_states or ()),
            )
        return ParseResult(accepted, tuple(accepted_trees), stats, failure)

    @staticmethod
    def _legacy_signature(stack: StackCell, build_trees: bool) -> Tuple:
        """The seed's O(depth) signature tuples (benchmark baseline only)."""
        return stack.full_signature() if build_trees else stack.signature()
