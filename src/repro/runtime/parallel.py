"""PAR-PARSE: the (pseudo-)parallel LR parser of section 3.2.

A dynamically varying pool of simple LR parsers runs over the input.  All
parsers are synchronized on shift actions: the pool ``this_sweep`` holds
parsers that still have to act on the current symbol, ``next_sweep`` those
already waiting for the next one.  When ``ACTION`` returns several actions
the parser is *copied* per action — an O(1) operation because parse stacks
are shared cons chains (:mod:`repro.runtime.stacks`).

Deviations from the paper's listing, each deliberate and documented:

* **Tree building.**  The listing only recognizes; the measurement protocol
  of section 7 builds parse trees, so shift pushes a leaf and reduce pushes
  a hash-consed :class:`~repro.runtime.forest.ParseNode`.
* **Duplicate-parser elision.**  Two parsers whose stacks carry the same
  states *and* the same trees are interchangeable, so only one is kept.
  This loses nothing (their futures are identical) and keeps converging
  ambiguous reductions from multiplying the pool.
* **Sweep budget.**  Cyclic grammars (``A ::= A``) can reduce forever
  without consuming input.  Tomita's algorithm — and therefore IPG —
  restricts itself to finitely ambiguous grammars (section 2.1); the
  budget raises :class:`~repro.runtime.errors.SweepLimitExceeded` instead
  of hanging when that restriction is violated.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import END, Terminal
from ..lr.actions import Accept, Reduce, Shift
from .errors import SweepLimitExceeded
from .forest import Forest, TreeNode
from .stacks import StackCell
from .trace import Trace, TraceEvent


class ParseStats:
    """Work counters for one PAR-PARSE run (reported by the benches)."""

    __slots__ = (
        "sweeps",
        "action_calls",
        "shifts",
        "reduces",
        "forks",
        "max_live_parsers",
        "duplicates_dropped",
        "accepting_parsers",
    )

    def __init__(self) -> None:
        self.sweeps = 0
        self.action_calls = 0
        self.shifts = 0
        self.reduces = 0
        self.forks = 0
        self.max_live_parsers = 1
        self.duplicates_dropped = 0
        self.accepting_parsers = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"ParseStats({self.snapshot()})"


class ParseResult:
    """Outcome of a parallel parse.

    ``trees`` holds one root per *distinct* accepted derivation; an
    unambiguous sentence yields exactly one, an ambiguous one several.
    ``accepted`` is the paper's return value: at least one simple parser
    accepted.
    """

    __slots__ = ("accepted", "trees", "stats")

    def __init__(
        self,
        accepted: bool,
        trees: Tuple[TreeNode, ...],
        stats: ParseStats,
    ) -> None:
        self.accepted = accepted
        self.trees = trees
        self.stats = stats

    @property
    def is_ambiguous(self) -> bool:
        return len(self.trees) > 1

    @property
    def tree(self) -> Optional[TreeNode]:
        """The unique tree, if there is exactly one."""
        return self.trees[0] if len(self.trees) == 1 else None

    def __bool__(self) -> bool:
        return self.accepted

    def __repr__(self) -> str:
        return (
            f"ParseResult(accepted={self.accepted}, "
            f"trees={len(self.trees)}, sweeps={self.stats.sweeps})"
        )


class _Parser:
    """The paper's LRparser object: a single field, the stack."""

    __slots__ = ("stack",)

    def __init__(self, stack: StackCell) -> None:
        self.stack = stack


class PoolParser:
    """PAR-PARSE packaged as a reusable engine.

    Parameters
    ----------
    control:
        ``start_state`` / ``action`` / ``goto`` provider; pass a lazy
        control to get generation-during-parsing (section 5).
    grammar:
        Needed for START-rule tree recovery; optional in recognition mode.
    max_sweep_steps:
        Work budget per input symbol; exceeding it means the grammar is
        cyclic (infinitely ambiguous) and raises ``SweepLimitExceeded``.
    """

    def __init__(
        self,
        control: Any,
        grammar: Optional[Grammar] = None,
        max_sweep_steps: int = 1_000_000,
    ) -> None:
        self.control = control
        self.grammar = grammar
        self.max_sweep_steps = max_sweep_steps

    # -- public API ------------------------------------------------------

    def recognize(self, tokens: Iterable[Terminal]) -> bool:
        return self._run(tokens, build_trees=False, trace=None).accepted

    def parse(
        self,
        tokens: Iterable[Terminal],
        trace: Optional[Trace] = None,
    ) -> ParseResult:
        return self._run(tokens, build_trees=True, trace=trace)

    # -- the algorithm ---------------------------------------------------

    def _run(
        self,
        tokens: Iterable[Terminal],
        build_trees: bool,
        trace: Optional[Trace],
    ) -> ParseResult:
        sentence: List[Terminal] = list(tokens)
        sentence.append(END)

        stats = ParseStats()
        forest = Forest() if build_trees else None
        accepted = False
        accepted_trees: Dict[int, TreeNode] = {}

        # Structural termination guard: for a non-cyclic grammar, the LR
        # stack holds at most one cell per consumed token plus a bounded
        # run of epsilon-derived non-terminals between tokens.  A stack
        # deeper than that witnesses hidden left recursion / a cyclic
        # grammar — the configurations Tomita's algorithm excludes — and
        # raising beats growing without bound.
        nonterminal_count = (
            len(self.grammar.nonterminals) if self.grammar is not None else 0
        )
        max_depth = (len(sentence) + 2) * max(16, nonterminal_count + 2)

        start_parser = _Parser(StackCell(self.control.start_state))
        next_sweep: List[_Parser] = [start_parser]
        position = 0

        while next_sweep and position < len(sentence):
            symbol = sentence[position]
            position += 1
            this_sweep, next_sweep = next_sweep, []
            stats.sweeps += 1

            # Signatures of configurations already alive in this sweep;
            # used to drop exact duplicates produced by converging forks.
            seen: Set[Tuple] = set()
            next_seen: Set[Tuple] = set()
            for parser in this_sweep:
                seen.add(self._signature(parser.stack, build_trees))

            steps = 0
            while this_sweep:
                parser = this_sweep.pop()
                steps += 1
                if steps > self.max_sweep_steps:
                    raise SweepLimitExceeded(
                        f"more than {self.max_sweep_steps} parser steps on one "
                        f"input symbol (position {position - 1}, {symbol!s}); "
                        f"the grammar is most likely cyclic",
                        position=position - 1,
                        symbol=symbol,
                    )
                state = parser.stack.state
                if parser.stack.depth > max_depth:
                    raise SweepLimitExceeded(
                        f"parse stack exceeded depth {max_depth} at position "
                        f"{position - 1}; the grammar has hidden left "
                        f"recursion or is cyclic",
                        position=position - 1,
                        symbol=symbol,
                    )
                actions = self.control.action(state, symbol)
                stats.action_calls += 1
                if len(actions) > 1:
                    stats.forks += len(actions) - 1

                for action in actions:
                    # "for each action a copy of the parser is made and the
                    # action is performed on this copy" — copying is just
                    # reusing the immutable stack pointer.
                    if isinstance(action, Shift):
                        leaf = forest.leaf(symbol, position - 1) if forest else None
                        new_stack = parser.stack.push(action.target, leaf)
                        sig = self._signature(new_stack, build_trees)
                        if sig in next_seen:
                            stats.duplicates_dropped += 1
                            continue
                        next_seen.add(sig)
                        next_sweep.append(_Parser(new_stack))
                        stats.shifts += 1
                        if trace is not None:
                            trace.record(
                                TraceEvent(
                                    "shift", state, symbol=symbol, target=action.target
                                )
                            )
                    elif isinstance(action, Reduce):
                        rule = action.rule
                        below, children = parser.stack.pop(len(rule.rhs))
                        goto_state = self.control.goto(below.state, rule.lhs)
                        node = forest.node(rule, children) if forest else None
                        new_stack = below.push(goto_state, node)
                        sig = self._signature(new_stack, build_trees)
                        if sig in seen:
                            stats.duplicates_dropped += 1
                            continue
                        seen.add(sig)
                        this_sweep.append(_Parser(new_stack))
                        stats.reduces += 1
                        if trace is not None:
                            trace.record(
                                TraceEvent(
                                    "reduce", state, rule=rule, target=goto_state
                                )
                            )
                    else:
                        assert isinstance(action, Accept)
                        accepted = True
                        stats.accepting_parsers += 1
                        if trace is not None:
                            trace.record(TraceEvent("accept", state))
                        if forest is not None and self.grammar is not None:
                            from .lr_parse import recover_start_trees

                            for tree in recover_start_trees(
                                parser.stack, self.grammar.start_rules(), forest
                            ):
                                accepted_trees.setdefault(id(tree), tree)

                live = len(this_sweep) + len(next_sweep)
                if live > stats.max_live_parsers:
                    stats.max_live_parsers = live

        return ParseResult(accepted, tuple(accepted_trees.values()), stats)

    @staticmethod
    def _signature(stack: StackCell, build_trees: bool) -> Tuple:
        return stack.full_signature() if build_trees else stack.signature()
