"""Parse tracing: the move-by-move record of Fig. 4.2.

The paper illustrates LR parsing by showing *"the moves of a parser when
parsing the sentence 'true or false'"*.  A :class:`Trace` collects those
moves as structured events so tests can assert the exact sequence and the
examples can print it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..grammar.rules import Rule
from ..grammar.symbols import Terminal


class TraceEvent:
    """One parser move."""

    __slots__ = ("kind", "state", "symbol", "rule", "target", "parser_id", "position")

    def __init__(
        self,
        kind: str,
        state: Any,
        symbol: Optional[Terminal] = None,
        rule: Optional[Rule] = None,
        target: Any = None,
        parser_id: int = 0,
        position: Optional[int] = None,
    ) -> None:
        self.kind = kind  # "shift" | "reduce" | "goto" | "accept" | "die" | "fork"
        self.state = state
        self.symbol = symbol
        self.rule = rule
        self.target = target
        self.parser_id = parser_id
        #: index of the input token the move consumed/looked at, if known
        self.position = position

    def to_dict(self) -> Dict[str, Any]:
        """The event as JSON-able data (states by uid, symbols by name)."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "state": _state_id(self.state),
            "parser_id": self.parser_id,
        }
        if self.symbol is not None:
            payload["symbol"] = str(self.symbol)
        if self.rule is not None:
            payload["rule"] = str(self.rule)
        if self.target is not None:
            payload["target"] = _state_id(self.target)
        if self.position is not None:
            payload["position"] = self.position
        return payload

    def __repr__(self) -> str:
        core = f"{self.kind} state={_state_id(self.state)}"
        if self.symbol is not None:
            core += f" on={self.symbol}"
        if self.rule is not None:
            core += f" rule=({self.rule})"
        if self.target is not None:
            core += f" -> {_state_id(self.target)}"
        return f"<{core}>"


def _state_id(state: Any) -> Any:
    return getattr(state, "uid", state)


class Trace:
    """An append-only list of events with convenience views."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self.events.append(event)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(event.kind for event in self.events)

    def moves(self) -> Tuple[Tuple[str, Any], ...]:
        """(kind, state-id) pairs — the granularity of Fig. 4.2."""
        return tuple(
            (event.kind, _state_id(event.state)) for event in self.events
        )

    def render(self) -> str:
        return "\n".join(repr(event) for event in self.events)

    def __len__(self) -> int:
        return len(self.events)
