"""A graph-structured-stack (GSS) GLR recognizer.

The paper's PAR-PARSE keeps one linear stack per parser, the simplified
presentation of Tomita's algorithm [Tom85].  Tomita's full algorithm — and
Rekers' refinement [Rek87] the authors' implementation is based on — merges
parsers that reach the same state on the same input position into a single
*graph-structured stack* node, so the number of live stack tops is bounded
by the number of parser states instead of growing with the amount of
ambiguity.

This module implements that merged representation as a *recognizer* (no
tree construction), with Nozohoor-Farshi's re-examination fix so that
reductions discovered after an edge is added to an existing node are not
missed.  It exists for two purposes:

* the ablation bench ``bench_ablation_pool_vs_gss`` quantifies what the
  paper's simplification costs on ambiguous inputs, and
* property tests cross-check PAR-PARSE, GSS and Earley on random grammars.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

from ..grammar.symbols import END, Terminal
from ..lr.actions import Accept, Reduce, Shift
from .deadline import CHECK_MASK, active_deadline
from .errors import SweepLimitExceeded


class GSSNode:
    """One stack top (or interior vertex) of the graph-structured stack."""

    __slots__ = ("state", "edges")

    def __init__(self, state: Any) -> None:
        self.state = state
        #: predecessor vertices (the cells "below" this one)
        self.edges: List["GSSNode"] = []

    def __repr__(self) -> str:
        return f"GSSNode(state={getattr(self.state, 'uid', self.state)}, {len(self.edges)} edges)"


def _key(state: Any) -> Any:
    """Hashable identity of a parser state (works for item sets and ints)."""
    uid = getattr(state, "uid", None)
    return uid if uid is not None else state


class GSSParser:
    """GLR recognition over a merged stack graph."""

    def __init__(self, control: Any, max_steps_per_token: int = 1_000_000) -> None:
        self.control = control
        self.max_steps_per_token = max_steps_per_token
        #: filled in by :meth:`recognize`; exposed for the ablation bench
        self.last_stats: Dict[str, int] = {}

    def recognize(self, tokens: Iterable[Terminal]) -> bool:
        sentence: List[Terminal] = list(tokens)
        sentence.append(END)

        nodes_created = 0
        edges_created = 0
        reductions_applied = 0

        start_node = GSSNode(self.control.start_state)
        nodes_created += 1
        frontier: Dict[Any, GSSNode] = {_key(start_node.state): start_node}
        accepted = False
        deadline = active_deadline()

        for position, symbol in enumerate(sentence):
            if not frontier:
                break
            if deadline is not None and deadline.expired():
                raise deadline.exceed(position)

            worklist: List[GSSNode] = list(frontier.values())
            processed: Set[int] = set()
            applied: Set[Tuple] = set()
            shifts: List[Tuple[GSSNode, Any]] = []
            shift_seen: Set[Tuple[int, Any]] = set()
            steps = 0

            while worklist:
                node = worklist.pop()
                steps += 1
                if steps > self.max_steps_per_token:
                    raise SweepLimitExceeded(
                        f"GSS work budget exceeded at position {position}",
                        position=position,
                        symbol=symbol,
                    )
                if (
                    deadline is not None
                    and (steps & CHECK_MASK) == 0
                    and deadline.expired()
                ):
                    raise deadline.exceed(position)
                processed.add(id(node))

                for action in self.control.action(node.state, symbol):
                    if isinstance(action, Shift):
                        shift_key = (id(node), _key(action.target))
                        if shift_key not in shift_seen:
                            shift_seen.add(shift_key)
                            shifts.append((node, action.target))
                    elif isinstance(action, Accept):
                        accepted = True
                    else:
                        assert isinstance(action, Reduce)
                        rule = action.rule
                        for path in _paths(node, len(rule.rhs)):
                            reduction_key = (
                                id(node),
                                rule,
                                tuple(id(p) for p in path),
                            )
                            if reduction_key in applied:
                                continue
                            applied.add(reduction_key)
                            reductions_applied += 1
                            base = path[-1]
                            goto_state = self.control.goto(base.state, rule.lhs)
                            key = _key(goto_state)
                            target = frontier.get(key)
                            if target is None:
                                target = GSSNode(goto_state)
                                nodes_created += 1
                                target.edges.append(base)
                                edges_created += 1
                                frontier[key] = target
                                worklist.append(target)
                            elif base not in target.edges:
                                target.edges.append(base)
                                edges_created += 1
                                # Farshi's fix: a new edge may open new
                                # reduction paths for nodes already handled
                                # this round; re-examine them (the applied
                                # set keeps this terminating and cheap).
                                for other in frontier.values():
                                    if id(other) in processed:
                                        worklist.append(other)

            new_frontier: Dict[Any, GSSNode] = {}
            for node, target_state in shifts:
                key = _key(target_state)
                target = new_frontier.get(key)
                if target is None:
                    target = GSSNode(target_state)
                    nodes_created += 1
                    new_frontier[key] = target
                if node not in target.edges:
                    target.edges.append(node)
                    edges_created += 1
            frontier = new_frontier

        self.last_stats = {
            "nodes_created": nodes_created,
            "edges_created": edges_created,
            "reductions_applied": reductions_applied,
        }
        return accepted


def _paths(node: GSSNode, length: int) -> List[Tuple[GSSNode, ...]]:
    """All downward paths of exactly ``length`` edges; includes ``node``.

    The returned tuples start at ``node`` and end at the vertex the GOTO is
    taken from.  ``length`` 0 yields the single path ``(node,)`` — that is
    how epsilon reductions anchor at the node itself.
    """
    paths: List[Tuple[GSSNode, ...]] = [(node,)]
    for _ in range(length):
        extended: List[Tuple[GSSNode, ...]] = []
        for path in paths:
            for edge in path[-1].edges:
                extended.append(path + (edge,))
        paths = extended
    return paths
