"""A graph-structured-stack (GSS) GLR parser with shared packed forests.

The paper's PAR-PARSE keeps one linear stack per parser, the simplified
presentation of Tomita's algorithm [Tom85].  Tomita's full algorithm — and
Rekers' refinement [Rek87] the authors' implementation is based on — merges
parsers that reach the same state on the same input position into a single
*graph-structured stack* node, so the number of live stack tops is bounded
by the number of parser states instead of growing with the amount of
ambiguity.

This module implements that merged representation, with Nozohoor-Farshi's
re-examination fix so that reductions discovered after an edge is added to
an existing node are not missed.  Beyond recognition it supports a full
parse mode:

* **Shared packed forests.**  Every GSS edge carries a forest label: shift
  edges a :class:`~repro.runtime.forest.Leaf`, reduction edges a
  :class:`~repro.runtime.forest.PackedNode` keyed by ``(lhs, start, end)``
  — Rekers-style packing per nonterminal span.  Ambiguous derivations of
  the same span collapse into one packed node, so the forest stays
  polynomial even when the tree count is exponential, and alternatives
  discovered late are visible to parents built earlier.
* **Deterministic stretch.**  While exactly one stack top is live and
  ACTION is single-valued (probed through the compiled step cache), the
  parser runs a plain LR loop — Elkhound's LR/GLR hybrid — and only falls
  back to the general graph sweep on a conflict, an empty cell, a merged
  stack region, or a suspected cycle.
* **Failure records.**  A rejected input carries a
  :class:`~repro.runtime.parallel.ParseFailure` listing the states the
  fatal sweep visited; since LR(0) reductions are lookahead-independent,
  their shift terminals are exactly the expected-set a diagnostic reports.

The recognizer remains the ablation subject of
``bench_ablation_pool_vs_gss`` and the property tests that cross-check
PAR-PARSE, GSS and Earley on random grammars.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..grammar.grammar import Grammar
from ..grammar.symbols import END, Terminal
from ..lr.actions import Accept, Reduce, Shift
from ..lr.compiled import STEP_REDUCE, STEP_SHIFT, encode_step
from ..lr.states import ItemSet
from .deadline import CHECK_MASK, active_deadline
from .errors import SweepLimitExceeded
from .forest import Forest, ParseForest, TreeNode
from .parallel import ParseFailure


class GSSNode:
    """One stack top (or interior vertex) of the graph-structured stack."""

    __slots__ = ("state", "edges", "labels", "position")

    def __init__(self, state: Any, position: int = 0) -> None:
        self.state = state
        #: predecessor vertices (the cells "below" this one)
        self.edges: List["GSSNode"] = []
        #: forest label per edge (parallel to :attr:`edges`); ``None`` in
        #: recognition mode
        self.labels: List[Optional[TreeNode]] = []
        #: tokens consumed when this vertex was created (the *end* of the
        #: span any reduction over it packs)
        self.position = position

    def __repr__(self) -> str:
        return f"GSSNode(state={getattr(self.state, 'uid', self.state)}, {len(self.edges)} edges)"


def _key(state: Any) -> Any:
    """Hashable identity of a parser state (works for item sets and ints)."""
    uid = getattr(state, "uid", None)
    return uid if uid is not None else state


class GSSStats:
    """Work counters for one GSS run (reported by benches and engines)."""

    __slots__ = ("nodes_created", "edges_created", "reductions_applied")

    def __init__(
        self,
        nodes_created: int = 0,
        edges_created: int = 0,
        reductions_applied: int = 0,
    ) -> None:
        self.nodes_created = nodes_created
        self.edges_created = edges_created
        self.reductions_applied = reductions_applied

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return f"GSSStats({self.snapshot()})"


class GSSResult:
    """Outcome of a GSS parse.

    ``forest`` is a :class:`~repro.runtime.forest.ParseForest` handle over
    the packed roots (``None`` in recognition mode or on rejection); the
    tree count is *not* materialized — it may be exponential in the input
    length.
    """

    __slots__ = ("accepted", "forest", "stats", "failure")

    def __init__(
        self,
        accepted: bool,
        forest: Optional[ParseForest],
        stats: GSSStats,
        failure: Optional[ParseFailure] = None,
    ) -> None:
        self.accepted = accepted
        self.forest = forest
        self.stats = stats
        self.failure = failure

    def __bool__(self) -> bool:
        return self.accepted

    def __repr__(self) -> str:
        return f"GSSResult(accepted={self.accepted}, forest={self.forest!r})"


class GSSParser:
    """GLR parsing over a merged stack graph.

    Parameters
    ----------
    control:
        ``start_state`` / ``action`` / ``goto`` provider; a compiled (or
        dense-table) control additionally exposes the step-cache probe
        surface the deterministic stretch reads.
    max_steps_per_token:
        Work budget per input symbol (cyclic-grammar guard).
    grammar:
        Needed for START-rule root recovery; optional in recognition mode.
    """

    def __init__(
        self,
        control: Any,
        max_steps_per_token: int = 1_000_000,
        grammar: Optional[Grammar] = None,
    ) -> None:
        self.control = control
        self.max_steps_per_token = max_steps_per_token
        self.grammar = grammar
        #: filled in by every run; exposed for the ablation bench
        self.last_stats: Dict[str, int] = {}

    # -- public API ------------------------------------------------------

    def recognize(self, tokens: Iterable[Terminal]) -> bool:
        return self._run(tokens, build_trees=False).accepted

    def recognize_result(self, tokens: Iterable[Terminal]) -> GSSResult:
        """Recognition that keeps the full result (stats and failure)."""
        return self._run(tokens, build_trees=False)

    def parse(self, tokens: Iterable[Terminal]) -> GSSResult:
        if self.grammar is None:
            raise ValueError(
                "GSSParser.parse needs a grammar (START-rule recovery); "
                "construct with GSSParser(control, grammar=...)"
            )
        return self._run(tokens, build_trees=True)

    # -- the algorithm ---------------------------------------------------

    def _run(self, tokens: Iterable[Terminal], build_trees: bool) -> GSSResult:
        sentence: List[Terminal] = list(tokens)
        sentence.append(END)
        sentence_length = len(sentence)

        nodes_created = 1  # the start node below
        edges_created = 0
        reductions_applied = 0

        forest = Forest() if build_trees else None
        roots: Dict[TreeNode, None] = {}

        start_node = GSSNode(self.control.start_state, 0)
        frontier: Dict[Any, GSSNode] = {_key(start_node.state): start_node}
        accepted = False
        deadline = active_deadline()

        # Hoisted hot-loop attributes and the compiled control's zero-call
        # probe surface (see PoolParser._run for the protocol).
        control_action = self.control.action
        control_goto = self.control.goto
        max_steps_per_token = self.max_steps_per_token
        step_cache = getattr(self.control, "fast_step_cache", None)
        steps_get = step_cache.get if step_cache is not None else None
        credit_hits = getattr(self.control, "count_probe_hits", None)
        graph_states = getattr(self.control, "action_cache", None) is not None
        fast_hits = 0
        nonterminal_count = (
            len(self.grammar.nonterminals) if self.grammar is not None else 16
        )
        fast_reduce_budget = 64 + 4 * (nonterminal_count + 2)

        position = 0
        # Fatal-sweep record for the failure diagnostic.
        failure_position = 0
        failure_symbol: Terminal = END
        failure_states: Tuple[Any, ...] = ()

        while frontier and position < sentence_length:
            symbol = sentence[position]
            if deadline is not None and deadline.expired():
                raise deadline.exceed(position)

            # ACTION result carried from the stretch into the general
            # sweep on a bail, so the conflicted cell is not recomputed.
            prefetched = None
            prefetched_state = None

            # -- deterministic stretch ----------------------------------
            # While the frontier is a single vertex and ACTION is
            # single-valued, run a plain LR loop over the graph: shifts
            # and reductions extend a linear chain of single-edge nodes,
            # with no worklist, no path enumeration and no Farshi
            # bookkeeping.  Anything irregular — a conflict, an empty
            # cell, a merged region below a reduction, a suspected cycle
            # — bails to the general sweep for the current symbol.
            if len(frontier) == 1:
                node = next(iter(frontier.values()))
                # Vertex at the start of the current symbol's processing
                # (one store per shift): a bail rewinds here so the
                # general sweep replays the whole reduce chain — its
                # visited-state record must cover the chain, and packed
                # hash-consing dedups the re-derived alternatives.
                stretch_start = node
                reduces_here = 0
                retired = False
                while True:
                    state = node.state
                    step = None
                    if steps_get is not None:
                        per_state = steps_get(state)
                        if per_state is not None:
                            step = per_state.get(symbol)
                            if step is not None and step is not False:
                                fast_hits += 1
                    if step is None:
                        actions = control_action(state, symbol)
                        step = encode_step(actions)
                        if step is False:
                            prefetched = actions
                            prefetched_state = state
                            break
                    if step is False:
                        break
                    kind = step[0]
                    if kind == STEP_SHIFT:
                        target = GSSNode(step[1], position + 1)
                        nodes_created += 1
                        target.edges.append(node)
                        target.labels.append(
                            forest.leaf(symbol, position)
                            if forest is not None
                            else None
                        )
                        edges_created += 1
                        node = target
                        position += 1
                        # A shift never consumes the end-marker, so the
                        # next symbol always exists.
                        symbol = sentence[position]
                        stretch_start = node
                        reduces_here = 0
                        if (
                            deadline is not None
                            and (position & CHECK_MASK) == 0
                            and deadline.expired()
                        ):
                            raise deadline.exceed(position - 1)
                        continue
                    if kind == STEP_REDUCE:
                        rule = step[1]
                        arity = step[2]
                        lhs = step[3]
                        base = node
                        chain_labels: List[Optional[TreeNode]] = []
                        linear = True
                        for _ in range(arity):
                            if len(base.edges) != 1:
                                linear = False
                                break
                            chain_labels.append(base.labels[0])
                            base = base.edges[0]
                        if not linear:
                            break  # merged region: the graph sweep decides
                        if graph_states:
                            goto_state = base.state.transitions.get(lhs)
                            if goto_state.__class__ is not ItemSet:
                                goto_state = control_goto(base.state, lhs)
                        else:
                            goto_state = control_goto(base.state, lhs)
                        target = GSSNode(goto_state, position)
                        nodes_created += 1
                        if forest is not None:
                            packed = forest.packed(lhs, base.position, position)
                            packed.add(
                                forest.node(
                                    rule, tuple(reversed(chain_labels))
                                )
                            )
                            label: Optional[TreeNode] = packed
                        else:
                            label = None
                        target.edges.append(base)
                        target.labels.append(label)
                        edges_created += 1
                        reductions_applied += 1
                        node = target
                        reduces_here += 1
                        if reduces_here > fast_reduce_budget:
                            # Possible cycle: only the general sweep's
                            # applied-set can converge it.
                            break
                        continue
                    # STEP_ACCEPT
                    accepted = True
                    if forest is not None:
                        self._collect_roots(node, forest, roots)
                    retired = True
                    break
                if retired:
                    frontier = {}
                    break
                frontier = {_key(stretch_start.state): stretch_start}
                # fall through: the general sweep re-runs this symbol from
                # the sweep-start vertex, so its visited-state record (and
                # hence any failure diagnostic) covers the reduce chain the
                # stretch already walked; hash-consing dedups re-derived
                # forest alternatives.

            # -- general graph sweep ------------------------------------
            worklist: List[GSSNode] = list(frontier.values())
            processed: Set[int] = set()
            applied: Set[Tuple] = set()
            shifts: List[Tuple[GSSNode, Any]] = []
            shift_seen: Set[Tuple[int, Any]] = set()
            sweep_states: List[Any] = []
            steps = 0

            while worklist:
                node = worklist.pop()
                steps += 1
                if steps > max_steps_per_token:
                    raise SweepLimitExceeded(
                        f"GSS work budget exceeded at position {position}",
                        position=position,
                        symbol=symbol,
                    )
                if (
                    deadline is not None
                    and (steps & CHECK_MASK) == 0
                    and deadline.expired()
                ):
                    raise deadline.exceed(position)
                processed.add(id(node))
                if node.state not in sweep_states:
                    sweep_states.append(node.state)

                if prefetched is not None and node.state is prefetched_state:
                    actions = prefetched
                    prefetched = None
                else:
                    actions = control_action(node.state, symbol)
                for action in actions:
                    if isinstance(action, Shift):
                        shift_key = (id(node), _key(action.target))
                        if shift_key not in shift_seen:
                            shift_seen.add(shift_key)
                            shifts.append((node, action.target))
                    elif isinstance(action, Accept):
                        accepted = True
                        if forest is not None:
                            self._collect_roots(node, forest, roots)
                    else:
                        assert isinstance(action, Reduce)
                        rule = action.rule
                        lhs = rule.lhs
                        for path, children in _labeled_paths(
                            node, len(rule.rhs)
                        ):
                            reduction_key = (
                                id(node),
                                rule,
                                tuple(id(p) for p in path),
                            )
                            if reduction_key in applied:
                                continue
                            applied.add(reduction_key)
                            reductions_applied += 1
                            base = path[-1]
                            goto_state = control_goto(base.state, lhs)
                            if forest is not None:
                                # Pack this derivation under the span's
                                # unique ambiguity node.  Goto-target
                                # uniqueness (one accessing symbol per
                                # state) guarantees an existing
                                # target→base edge already carries this
                                # same packed node as its label.
                                packed = forest.packed(
                                    lhs, base.position, position
                                )
                                packed.add(forest.node(rule, children))
                                label = packed
                            else:
                                label = None
                            key = _key(goto_state)
                            target = frontier.get(key)
                            if target is None:
                                target = GSSNode(goto_state, position)
                                nodes_created += 1
                                target.edges.append(base)
                                target.labels.append(label)
                                edges_created += 1
                                frontier[key] = target
                                worklist.append(target)
                            elif base not in target.edges:
                                target.edges.append(base)
                                target.labels.append(label)
                                edges_created += 1
                                # Farshi's fix: a new edge may open new
                                # reduction paths for nodes already handled
                                # this round; re-examine them (the applied
                                # set keeps this terminating and cheap).
                                for other in frontier.values():
                                    if id(other) in processed:
                                        worklist.append(other)

            new_frontier: Dict[Any, GSSNode] = {}
            leaf = forest.leaf(symbol, position) if forest is not None else None
            for node, target_state in shifts:
                key = _key(target_state)
                target = new_frontier.get(key)
                if target is None:
                    target = GSSNode(target_state, position + 1)
                    nodes_created += 1
                    new_frontier[key] = target
                if node not in target.edges:
                    target.edges.append(node)
                    target.labels.append(leaf)
                    edges_created += 1
            failure_position = position
            failure_symbol = symbol
            failure_states = tuple(sweep_states)
            frontier = new_frontier
            position += 1

        if fast_hits and credit_hits is not None:
            credit_hits(fast_hits)
        stats = GSSStats(nodes_created, edges_created, reductions_applied)
        self.last_stats = stats.snapshot()
        failure: Optional[ParseFailure] = None
        if not accepted:
            # Every rejection passes through a general sweep (the stretch
            # bails on empty cells), so the recorded states are the fatal
            # sweep's reduce closure — exactly what the expected-terminal
            # diagnostic replays.
            failure = ParseFailure(
                failure_position, failure_symbol, (), failure_states
            )
        result_forest: Optional[ParseForest] = None
        if accepted and build_trees:
            result_forest = ParseForest(tuple(roots))
        return GSSResult(accepted, result_forest, stats, failure)

    def _collect_roots(
        self,
        node: GSSNode,
        forest: Forest,
        roots: Dict[TreeNode, None],
    ) -> None:
        """START-rule roots at an accepting vertex (cf. recover_start_trees).

        Each downward path spelling a START rule's body and bottoming out
        at the initial vertex contributes one packed root; hash-consing
        dedups identical derivations across paths.
        """
        assert self.grammar is not None
        for rule in self.grammar.start_rules():
            arity = len(rule.rhs)
            for path, children in _labeled_paths(node, arity):
                base = path[-1]
                if base.edges:  # only the initial vertex has no edges
                    continue
                if any(child is None for child in children):
                    continue
                if any(
                    child.symbol != expected
                    for child, expected in zip(children, rule.rhs)
                ):
                    continue
                roots.setdefault(forest.node(rule, children))


def _paths(node: GSSNode, length: int) -> List[Tuple[GSSNode, ...]]:
    """All downward paths of exactly ``length`` edges; includes ``node``.

    The returned tuples start at ``node`` and end at the vertex the GOTO is
    taken from.  ``length`` 0 yields the single path ``(node,)`` — that is
    how epsilon reductions anchor at the node itself.
    """
    paths: List[Tuple[GSSNode, ...]] = [(node,)]
    for _ in range(length):
        extended: List[Tuple[GSSNode, ...]] = []
        for path in paths:
            for edge in path[-1].edges:
                extended.append(path + (edge,))
        paths = extended
    return paths


def _labeled_paths(
    node: GSSNode, length: int
) -> List[Tuple[Tuple[GSSNode, ...], Tuple[Optional[TreeNode], ...]]]:
    """Like :func:`_paths`, but collects each path's edge labels.

    Labels are gathered while descending (rightmost child first) and
    returned reversed, i.e. in left-to-right rule-body order, ready to be
    the children of a :class:`~repro.runtime.forest.ParseNode`.
    """
    paths: List[Tuple[Tuple[GSSNode, ...], Tuple]] = [((node,), ())]
    for _ in range(length):
        extended: List[Tuple[Tuple[GSSNode, ...], Tuple]] = []
        for path, labels in paths:
            tail = path[-1]
            for edge, label in zip(tail.edges, tail.labels):
                extended.append((path + (edge,), labels + (label,)))
        paths = extended
    return [
        (path, tuple(reversed(labels))) for path, labels in paths
    ]
