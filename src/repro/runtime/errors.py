"""Runtime errors shared by all parsing algorithms."""

from __future__ import annotations

from typing import Optional

from ..grammar.symbols import Terminal


class ParseError(Exception):
    """The input is not a sentence of the language.

    The deterministic parser raises this; the parallel parser returns a
    :class:`~repro.runtime.parallel.ParseResult` with ``accepted=False``
    instead (all its sub-parsers died), and only raises for *structural*
    problems (see :class:`SweepLimitExceeded`).
    """

    def __init__(
        self,
        message: str,
        position: Optional[int] = None,
        symbol: Optional[Terminal] = None,
    ) -> None:
        super().__init__(message)
        self.position = position
        self.symbol = symbol


class AmbiguousInputError(ParseError):
    """A deterministic parser met a multi-action cell.

    Raised by LR-PARSE when ACTION returns more than one action — the paper:
    *"LR-PARSE can only handle sets of at most one action correctly."*
    """


class SweepLimitExceeded(ParseError):
    """The parallel parser exceeded its per-token work budget.

    This only happens for *infinitely* ambiguous (cyclic) grammars, which
    both Tomita's algorithm and IPG exclude ("grammars are restricted to
    the class of finitely ambiguous context-free grammars", section 2.1).
    The budget turns the restriction into a loud diagnostic instead of a
    hang.
    """


class CapabilityError(ParseError):
    """An engine was asked for something it cannot produce.

    The canonical case is requesting derivation trees from a
    recognizer-only engine: instead of silently returning an accepted
    outcome with no forest, the engine refuses loudly so callers can
    either switch engines or downgrade to :meth:`Language.recognize`.
    """


class CyclicForestError(ParseError):
    """A forest operation met a cycle (infinitely many derivations).

    Cyclic grammars (``A ::= A``) yield shared packed parse forests whose
    packed nodes reach themselves; such forests have no finite tree count,
    so counting and enumeration raise instead of looping or overflowing
    the recursion limit.
    """


class ForestCapExceeded(ParseError):
    """Unbounded enumeration of a forest would exceed the safety cap.

    Highly ambiguous inputs can pack exponentially many derivations into a
    polynomial-size forest; asking for *all* of them is then a bug in the
    caller.  Pass an explicit ``limit`` to enumerate a prefix instead.
    """


class DeadlineExceeded(Exception):
    """A cooperative request deadline expired mid-parse.

    Deliberately *not* a :class:`ParseError`: a timeout says nothing about
    whether the input is a sentence, so nothing that converts rejections
    into diagnostics (or ``False``) may swallow it.  The service layer
    turns it into a structured ``deadline-exceeded`` error response
    carrying the partial progress (``tokens_consumed``).
    """

    def __init__(
        self,
        message: str,
        deadline_ms: Optional[float] = None,
        tokens_consumed: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.tokens_consumed = tokens_consumed
