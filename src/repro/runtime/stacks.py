"""Parse stacks as immutable cons cells with structural sharing.

Section 3.2 (description of PAR-PARSE): *"It is important for the lazy
parser generator that the implementation of the copy operation for parsers
is such that the parse stacks become different objects which share the
states on them."*

A stack is a linked chain of :class:`StackCell`; copying a parser is
copying a single pointer, and pushing allocates one cell.  Popping ``n``
cells is walking ``n`` links — the original chain is untouched, so sibling
parsers created by a fork keep their view intact.

Each cell carries the parser state plus the parse-forest node for the
symbol that was recognized on entering that state (None for the start
cell), which is how PAR-PARSE builds trees without a separate pass.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class StackCell:
    """One immutable stack cell: (state, tree, link to the cell below).

    A cell is *its own signature key*: ``sig`` is an incremental hash of
    the whole chain's (state, tree) identities, combined at push time from
    the parent cell's cached value, and ``__hash__``/``__eq__`` compare
    stacks by that identity chain.  Putting the top cell in a set is
    therefore an O(1) replacement for the O(depth)
    :meth:`signature`/:meth:`full_signature` tuples — equality only walks
    the chains on a genuine duplicate or hash collision, and stops at the
    first physically shared cell (converging forks share their tail, so
    the walk covers just the divergent prefix).
    """

    __slots__ = ("state", "tree", "below", "depth", "sig")

    # Cells are immutable by convention, not enforcement: one cell is
    # allocated per parser step on the hot path, and routing five slot
    # writes through a raising ``__setattr__`` (via ``object.__setattr__``)
    # measures ~2.7x slower per push than plain slot stores.  Nothing in
    # the runtime writes to a cell after construction.
    def __init__(
        self,
        state: Any,
        below: Optional["StackCell"] = None,
        tree: Any = None,
    ) -> None:
        self.state = state
        self.below = below
        self.tree = tree
        if below is None:
            self.depth = 1
            self.sig = hash((1, id(state), id(tree)))
        else:
            self.depth = below.depth + 1
            self.sig = hash((below.sig, id(state), id(tree)))

    def __hash__(self) -> int:
        return self.sig

    def __eq__(self, other: object) -> bool:
        """Whole-stack identity equality: same states *and* same trees.

        For recognition (all trees ``None``) this coincides with the
        states-only signature; for tree-building parses trees are
        hash-consed, so identity comparison is exactly the seed's
        ``full_signature`` semantics.
        """
        if self is other:
            return True
        if not isinstance(other, StackCell):
            return NotImplemented
        if self.depth != other.depth or self.sig != other.sig:
            return False
        a: "StackCell" = self
        b: "StackCell" = other
        while a is not b:
            if a.state is not b.state or a.tree is not b.tree:
                return False
            a = a.below
            b = b.below
        return True

    def push(self, state: Any, tree: Any = None) -> "StackCell":
        """A new top cell on this stack (O(1), shares the whole chain)."""
        return StackCell(state, self, tree)

    def pop(self, count: int) -> Tuple["StackCell", List[Any]]:
        """Walk ``count`` cells down; return (new top, popped trees).

        Trees come back in *left-to-right* order (the deepest popped cell
        first), ready to be used as the children of a reduction.
        """
        trees: List[Any] = []
        cell: Optional[StackCell] = self
        for _ in range(count):
            if cell is None:
                raise IndexError("pop past the bottom of the parse stack")
            trees.append(cell.tree)
            cell = cell.below
        if cell is None:
            raise IndexError("pop removed the start state")
        trees.reverse()
        return cell, trees

    def states(self) -> Tuple[Any, ...]:
        """States from top to bottom (the stack *signature*).

        Signatures identify parser configurations: the pool parser uses
        them to drop duplicate parsers created by converging reductions.
        """
        result = []
        cell: Optional[StackCell] = self
        while cell is not None:
            result.append(cell.state)
            cell = cell.below
        return tuple(result)

    def signature(self) -> Tuple[int, ...]:
        """Hashable identity-based signature (state ids, top to bottom)."""
        result = []
        cell: Optional[StackCell] = self
        while cell is not None:
            result.append(id(cell.state))
            cell = cell.below
        return tuple(result)

    def full_signature(self) -> Tuple[Tuple[int, int], ...]:
        """Signature including tree identities.

        Two parsers with equal full signatures are completely
        interchangeable — same states *and* same derivations — so one can
        be dropped without losing any parse.
        """
        result = []
        cell: Optional[StackCell] = self
        while cell is not None:
            result.append((id(cell.state), id(cell.tree)))
            cell = cell.below
        return tuple(result)

    def __iter__(self) -> Iterator["StackCell"]:
        cell: Optional[StackCell] = self
        while cell is not None:
            yield cell
            cell = cell.below

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:
        return f"StackCell(depth={self.depth}, top={self.state!r})"


def shared_cells(a: StackCell, b: StackCell) -> int:
    """Number of cells physically shared between two stacks.

    Only used by tests and the stack-sharing ablation bench to demonstrate
    that forking really is O(1) and reduction preserves the common tail.
    """
    a_cells = set(map(id, a))
    return sum(1 for cell in b if id(cell) in a_cells)
