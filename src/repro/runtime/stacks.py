"""Parse stacks as immutable cons cells with structural sharing.

Section 3.2 (description of PAR-PARSE): *"It is important for the lazy
parser generator that the implementation of the copy operation for parsers
is such that the parse stacks become different objects which share the
states on them."*

A stack is a linked chain of :class:`StackCell`; copying a parser is
copying a single pointer, and pushing allocates one cell.  Popping ``n``
cells is walking ``n`` links — the original chain is untouched, so sibling
parsers created by a fork keep their view intact.

Each cell carries the parser state plus the parse-forest node for the
symbol that was recognized on entering that state (None for the start
cell), which is how PAR-PARSE builds trees without a separate pass.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple


class StackCell:
    """One immutable stack cell: (state, tree, link to the cell below)."""

    __slots__ = ("state", "tree", "below", "depth")

    def __init__(
        self,
        state: Any,
        below: Optional["StackCell"] = None,
        tree: Any = None,
    ) -> None:
        object.__setattr__(self, "state", state)
        object.__setattr__(self, "below", below)
        object.__setattr__(self, "tree", tree)
        object.__setattr__(self, "depth", 1 if below is None else below.depth + 1)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("StackCell is immutable")

    def push(self, state: Any, tree: Any = None) -> "StackCell":
        """A new top cell on this stack (O(1), shares the whole chain)."""
        return StackCell(state, self, tree)

    def pop(self, count: int) -> Tuple["StackCell", List[Any]]:
        """Walk ``count`` cells down; return (new top, popped trees).

        Trees come back in *left-to-right* order (the deepest popped cell
        first), ready to be used as the children of a reduction.
        """
        trees: List[Any] = []
        cell: Optional[StackCell] = self
        for _ in range(count):
            if cell is None:
                raise IndexError("pop past the bottom of the parse stack")
            trees.append(cell.tree)
            cell = cell.below
        if cell is None:
            raise IndexError("pop removed the start state")
        trees.reverse()
        return cell, trees

    def states(self) -> Tuple[Any, ...]:
        """States from top to bottom (the stack *signature*).

        Signatures identify parser configurations: the pool parser uses
        them to drop duplicate parsers created by converging reductions.
        """
        result = []
        cell: Optional[StackCell] = self
        while cell is not None:
            result.append(cell.state)
            cell = cell.below
        return tuple(result)

    def signature(self) -> Tuple[int, ...]:
        """Hashable identity-based signature (state ids, top to bottom)."""
        result = []
        cell: Optional[StackCell] = self
        while cell is not None:
            result.append(id(cell.state))
            cell = cell.below
        return tuple(result)

    def full_signature(self) -> Tuple[Tuple[int, int], ...]:
        """Signature including tree identities.

        Two parsers with equal full signatures are completely
        interchangeable — same states *and* same derivations — so one can
        be dropped without losing any parse.
        """
        result = []
        cell: Optional[StackCell] = self
        while cell is not None:
            result.append((id(cell.state), id(cell.tree)))
            cell = cell.below
        return tuple(result)

    def __iter__(self) -> Iterator["StackCell"]:
        cell: Optional[StackCell] = self
        while cell is not None:
            yield cell
            cell = cell.below

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:
        return f"StackCell(depth={self.depth}, top={self.state!r})"


def shared_cells(a: StackCell, b: StackCell) -> int:
    """Number of cells physically shared between two stacks.

    Only used by tests and the stack-sharing ablation bench to demonstrate
    that forking really is O(1) and reduction preserves the common tail.
    """
    a_cells = set(map(id, a))
    return sum(1 for cell in b if id(cell) in a_cells)
