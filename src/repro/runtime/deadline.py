"""Cooperative request deadlines for the parse loops.

A pathological input (deep ambiguity, a near-cyclic grammar under the
sweep budget) can hold a worker for seconds — under the sharded service
that wedges every session pinned to the shard.  This module gives the
service a cooperative cancellation point: the dispatcher installs a
:class:`Deadline` for the current thread around a request, and the hot
step loops (:class:`~repro.runtime.parallel.PoolParser`,
:class:`~repro.runtime.gss.GSSParser`) poll it every few hundred steps,
raising :class:`~repro.runtime.errors.DeadlineExceeded` with the tokens
consumed so far.

The deadline is thread-local, matching the service's execution model:
each shard worker (and each process-shard child's serve loop) runs one
request at a time on one thread, so "the active deadline" is unambiguous
and the parsers need no new parameters — code that never installs a
deadline pays one ``None`` check per polled step.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .errors import DeadlineExceeded

__all__ = ["Deadline", "DeadlineExceeded", "active_deadline", "deadline_scope"]

#: How many parser steps pass between clock reads.  Power of two so the
#: poll is a mask, not a modulo; small enough that even slow grammars
#: overshoot a 50 ms deadline by far less than the 10x budget the chaos
#: suite pins.
CHECK_MASK = 0xFF

_LOCAL = threading.local()


class Deadline:
    """A wall-clock budget: ``expired()`` is one monotonic read."""

    __slots__ = ("expires_at", "ms")

    def __init__(self, ms: float) -> None:
        self.ms = ms
        self.expires_at = time.monotonic() + ms / 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def remaining_ms(self) -> float:
        return max(0.0, (self.expires_at - time.monotonic()) * 1000.0)

    def exceed(self, tokens_consumed: int) -> "DeadlineExceeded":
        return DeadlineExceeded(
            f"deadline of {self.ms:g} ms exceeded after consuming "
            f"{tokens_consumed} token(s)",
            deadline_ms=self.ms,
            tokens_consumed=tokens_consumed,
        )

    def __repr__(self) -> str:
        return f"Deadline({self.ms:g}ms, {self.remaining_ms():.1f}ms left)"


def active_deadline() -> Optional[Deadline]:
    """The deadline governing the current thread, or ``None``."""
    return getattr(_LOCAL, "deadline", None)


@contextmanager
def deadline_scope(ms: Optional[float]) -> Iterator[Optional[Deadline]]:
    """Install a deadline of ``ms`` milliseconds for the current thread.

    ``None`` installs nothing (the scope is then a no-op, so callers can
    pass an optional request field straight through).  Scopes nest; the
    inner scope wins for its duration and the outer one is restored on
    exit — a nested scope never *extends* an outer deadline's wall-clock
    expiry, it only changes which object the parsers poll.
    """
    if ms is None:
        yield None
        return
    previous = getattr(_LOCAL, "deadline", None)
    deadline = Deadline(ms)
    _LOCAL.deadline = deadline
    try:
        yield deadline
    finally:
        if previous is None:
            del _LOCAL.deadline
        else:
            _LOCAL.deadline = previous
