"""Parse trees with hash-consed sharing.

The measurements footnote of section 7: *"after a suggestion of B. Lang, we
improved the sharing of parse trees."*  We realize that sharing with a
hash-consing factory: requesting the same leaf or the same
``(rule, children)`` node twice returns the *same object*.  Sub-derivations
common to several parallel parsers are therefore represented once, and
duplicate accepting parses collapse by object identity.

Leaves and parse nodes are immutable; ambiguity appears either as several
distinct root nodes (the pool parser reports all of them) or, for the GSS
engine, as :class:`PackedNode` alternatives inside a shared packed parse
forest (SPPF).  :func:`count_trees` and :func:`enumerate_strings` treat a
shared node as the single subtree it is, and both are iterative with
memoized counts so cyclic or exponentially ambiguous forests produce an
explicit error instead of a hang or a recursion-depth crash.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..grammar.rules import Rule
from ..grammar.symbols import Symbol, Terminal
from .errors import CyclicForestError, ForestCapExceeded

#: Hard ceiling for ``trees(limit=None)`` / unbounded enumeration.  A
#: forest packing more derivations than this must be consumed through an
#: explicit ``limit`` (or inspected via ``tree_count()`` alone).
ENUMERATION_CAP = 10_000


class TreeNode:
    """Base class for forest nodes; all nodes know their grammar symbol."""

    __slots__ = ()

    @property
    def symbol(self) -> Symbol:
        raise NotImplementedError

    def width(self) -> int:
        """Number of token leaves under the node."""
        raise NotImplementedError


class Leaf(TreeNode):
    """A shifted token: terminal plus input position."""

    __slots__ = ("terminal", "position")

    def __init__(self, terminal: Terminal, position: int) -> None:
        object.__setattr__(self, "terminal", terminal)
        object.__setattr__(self, "position", position)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Leaf is immutable")

    @property
    def symbol(self) -> Symbol:
        return self.terminal

    def width(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"Leaf({self.terminal!s}@{self.position})"


class ParseNode(TreeNode):
    """An application of ``rule`` to already-built children."""

    __slots__ = ("rule", "children")

    def __init__(self, rule: Rule, children: Tuple[TreeNode, ...]) -> None:
        if len(children) != len(rule.rhs):
            raise ValueError(
                f"rule {rule} wants {len(rule.rhs)} children, got {len(children)}"
            )
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "children", children)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ParseNode is immutable")

    @property
    def symbol(self) -> Symbol:
        return self.rule.lhs

    def width(self) -> int:
        return sum(child.width() for child in self.children)

    def __repr__(self) -> str:
        return f"ParseNode({self.rule.lhs!s}, {len(self.children)} children)"


class PackedNode(TreeNode):
    """An ambiguity node: one ``(symbol, start, end)`` span, many derivations.

    This is the SPPF construction of Rekers' improvement to Tomita's
    forests: when two reductions derive the same nonterminal over the same
    input span, both derivations are *packed* under a single node, and
    every parent built over that span sees all alternatives — including
    ones discovered after the parent itself was built.  That late-binding
    is why packed nodes are the one mutable node kind: ``add`` appends an
    alternative in place.
    """

    __slots__ = ("packed_symbol", "start", "end", "alternatives", "_alt_ids")

    def __init__(self, symbol: Symbol, start: int, end: int) -> None:
        self.packed_symbol = symbol
        self.start = start
        self.end = end
        self.alternatives: List[TreeNode] = []
        self._alt_ids: set = set()

    @property
    def symbol(self) -> Symbol:
        return self.packed_symbol

    def width(self) -> int:
        return self.end - self.start

    def add(self, tree: TreeNode) -> bool:
        """Record a derivation; returns True if it was new to this node."""
        if id(tree) in self._alt_ids:
            return False
        self._alt_ids.add(id(tree))
        self.alternatives.append(tree)
        return True

    def __repr__(self) -> str:
        return (
            f"PackedNode({self.packed_symbol!s}@{self.start}..{self.end}, "
            f"{len(self.alternatives)} alternatives)"
        )


class Forest:
    """Hash-consing factory for leaves, parse nodes and packed nodes."""

    def __init__(self) -> None:
        self._leaves: Dict[Tuple[Terminal, int], Leaf] = {}
        self._nodes: Dict[Tuple[Rule, Tuple[int, ...]], ParseNode] = {}
        self._packed: Dict[Tuple[Symbol, int, int], PackedNode] = {}

    def leaf(self, terminal: Terminal, position: int) -> Leaf:
        key = (terminal, position)
        node = self._leaves.get(key)
        if node is None:
            node = Leaf(terminal, position)
            self._leaves[key] = node
        return node

    def node(self, rule: Rule, children: Sequence[TreeNode]) -> ParseNode:
        children_tuple = tuple(children)
        key = (rule, tuple(id(child) for child in children_tuple))
        node = self._nodes.get(key)
        if node is None:
            node = ParseNode(rule, children_tuple)
            self._nodes[key] = node
        return node

    def packed(self, symbol: Symbol, start: int, end: int) -> PackedNode:
        """The unique packed node for ``symbol`` over ``[start, end)``."""
        key = (symbol, start, end)
        node = self._packed.get(key)
        if node is None:
            node = PackedNode(symbol, start, end)
            self._packed[key] = node
        return node

    @property
    def size(self) -> int:
        """Distinct nodes allocated (a sharing metric for the benches)."""
        return len(self._leaves) + len(self._nodes) + len(self._packed)


# -- tree utilities ----------------------------------------------------------


def tokens_of(tree: TreeNode) -> Tuple[Terminal, ...]:
    """The terminal yield of a tree, left to right."""
    result: List[Terminal] = []
    _collect_tokens(tree, result)
    return tuple(result)


def _collect_tokens(tree: TreeNode, out: List[Terminal]) -> None:
    if isinstance(tree, Leaf):
        out.append(tree.terminal)
        return
    assert isinstance(tree, ParseNode)
    for child in tree.children:
        _collect_tokens(child, out)


def pretty(tree: TreeNode, indent: str = "") -> str:
    """Indented one-node-per-line rendering."""
    if isinstance(tree, Leaf):
        return f"{indent}{tree.terminal!s}"
    assert isinstance(tree, ParseNode)
    lines = [f"{indent}{tree.rule!s}"]
    for child in tree.children:
        lines.append(pretty(child, indent + "  "))
    return "\n".join(lines)


def bracketed(tree: TreeNode) -> str:
    """Compact  ``A(b c(d))``  rendering, convenient in tests."""
    if isinstance(tree, Leaf):
        return str(tree.terminal)
    assert isinstance(tree, ParseNode)
    inner = " ".join(bracketed(child) for child in tree.children)
    return f"{tree.rule.lhs!s}({inner})"


def node_count(tree: TreeNode, _seen: Optional[set] = None) -> int:
    """Distinct nodes in the (possibly shared) tree."""
    seen = _seen if _seen is not None else set()
    if id(tree) in seen:
        return 0
    seen.add(id(tree))
    if isinstance(tree, Leaf):
        return 1
    assert isinstance(tree, ParseNode)
    return 1 + sum(node_count(child, seen) for child in tree.children)


def depth(tree: TreeNode) -> int:
    if isinstance(tree, Leaf):
        return 1
    assert isinstance(tree, ParseNode)
    if not tree.children:
        return 1
    return 1 + max(depth(child) for child in tree.children)


# -- packed-forest counting and enumeration ----------------------------------


def _children_of(node: TreeNode) -> Sequence[TreeNode]:
    if isinstance(node, ParseNode):
        return node.children
    if isinstance(node, PackedNode):
        return node.alternatives
    return ()


def _count_into(root: TreeNode, memo: Dict[int, int]) -> int:
    """Trees derivable from ``root``; fills ``memo`` (id(node) -> count).

    Iterative post-order with a gray set: a node reached again while it is
    still being expanded lies on a derivation cycle (``A ::= A``), so the
    forest has infinitely many trees and we raise instead of looping.
    """
    gray: set = set()
    stack: List[TreeNode] = [root]
    while stack:
        node = stack[-1]
        nid = id(node)
        if nid in memo:
            stack.pop()
            continue
        if isinstance(node, Leaf):
            memo[nid] = 1
            stack.pop()
            continue
        children = _children_of(node)
        if nid in gray:
            if isinstance(node, PackedNode):
                memo[nid] = sum(memo[id(child)] for child in children)
            else:
                count = 1
                for child in children:
                    count *= memo[id(child)]
                memo[nid] = count
            gray.discard(nid)
            stack.pop()
            continue
        gray.add(nid)
        for child in children:
            cid = id(child)
            if cid in memo:
                continue
            if cid in gray:
                raise CyclicForestError(
                    f"forest is cyclic at {child!r}: infinitely many trees"
                )
            stack.append(child)
    return memo[id(root)]


def count_trees(root: TreeNode) -> int:
    """Number of distinct derivation trees packed under ``root``.

    Linear in the size of the forest even when the count is exponential;
    raises :class:`CyclicForestError` on cyclic forests.
    """
    return _count_into(root, {})


def _nth_tree(root: TreeNode, index: int, counts: Dict[int, int]) -> TreeNode:
    """Decode tree ``index`` (0-based) out of the packed forest at ``root``.

    Tree indices form a mixed-radix number: a packed node spends the index
    on choosing an alternative, a parse node splits it across children by
    their subtree counts.  Entirely iterative — deep derivation chains must
    not hit the recursion limit.  Unambiguous subtrees decode to the shared
    node itself, preserving identity (and sharing) where nothing varies.
    """
    results: Dict[int, TreeNode] = {}
    next_key = 1
    # ("visit", node, index, key) resolves one subtree into results[key];
    # ("build", node, child_keys, key) assembles a ParseNode afterwards.
    stack: List[tuple] = [("visit", root, index, 0)]
    while stack:
        task = stack.pop()
        if task[0] == "visit":
            _, node, idx, key = task
            while isinstance(node, PackedNode):
                for alternative in node.alternatives:
                    count = counts[id(alternative)]
                    if idx < count:
                        node = alternative
                        break
                    idx -= count
                else:
                    raise IndexError("tree index out of range")
            if isinstance(node, Leaf):
                results[key] = node
                continue
            assert isinstance(node, ParseNode)
            child_indices: List[int] = []
            for child in reversed(node.children):
                count = counts[id(child)]
                child_indices.append(idx % count)
                idx //= count
            child_indices.reverse()
            child_keys = []
            for child_index in child_indices:
                child_keys.append(next_key)
                next_key += 1
            stack.append(("build", node, child_keys, key))
            for child, child_index, child_key in zip(
                node.children, child_indices, child_keys
            ):
                stack.append(("visit", child, child_index, child_key))
        else:
            _, node, child_keys, key = task
            children = tuple(results.pop(k) for k in child_keys)
            if all(c is o for c, o in zip(children, node.children)):
                results[key] = node
            else:
                results[key] = ParseNode(node.rule, children)
    return results[0]


def enumerate_strings(
    root: TreeNode, limit: Optional[int] = None
) -> Iterator[str]:
    """Bracketed renderings of the trees packed under ``root``, lazily.

    With ``limit=None`` the forest must hold at most
    :data:`ENUMERATION_CAP` trees — beyond that an unbounded enumeration
    is almost certainly a caller bug and raises
    :class:`ForestCapExceeded` up front.
    """
    counts: Dict[int, int] = {}
    total = _count_into(root, counts)
    if limit is None:
        if total > ENUMERATION_CAP:
            raise ForestCapExceeded(
                f"forest packs {total} trees, over the unbounded-enumeration "
                f"cap of {ENUMERATION_CAP}; pass an explicit limit"
            )
        limit = total
    count = min(limit, total)
    return (bracketed(_nth_tree(root, i, counts)) for i in range(count))


class ParseForest:
    """The result of an accepting parse: a handle over the root trees.

    Pool engines hand it their (already distinct) root trees; the GSS
    engine hands it SPPF roots whose packed nodes may hide exponentially
    many derivations.  Either way ``tree_count()`` is cheap, and
    enumeration is lazy and indexed rather than exhaustive.
    """

    __slots__ = ("roots", "_counts", "_total")

    def __init__(self, roots: Sequence[TreeNode]) -> None:
        self.roots = tuple(roots)
        self._counts: Optional[Dict[int, int]] = None
        self._total: Optional[int] = None

    def tree_count(self) -> int:
        """Distinct derivations, without enumerating them."""
        if self._total is None:
            counts: Dict[int, int] = {}
            self._total = sum(
                _count_into(root, counts) for root in self.roots
            )
            self._counts = counts
        return self._total

    @property
    def is_ambiguous(self) -> bool:
        return self.tree_count() > 1

    def trees(self, limit: Optional[int] = None) -> Iterator[TreeNode]:
        """Lazily yield derivation trees, up to ``limit``.

        ``limit=None`` means *all* trees, which is refused with
        :class:`ForestCapExceeded` past :data:`ENUMERATION_CAP`.
        """
        total = self.tree_count()
        if limit is None:
            if total > ENUMERATION_CAP:
                raise ForestCapExceeded(
                    f"forest packs {total} trees, over the "
                    f"unbounded-enumeration cap of {ENUMERATION_CAP}; "
                    f"pass an explicit limit"
                )
            limit = total
        return self._iter_trees(min(limit, total))

    def _iter_trees(self, count: int) -> Iterator[TreeNode]:
        assert self._counts is not None
        remaining = count
        for root in self.roots:
            if remaining <= 0:
                return
            root_total = self._counts[id(root)]
            for index in range(min(root_total, remaining)):
                yield _nth_tree(root, index, self._counts)
            remaining -= root_total

    def brackets(self, limit: Optional[int] = None) -> List[str]:
        """Sorted bracketed renderings (see :func:`bracketed`)."""
        return sorted(bracketed(tree) for tree in self.trees(limit))

    def __repr__(self) -> str:
        return f"ParseForest({len(self.roots)} roots)"
