"""Parse trees with hash-consed sharing.

The measurements footnote of section 7: *"after a suggestion of B. Lang, we
improved the sharing of parse trees."*  We realize that sharing with a
hash-consing factory: requesting the same leaf or the same
``(rule, children)`` node twice returns the *same object*.  Sub-derivations
common to several parallel parsers are therefore represented once, and
duplicate accepting parses collapse by object identity.

Nodes are immutable; ambiguity at the sentence level appears as several
distinct root nodes (the pool parser reports all of them), and
:func:`count_trees`/:func:`enumerate_strings` treat a shared node as the
single subtree it is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..grammar.rules import Rule
from ..grammar.symbols import Symbol, Terminal


class TreeNode:
    """Base class for forest nodes; all nodes know their grammar symbol."""

    __slots__ = ()

    @property
    def symbol(self) -> Symbol:
        raise NotImplementedError

    def width(self) -> int:
        """Number of token leaves under the node."""
        raise NotImplementedError


class Leaf(TreeNode):
    """A shifted token: terminal plus input position."""

    __slots__ = ("terminal", "position")

    def __init__(self, terminal: Terminal, position: int) -> None:
        object.__setattr__(self, "terminal", terminal)
        object.__setattr__(self, "position", position)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Leaf is immutable")

    @property
    def symbol(self) -> Symbol:
        return self.terminal

    def width(self) -> int:
        return 1

    def __repr__(self) -> str:
        return f"Leaf({self.terminal!s}@{self.position})"


class ParseNode(TreeNode):
    """An application of ``rule`` to already-built children."""

    __slots__ = ("rule", "children")

    def __init__(self, rule: Rule, children: Tuple[TreeNode, ...]) -> None:
        if len(children) != len(rule.rhs):
            raise ValueError(
                f"rule {rule} wants {len(rule.rhs)} children, got {len(children)}"
            )
        object.__setattr__(self, "rule", rule)
        object.__setattr__(self, "children", children)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ParseNode is immutable")

    @property
    def symbol(self) -> Symbol:
        return self.rule.lhs

    def width(self) -> int:
        return sum(child.width() for child in self.children)

    def __repr__(self) -> str:
        return f"ParseNode({self.rule.lhs!s}, {len(self.children)} children)"


class Forest:
    """Hash-consing factory for leaves and parse nodes."""

    def __init__(self) -> None:
        self._leaves: Dict[Tuple[Terminal, int], Leaf] = {}
        self._nodes: Dict[Tuple[Rule, Tuple[int, ...]], ParseNode] = {}

    def leaf(self, terminal: Terminal, position: int) -> Leaf:
        key = (terminal, position)
        node = self._leaves.get(key)
        if node is None:
            node = Leaf(terminal, position)
            self._leaves[key] = node
        return node

    def node(self, rule: Rule, children: Sequence[TreeNode]) -> ParseNode:
        children_tuple = tuple(children)
        key = (rule, tuple(id(child) for child in children_tuple))
        node = self._nodes.get(key)
        if node is None:
            node = ParseNode(rule, children_tuple)
            self._nodes[key] = node
        return node

    @property
    def size(self) -> int:
        """Distinct nodes allocated (a sharing metric for the benches)."""
        return len(self._leaves) + len(self._nodes)


# -- tree utilities ----------------------------------------------------------


def tokens_of(tree: TreeNode) -> Tuple[Terminal, ...]:
    """The terminal yield of a tree, left to right."""
    result: List[Terminal] = []
    _collect_tokens(tree, result)
    return tuple(result)


def _collect_tokens(tree: TreeNode, out: List[Terminal]) -> None:
    if isinstance(tree, Leaf):
        out.append(tree.terminal)
        return
    assert isinstance(tree, ParseNode)
    for child in tree.children:
        _collect_tokens(child, out)


def pretty(tree: TreeNode, indent: str = "") -> str:
    """Indented one-node-per-line rendering."""
    if isinstance(tree, Leaf):
        return f"{indent}{tree.terminal!s}"
    assert isinstance(tree, ParseNode)
    lines = [f"{indent}{tree.rule!s}"]
    for child in tree.children:
        lines.append(pretty(child, indent + "  "))
    return "\n".join(lines)


def bracketed(tree: TreeNode) -> str:
    """Compact  ``A(b c(d))``  rendering, convenient in tests."""
    if isinstance(tree, Leaf):
        return str(tree.terminal)
    assert isinstance(tree, ParseNode)
    inner = " ".join(bracketed(child) for child in tree.children)
    return f"{tree.rule.lhs!s}({inner})"


def node_count(tree: TreeNode, _seen: Optional[set] = None) -> int:
    """Distinct nodes in the (possibly shared) tree."""
    seen = _seen if _seen is not None else set()
    if id(tree) in seen:
        return 0
    seen.add(id(tree))
    if isinstance(tree, Leaf):
        return 1
    assert isinstance(tree, ParseNode)
    return 1 + sum(node_count(child, seen) for child in tree.children)


def depth(tree: TreeNode) -> int:
    if isinstance(tree, Leaf):
        return 1
    assert isinstance(tree, ParseNode)
    if not tree.children:
        return 1
    return 1 + max(depth(child) for child in tree.children)
