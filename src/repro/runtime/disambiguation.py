"""Priority and associativity filters over parse forests.

The parallel parser deliberately returns *every* parse (section 3.2); SDF
then disambiguates with its ``priorities`` section and rule attributes
(``left-assoc``, ``right-assoc``, ``assoc``, ``non-assoc`` — Appendix B).
The paper's measurements predate these filters, but the surrounding
ASF+SDF system applies them to the parser's output, and a library user
needs them for any realistic expression language.

The semantics implemented is the classic tree-filter reading:

* **priority** ``r1 > r2``: a node built by ``r2`` may not be a direct
  child of a node built by ``r1`` (at any argument position), and
  priorities are transitive along a chain;
* **left-assoc** on ``r``: ``r`` may not be the direct child at ``r``'s
  *rightmost* recursive argument (so ``a op b op c`` groups to the left);
* **right-assoc**: symmetric; **non-assoc**: both sides forbidden;
* SDF's ``par`` attribute concerns pretty-printing, not tree selection,
  and is ignored here.

Filters compose: a tree survives iff every parent/child pair it contains
is allowed.  :meth:`DisambiguationFilter.filter` applies that predicate to
a :class:`~repro.runtime.parallel.ParseResult`'s trees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..grammar.rules import Rule
from .forest import ParseNode, TreeNode


class DisambiguationFilter:
    """A set of forbidden parent/child patterns over rules."""

    def __init__(self) -> None:
        #: child rules forbidden under a parent rule at *any* position
        self._forbidden_anywhere: Dict[Rule, Set[Rule]] = {}
        #: (parent rule, argument index) -> forbidden child rules
        self._forbidden_at: Dict[Tuple[Rule, int], Set[Rule]] = {}

    # -- construction ------------------------------------------------------

    def forbid(self, parent: Rule, child: Rule) -> "DisambiguationFilter":
        """Forbid ``child`` as a direct child of ``parent`` anywhere."""
        self._forbidden_anywhere.setdefault(parent, set()).add(child)
        return self

    def forbid_at(
        self, parent: Rule, index: int, child: Rule
    ) -> "DisambiguationFilter":
        """Forbid ``child`` as the ``index``-th child of ``parent``."""
        if not 0 <= index < len(parent.rhs):
            raise ValueError(
                f"rule {parent} has no argument position {index}"
            )
        self._forbidden_at.setdefault((parent, index), set()).add(child)
        return self

    def priority_chain(self, *levels: Iterable[Rule]) -> "DisambiguationFilter":
        """Declare ``levels[0] > levels[1] > ...`` (transitively).

        Each level is an iterable of rules of equal priority; every rule
        of a lower level is forbidden under every rule of a higher one.
        """
        groups: List[Tuple[Rule, ...]] = [tuple(level) for level in levels]
        for high_index, high_group in enumerate(groups):
            for low_group in groups[high_index + 1 :]:
                for parent in high_group:
                    for child in low_group:
                        self.forbid(parent, child)
        return self

    def left_assoc(self, rule: Rule, *, group: Iterable[Rule] = ()) -> "DisambiguationFilter":
        """``a op b op c`` groups left: forbid the rightmost recursion.

        ``group`` extends the restriction to mutually-associative rules
        (SDF attaches ``assoc`` pairwise within a priority group).
        """
        position = self._recursive_position(rule, last=True)
        for child in (rule, *group):
            self.forbid_at(rule, position, child)
        return self

    def right_assoc(self, rule: Rule, *, group: Iterable[Rule] = ()) -> "DisambiguationFilter":
        position = self._recursive_position(rule, last=False)
        for child in (rule, *group):
            self.forbid_at(rule, position, child)
        return self

    def non_assoc(self, rule: Rule) -> "DisambiguationFilter":
        self.left_assoc(rule)
        self.right_assoc(rule)
        return self

    @staticmethod
    def _recursive_position(rule: Rule, last: bool) -> int:
        positions = [
            index
            for index, symbol in enumerate(rule.rhs)
            if symbol == rule.lhs
        ]
        if not positions:
            raise ValueError(
                f"rule {rule} is not recursive; associativity does not apply"
            )
        return positions[-1] if last else positions[0]

    # -- the predicate -----------------------------------------------------

    def allows(self, parent: Rule, index: int, child: Rule) -> bool:
        if child in self._forbidden_anywhere.get(parent, ()):
            return False
        if child in self._forbidden_at.get((parent, index), ()):
            return False
        return True

    def allows_tree(self, tree: TreeNode) -> bool:
        """True iff no node of the tree violates any restriction."""
        verdict_cache: Dict[int, bool] = {}

        def check(node: TreeNode) -> bool:
            cached = verdict_cache.get(id(node))
            if cached is not None:
                return cached
            allowed = True
            if isinstance(node, ParseNode):
                for index, child in enumerate(node.children):
                    if isinstance(child, ParseNode) and not self.allows(
                        node.rule, index, child.rule
                    ):
                        allowed = False
                        break
                    if not check(child):
                        allowed = False
                        break
            verdict_cache[id(node)] = allowed
            return allowed

        return check(tree)

    def filter(self, trees: Sequence[TreeNode]) -> Tuple[TreeNode, ...]:
        """The surviving trees, in their original order."""
        return tuple(tree for tree in trees if self.allows_tree(tree))

    @property
    def is_empty(self) -> bool:
        return not (self._forbidden_anywhere or self._forbidden_at)

    def __repr__(self) -> str:
        anywhere = sum(len(v) for v in self._forbidden_anywhere.values())
        positional = sum(len(v) for v in self._forbidden_at.values())
        return (
            f"DisambiguationFilter({anywhere} priority restrictions, "
            f"{positional} positional restrictions)"
        )
