"""Parsing runtimes: the grammar-independent halves of Fig. 2.2(c).

All engines are parameterized by a *control* object exposing
``start_state``, ``action(state, terminal)`` and ``goto(state,
nonterminal)`` — a graph-backed control (conventional or lazy) or a
table-backed one plug in interchangeably.
"""

from .disambiguation import DisambiguationFilter
from .errors import AmbiguousInputError, ParseError, SweepLimitExceeded
from .forest import (
    Forest,
    Leaf,
    ParseNode,
    TreeNode,
    bracketed,
    depth,
    node_count,
    pretty,
    tokens_of,
)
from .gss import GSSNode, GSSParser
from .incremental import Edit, IncrementalOutcome, IncrementalParser, splice
from .lr_parse import DetParseResult, SimpleLRParser, recover_start_trees
from .parallel import ParseResult, ParseStats, PoolParser
from .stacks import StackCell, shared_cells
from .trace import Trace, TraceEvent

__all__ = [
    "AmbiguousInputError",
    "DetParseResult",
    "DisambiguationFilter",
    "Edit",
    "Forest",
    "GSSNode",
    "GSSParser",
    "IncrementalOutcome",
    "IncrementalParser",
    "Leaf",
    "ParseError",
    "ParseNode",
    "ParseResult",
    "ParseStats",
    "PoolParser",
    "SimpleLRParser",
    "StackCell",
    "SweepLimitExceeded",
    "Trace",
    "TraceEvent",
    "TreeNode",
    "bracketed",
    "depth",
    "node_count",
    "pretty",
    "recover_start_trees",
    "shared_cells",
    "splice",
    "tokens_of",
]
