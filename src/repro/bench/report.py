"""Report rendering: the Fig. 7.1 rows and the Fig. 2.1 capability matrix.

Absolute numbers cannot match a 1988 SUN 3/60 running LeLisp; what must
hold is the *shape* of the results.  :func:`check_figure_7_1_shape`
encodes the paper's qualitative claims as assertions, and
:func:`render_figure_7_1` prints the same rows the paper charts.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines.cigale import CigaleParser
from ..baselines.earley import EarleyParser
from ..baselines.ll1 import LL1Parser, NotLL1Error
from ..baselines.rd_backtrack import BacktrackBudgetExceeded, BacktrackingParser
from ..core.ipg import IPG
from ..grammar.builders import grammar_from_text
from ..grammar.symbols import Terminal
from ..lr.generator import ConventionalGenerator
from ..lr.lalr import lalr_table
from ..lr.table import TableControl, resolve_conflicts
from ..runtime.lr_parse import SimpleLRParser
from ..runtime.parallel import PoolParser
from .harness import PHASES, ProtocolResult

# ---------------------------------------------------------------------------
# Fig. 7.1
# ---------------------------------------------------------------------------


def render_figure_7_1(results: Sequence[ProtocolResult]) -> str:
    """ASCII table: one row per (system, input), one column per phase."""
    header = ["system", "input"] + list(PHASES) + ["total"]
    rows: List[List[str]] = [header]
    for result in results:
        rows.append(
            [result.system, result.input_name]
            + [f"{result.times[phase] * 1000:8.2f}ms" for phase in PHASES]
            + [f"{result.total() * 1000:8.2f}ms"]
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [
        "  ".join(cell.rjust(widths[col]) for col, cell in enumerate(row))
        for row in rows
    ]
    return "\n".join(lines)


def check_figure_7_1_shape(results: Sequence[ProtocolResult]) -> List[str]:
    """The paper's qualitative claims; returns violation messages.

    * IPG's construction time is "almost zero": far below PG's and Yacc's.
    * IPG's modification time is far below reconstruction (PG, Yacc).
    * IPG's first parse is slower than its second (generation is happening
      during parse 1); after the table is warm (parse 2) times settle.
    * Yacc/PG parse times do not differ between first and second parse in
      shape (no generation during parsing) — allowed generous tolerance.
    """
    by_key: Dict[Tuple[str, str], ProtocolResult] = {
        (r.system, r.input_name): r for r in results
    }
    problems: List[str] = []
    inputs = sorted({r.input_name for r in results})
    for input_name in inputs:
        yacc = by_key.get(("yacc", input_name))
        pg = by_key.get(("pg", input_name))
        ipg = by_key.get(("ipg", input_name))
        if not (yacc and pg and ipg):
            continue
        if not ipg.times["construct"] < 0.25 * pg.times["construct"]:
            problems.append(
                f"{input_name}: IPG construct ({ipg.times['construct']:.4f}s) "
                f"not << PG construct ({pg.times['construct']:.4f}s)"
            )
        if not ipg.times["construct"] < 0.25 * yacc.times["construct"]:
            problems.append(
                f"{input_name}: IPG construct not << Yacc construct"
            )
        if not ipg.times["modify"] < 0.25 * pg.times["modify"]:
            problems.append(
                f"{input_name}: IPG modify ({ipg.times['modify']:.4f}s) "
                f"not << PG modify ({pg.times['modify']:.4f}s)"
            )
        if not ipg.times["modify"] < 0.25 * yacc.times["modify"]:
            problems.append(f"{input_name}: IPG modify not << Yacc modify")

    # Lazy warm-up: the first parse carries the generation work.  Checked
    # on the *aggregate* over all inputs — per-input margins on small
    # inputs are within scheduler noise, the sum is not.
    ipg_results = [r for r in results if r.system == "ipg"]
    if ipg_results:
        first = sum(r.times["parse1"] for r in ipg_results)
        second = sum(r.times["parse2"] for r in ipg_results)
        if not first > second:
            problems.append(
                f"aggregate IPG parse1 ({first:.4f}s) not > parse2 "
                f"({second:.4f}s) — no lazy generation observed during "
                f"first parses"
            )
    return problems


# ---------------------------------------------------------------------------
# Fig. 2.1 — the capability matrix, measured instead of asserted
# ---------------------------------------------------------------------------

AMBIGUOUS_LEFTREC = """
    E ::= n
    E ::= E + E
    START ::= E
"""

AMBIGUOUS_RIGHTREC = """
    E ::= n
    E ::= n + E
    E ::= n + E + E
    START ::= E
"""

UNAMBIGUOUS = """
    E ::= T
    E ::= E + T
    T ::= n
    T ::= ( E )
    START ::= E
"""


def _tokens(text: str) -> List[Terminal]:
    return [Terminal(part) for part in text.split()]


def _expression_input(operators: int) -> List[Terminal]:
    tokens = [Terminal("n")]
    for _ in range(operators):
        tokens.append(Terminal("+"))
        tokens.append(Terminal("n"))
    return tokens


class Capability:
    """One measured Fig. 2.1 row."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.handles_ambiguity = False
        self.handles_left_recursion = False
        self.parse_seconds: Optional[float] = None
        self.modify_ratio: Optional[float] = None  # edit cost / construct cost
        self.composes: bool = False

    def marks(self, baseline_seconds: float) -> Dict[str, str]:
        """Translate measurements into the paper's ++/+/blank marks."""
        powerful = ""
        if self.handles_ambiguity and self.handles_left_recursion:
            powerful = "++"
        elif self.handles_ambiguity:
            powerful = "+"
        fast = ""
        if self.parse_seconds is not None and baseline_seconds > 0:
            ratio = self.parse_seconds / baseline_seconds
            fast = "++" if ratio < 15 else ("+" if ratio < 150 else "")
        flexible = ""
        if self.modify_ratio is not None:
            flexible = (
                "++" if self.modify_ratio < 0.10
                else ("+" if self.modify_ratio < 0.75 else "")
            )
        modular = "+" if self.composes else ""
        return {
            "powerful": powerful,
            "fast": fast,
            "flexible": flexible,
            "modular": modular,
        }


def capability_matrix(scale: int = 150) -> Tuple[Dict[str, Capability], float]:
    """Measure every Fig. 2.1 row; returns (rows, LALR baseline seconds).

    ``scale`` is the operator count of the expression timing input
    (~2·scale tokens), used for the rows that cannot handle the SDF
    grammar (LL, Cigale, OBJ).  The general rows — LR/LALR, Earley,
    Tomita, IPG — are timed on the *SDF grammar* parsing the 475-token
    ``ASF.sdf`` input: the "fast" column is about large sentences under a
    realistic grammar, and Earley's per-token cost growing with grammar
    size is exactly what the paper's blank cell reflects.
    """
    from ..sdf.corpus import corpus_tokens, sdf_grammar

    ambiguous = grammar_from_text(AMBIGUOUS_LEFTREC)
    right_recursive = grammar_from_text(AMBIGUOUS_RIGHTREC)
    unambiguous = grammar_from_text(UNAMBIGUOUS)
    timing_input = _expression_input(scale)
    small_ambiguous = _expression_input(3)
    sdf = sdf_grammar()
    sdf_input = corpus_tokens()["ASF.sdf"]

    rows: Dict[str, Capability] = {}

    def timed(thunk: Callable[[], object]) -> float:
        start = time.perf_counter()
        thunk()
        return time.perf_counter() - start

    # -- LR(k)/LALR(k): fast, nothing else --------------------------------
    lalr = Capability("LR(k), LALR(k)")
    lalr.handles_ambiguity = False  # conflicts are fatal for a det. parser
    try:
        resolve_conflicts(lalr_table(ambiguous))
        lalr.handles_left_recursion = True  # left recursion as such is fine
    except Exception:  # pragma: no cover - defensive
        lalr.handles_left_recursion = False
    table, _ = resolve_conflicts(lalr_table(sdf))
    det = SimpleLRParser(TableControl(table), sdf)
    lalr.parse_seconds = timed(lambda: det.parse(sdf_input))
    lalr.modify_ratio = 1.0  # a change costs a full reconstruction
    rows[lalr.name] = lalr
    baseline = lalr.parse_seconds

    # -- recursive descent / LL(k) ----------------------------------------
    ll = Capability("recursive descent, LL(k)")
    try:
        LL1Parser(ambiguous)
        ll.handles_ambiguity = True
    except NotLL1Error:
        ll.handles_ambiguity = False
    ll.handles_left_recursion = False  # by construction
    ll_grammar = grammar_from_text(
        """
        E ::= n R
        R ::= + n R
        R ::=
        START ::= E
        """
    )
    ll_parser = LL1Parser(ll_grammar)
    ll.parse_seconds = timed(lambda: ll_parser.parse(timing_input))
    ll.modify_ratio = 1.0
    rows[ll.name] = ll

    # -- Earley ------------------------------------------------------------
    earley = Capability("Earley")
    earley_parser = EarleyParser(ambiguous)
    earley.handles_ambiguity = earley_parser.recognize(small_ambiguous)
    earley.handles_left_recursion = earley_parser.recognize(small_ambiguous)
    timing_earley = EarleyParser(sdf)
    earley.parse_seconds = timed(lambda: timing_earley.recognize(sdf_input))
    earley.modify_ratio = 0.0  # no generation phase at all
    earley.composes = True  # grammars are plain rule sets; union works
    rows[earley.name] = earley

    # -- Cigale -------------------------------------------------------------
    cigale = Capability("Cigale")
    trie_parser = CigaleParser.from_grammar(ambiguous)
    # finds one parse, not all: ambiguity is not *handled*, just tolerated
    cigale.handles_ambiguity = False
    cigale.handles_left_recursion = trie_parser.recognize(small_ambiguous)
    timing_cigale = CigaleParser.from_grammar(unambiguous)
    cigale.parse_seconds = timed(lambda: timing_cigale.recognize(timing_input))
    cigale.modify_ratio = 0.0  # add_rule is O(|rule|) trie insertion
    cigale.composes = True  # merge() combines tries "just like modules"
    rows[cigale.name] = cigale

    # -- OBJ (backtracking recursive descent) -----------------------------
    obj = Capability("OBJ")
    bt = BacktrackingParser(right_recursive)
    obj.handles_ambiguity = bt.count_parses(_expression_input(2)) > 1
    obj.handles_left_recursion = BacktrackingParser(ambiguous).recognize(
        small_ambiguous
    )
    bt_unambiguous = BacktrackingParser(unambiguous)
    try:
        obj.parse_seconds = timed(
            lambda: bt_unambiguous.recognize(_expression_input(min(scale, 40)))
        )
        # normalize to the full-scale input length for a fair-ish ratio
        obj.parse_seconds *= max(1.0, scale / 40)
    except BacktrackBudgetExceeded:  # pragma: no cover - depends on scale
        obj.parse_seconds = None
    obj.modify_ratio = 0.5  # no tables, but OBJ reparses module bodies
    rows[obj.name] = obj

    # -- Tomita (PG tables + parallel parser) ------------------------------
    tomita = Capability("Tomita")
    pg_control = ConventionalGenerator(ambiguous).generate()
    pool = PoolParser(pg_control, ambiguous)
    tomita.handles_ambiguity = len(pool.parse(small_ambiguous).trees) > 1
    tomita.handles_left_recursion = True
    timing_control = ConventionalGenerator(sdf).generate()
    timing_pool = PoolParser(timing_control, sdf)
    tomita.parse_seconds = timed(lambda: timing_pool.recognize(sdf_input))
    tomita.modify_ratio = 1.0  # same table generator as LR: full rebuild
    rows[tomita.name] = tomita

    # -- IPG -----------------------------------------------------------------
    ipg_row = Capability("IPG")
    ipg = IPG(ambiguous.copy())
    ipg_row.handles_ambiguity = len(ipg.parse(small_ambiguous).trees) > 1
    ipg_row.handles_left_recursion = True
    ipg_timing = IPG(sdf.copy())
    ipg_timing.recognize(sdf_input)  # warm the table, as the paper notes
    ipg_row.parse_seconds = timed(lambda: ipg_timing.recognize(sdf_input))
    construct_cost = timed(lambda: ConventionalGenerator(sdf).generate())
    modify_cost = timed(
        lambda: ipg_timing.add_rule("CF-ELEM ::= probe-terminal")
    )
    ipg_row.modify_ratio = (
        modify_cost / construct_cost if construct_cost > 0 else 0.0
    )
    ipg_row.composes = True  # incremental ADD-RULE imports module rules
    rows[ipg_row.name] = ipg_row

    return rows, baseline or 1e-9


def render_capability_matrix(
    rows: Dict[str, Capability], baseline_seconds: float
) -> str:
    header = ["algorithm", "powerful", "fast", "flexible", "modular"]
    table: List[List[str]] = [header]
    for name, capability in rows.items():
        marks = capability.marks(baseline_seconds)
        table.append(
            [name, marks["powerful"], marks["fast"], marks["flexible"], marks["modular"]]
        )
    widths = [max(len(row[col]) for row in table) for col in range(len(header))]
    return "\n".join(
        "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row)).rstrip()
        for row in table
    )
