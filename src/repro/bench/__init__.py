"""Benchmark support: workloads, the §7 protocol harness, and reports."""

from .hotpath import (
    CONTROL_TIERS,
    FEASIBLE_INPUTS,
    check_floor,
    collect_hotpath_report,
    measure_hotpath,
    render_hotpath,
)
from .harness import (
    IPGSystem,
    PGSystem,
    PHASES,
    ProtocolResult,
    SYSTEMS,
    SystemAdapter,
    YaccSystem,
    run_figure_7_1,
    run_protocol,
)
from .report import (
    Capability,
    capability_matrix,
    check_figure_7_1_shape,
    render_capability_matrix,
    render_figure_7_1,
)
from .workloads import (
    Fig71Workload,
    ambiguous_expression_grammar,
    ambiguous_sentence,
    booleans_workload,
    sdf_workload,
)

__all__ = [
    "CONTROL_TIERS",
    "Capability",
    "FEASIBLE_INPUTS",
    "Fig71Workload",
    "IPGSystem",
    "PGSystem",
    "PHASES",
    "ProtocolResult",
    "SYSTEMS",
    "SystemAdapter",
    "YaccSystem",
    "ambiguous_expression_grammar",
    "ambiguous_sentence",
    "booleans_workload",
    "capability_matrix",
    "check_figure_7_1_shape",
    "check_floor",
    "collect_hotpath_report",
    "measure_hotpath",
    "render_capability_matrix",
    "render_figure_7_1",
    "render_hotpath",
    "run_figure_7_1",
    "run_protocol",
    "sdf_workload",
]
