"""Benchmark support: workloads, the §7 protocol harness, and reports."""

from .harness import (
    IPGSystem,
    PGSystem,
    PHASES,
    ProtocolResult,
    SYSTEMS,
    SystemAdapter,
    YaccSystem,
    run_figure_7_1,
    run_protocol,
)
from .report import (
    Capability,
    capability_matrix,
    check_figure_7_1_shape,
    render_capability_matrix,
    render_figure_7_1,
)
from .workloads import (
    Fig71Workload,
    ambiguous_expression_grammar,
    ambiguous_sentence,
    booleans_workload,
    sdf_workload,
)

__all__ = [
    "Capability",
    "Fig71Workload",
    "IPGSystem",
    "PGSystem",
    "PHASES",
    "ProtocolResult",
    "SYSTEMS",
    "SystemAdapter",
    "YaccSystem",
    "ambiguous_expression_grammar",
    "ambiguous_sentence",
    "booleans_workload",
    "capability_matrix",
    "check_figure_7_1_shape",
    "render_capability_matrix",
    "render_figure_7_1",
    "run_figure_7_1",
    "run_protocol",
    "sdf_workload",
]
