"""Hot-path throughput: tokens/sec per control-plane tier.

Measures the *warm* parse loop — the steady state the lazy/incremental
generators put the system in — for each tier of the control plane:

* ``lazy_baseline`` — the seed behaviour: :class:`LazyControl` with the
  original O(stack-depth) tuple signatures (the pre-compiled-control hot
  path, kept measurable via ``PoolParser(legacy_signatures=True)``);
* ``lazy`` — :class:`LazyControl` with incremental O(1) stack signatures;
* ``compiled`` — :class:`~repro.lr.compiled.CompiledControl` memoizing
  ACTION into shared tuples (what :class:`~repro.core.ipg.IPG` runs);
* ``table`` — the dense integer :class:`~repro.lr.table.TableControl`
  over a fully expanded LR(0) table (the kernel-free representation);
* ``gss`` — the merged-stack :class:`~repro.runtime.gss.GSSParser` over
  the compiled control: Tomita's graph-structured stack bounds the live
  frontier by the state count, so the heavily ambiguous booleans
  medium/large inputs (exponential for every linear-stack tier) stay
  polynomial and join the measurement.

Every tier drives the same token streams, so the numbers isolate the
control plane and the stack discipline.  The first parse per tier is a
discarded warm-up (it pays lazy expansion / cache population); reported
throughput is the best of ``repeats`` timed warm parses.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Sequence

from ..core.incremental import IncrementalGenerator
from ..grammar.grammar import Grammar
from ..lr.compiled import CompiledControl
from ..lr.graph import ItemSetGraph
from ..lr.table import TableControl, lr0_table
from ..runtime.gss import GSSParser
from ..runtime.parallel import PoolParser
from .workloads import Fig71Workload, TokenStream

CONTROL_TIERS = ("lazy_baseline", "lazy", "compiled", "table", "gss")

#: PAR-PARSE keeps one linear stack per live parser, so heavily ambiguous
#: sentences (the booleans medium/large inputs) are exponential in every
#: linear-stack control tier — only the small inputs measure the hot loop
#: rather than the ambiguity blow-up the paper's section 2.1 restriction
#: excludes.
FEASIBLE_INPUTS: Dict[str, Sequence[str]] = {"booleans": ("tiny", "small")}

#: Per-tier overrides of the feasible-input lists: the merged-stack GSS
#: tier shares states across forked parsers, so the booleans inputs that
#: are exponential for the linear-stack pool stay polynomial for it.
TIER_FEASIBLE_INPUTS: Dict[str, Dict[str, Sequence[str]]] = {
    "booleans": {"gss": ("tiny", "small", "medium", "large")},
}


def _lazy_parser(grammar: Grammar, legacy: bool) -> PoolParser:
    generator = IncrementalGenerator(grammar)
    return PoolParser(generator.control, grammar, legacy_signatures=legacy)


def _compiled_parser(grammar: Grammar) -> PoolParser:
    generator = IncrementalGenerator(grammar)
    control = CompiledControl(generator.control, grammar)
    return PoolParser(control, grammar)


def _table_parser(grammar: Grammar) -> PoolParser:
    graph = ItemSetGraph(grammar)
    graph.expand_all()
    return PoolParser(TableControl(lr0_table(graph)), grammar)


def _gss_parser(grammar: Grammar) -> GSSParser:
    generator = IncrementalGenerator(grammar)
    control = CompiledControl(generator.control, grammar)
    return GSSParser(control, grammar=grammar)


TIER_FACTORIES: Dict[str, Callable[[Grammar], Any]] = {
    "lazy_baseline": lambda grammar: _lazy_parser(grammar, legacy=True),
    "lazy": lambda grammar: _lazy_parser(grammar, legacy=False),
    "compiled": _compiled_parser,
    "table": _table_parser,
    "gss": _gss_parser,
}


def _throughputs(
    parsers: Dict[str, Any], tokens: TokenStream, repeats: int, mode: str
) -> Dict[str, float]:
    """Best warm tokens/sec per tier over ``repeats`` interleaved rounds.

    ``recognize`` (the default upstream) is the pure ACTION/GOTO loop and
    works on arbitrarily ambiguous workloads; ``parse`` adds tree
    building, which on heavily ambiguous sentences (booleans) grows
    Catalan-fast regardless of the control plane.

    Each timing round measures every tier once before the next round
    starts, so transient machine noise lands on all tiers alike instead
    of skewing whichever tier happened to run during the disturbance.
    """
    runs: Dict[str, Callable[[TokenStream], Any]] = {}
    for tier, parser in parsers.items():
        run = parser.recognize if mode == "recognize" else parser.parse
        # Discarded warm-up (expansion + cache population) doubling as the
        # acceptance check; a plain statement so -O cannot strip it.
        if not run(tokens):
            raise ValueError(
                f"hot-path workload sentence rejected by the {tier!r} tier"
            )
        runs[tier] = run
    best: Dict[str, float] = {tier: float("inf") for tier in parsers}
    for _ in range(repeats):
        for tier, run in runs.items():
            started = time.perf_counter()
            run(tokens)
            elapsed = time.perf_counter() - started
            if elapsed < best[tier]:
                best[tier] = elapsed
    return {
        tier: (len(tokens) / seconds if seconds > 0 else float("inf"))
        for tier, seconds in best.items()
    }


def measure_hotpath(
    workload: Fig71Workload,
    repeats: int = 3,
    tiers: Sequence[str] = CONTROL_TIERS,
    inputs: Optional[Sequence[str]] = None,
    mode: str = "recognize",
    tier_inputs: Optional[Dict[str, Sequence[str]]] = None,
) -> Dict[str, Any]:
    """Tokens/sec per (input, control tier) for one §7 workload.

    ``inputs`` is the default feasible-input list; ``tier_inputs`` maps a
    tier name to its own list (e.g. the merged-stack ``gss`` tier runs
    the booleans inputs the linear-stack tiers cannot).  An input's
    ``tokens_per_sec`` only contains the tiers that ran it.

    Returns a JSON-able dict::

        {"workload": ..., "repeats": ..., "mode": ...,
         "inputs": {name: {"tokens": N, "tokens_per_sec": {tier: t/s}}},
         "speedup_compiled_vs_baseline": {name: ratio}}
    """
    base = list(inputs) if inputs is not None else list(workload.input_names())
    overrides = dict(tier_inputs or {})
    allowed = {tier: tuple(overrides.get(tier, base)) for tier in tiers}
    names = [
        name
        for name in workload.input_names()
        if any(name in allowed[tier] for tier in tiers)
    ]
    report: Dict[str, Any] = {
        "workload": workload.name,
        "repeats": repeats,
        "mode": mode,
        "inputs": {},
        "speedup_compiled_vs_baseline": {},
    }
    for name in names:
        tokens = workload.inputs[name]
        parsers = {
            tier: TIER_FACTORIES[tier](workload.fresh_grammar())
            for tier in tiers
            if name in allowed[tier]
        }
        rates = {
            tier: round(rate, 1)
            for tier, rate in _throughputs(parsers, tokens, repeats, mode).items()
        }
        report["inputs"][name] = {
            "tokens": len(tokens),
            "tokens_per_sec": rates,
        }
        if rates.get("lazy_baseline") and rates.get("compiled"):
            report["speedup_compiled_vs_baseline"][name] = round(
                rates["compiled"] / rates["lazy_baseline"], 2
            )
    # Workload-level aggregate: total tokens / total seconds per tier
    # (equivalently the token-weighted harmonic mean of the input rates),
    # which is the steady-state throughput of serving the whole corpus.
    # Only the inputs a tier actually ran participate in its aggregate —
    # summing tokens over inputs another tier served would overstate the
    # slower tier's throughput.
    aggregate: Dict[str, float] = {}
    for tier in tiers:
        ran = [
            d
            for d in report["inputs"].values()
            if d["tokens_per_sec"].get(tier)
        ]
        total_tokens = sum(d["tokens"] for d in ran)
        total_seconds = sum(
            d["tokens"] / d["tokens_per_sec"][tier] for d in ran
        )
        if total_seconds:
            aggregate[tier] = round(total_tokens / total_seconds, 1)
    report["aggregate_tokens_per_sec"] = aggregate
    if aggregate.get("lazy_baseline") and aggregate.get("compiled"):
        report["speedup_compiled_vs_baseline"]["aggregate"] = round(
            aggregate["compiled"] / aggregate["lazy_baseline"], 2
        )
    return report


def measure_warm_start(
    table_cache: str,
    workload: Optional[Fig71Workload] = None,
    repeats: int = 3,
    input_name: Optional[str] = None,
) -> Dict[str, Any]:
    """Cold vs warm cold-start generation cost for one workload grammar.

    The measured phase is everything a fresh process pays before its first
    steady-state parse: building the :class:`~repro.core.ipg.IPG`, one
    recognition of a small input (forcing lazy expansion), and a
    dense-table ``prepare()`` (forcing the conventional ``expand_all``).
    ``cold`` runs without a table store; ``warm`` runs against the
    content-addressed store under ``table_cache`` — populated first via
    ``persist_tables()``, which is idempotent, so a second benchmark run
    against the same directory (or a CI run restoring it from a cache)
    reports ``written_states == 0`` and serves everything from disk.

    ``speedup`` is best-of-``repeats`` cold over best-of-``repeats`` warm;
    floors only enforce it when ``saved_states > 0`` (a store that served
    nothing proves nothing about restore cost).
    """
    from ..core.ipg import IPG
    from ..lr.tablestore import TableStore

    if workload is None:
        from .workloads import sdf_workload

        workload = sdf_workload()
    name = input_name or min(
        workload.inputs, key=lambda key: len(workload.inputs[key])
    )
    tokens = workload.inputs[name]
    store = TableStore(table_cache)

    def cold_start(table_store: Optional[TableStore]):
        # Grammar construction (workload text parsing) happens outside the
        # timer: the phase under measurement is control-plane generation
        # for a grammar the process already has, which is what the store
        # can and cannot save.
        grammar = workload.fresh_grammar()
        started = time.perf_counter()
        ipg = IPG(grammar, table_store=table_store)
        ipg.recognize(tokens)
        ipg.language.engine("dense").prepare()
        return ipg, time.perf_counter() - started

    # Populate the store (skip-if-exists per entry: re-running against an
    # already warm directory writes nothing and proves cross-run reuse).
    seeder, _ = cold_start(store)
    written = seeder.persist_tables()

    cold_seconds = min(cold_start(None)[1] for _ in range(repeats))
    warm_ipg, warm_seconds = None, float("inf")
    for _ in range(repeats):
        ipg, elapsed = cold_start(store)
        if elapsed < warm_seconds:
            warm_seconds = elapsed
        warm_ipg = ipg
    summary = warm_ipg.summary()
    return {
        "workload": workload.name,
        "input": name,
        "repeats": repeats,
        "written_states": written,
        "saved_states": summary["saved_states"],
        "cold_states": summary["cold_states"],
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": (
            round(cold_seconds / warm_seconds, 3)
            if warm_seconds
            else float("inf")
        ),
    }


def collect_hotpath_report(
    repeats: int = 5,
    workload_names: Optional[Sequence[str]] = None,
    table_cache: Optional[str] = None,
) -> Dict[str, Any]:
    """The full ``BENCH_parse_hotpath.json`` payload.

    The single owner of the report shape and the per-workload feasible
    input lists — both ``benchmarks/bench_parse_hotpath.py`` and
    ``benchmarks/collect_experiments.py`` write the repo-root JSON through
    this function, so the tracked artifact never depends on which entry
    point ran last.
    """
    from .workloads import booleans_workload, sdf_workload

    factories = {"sdf": sdf_workload, "booleans": booleans_workload}
    names = list(workload_names) if workload_names is not None else list(factories)
    report = {
        "benchmark": "parse_hotpath",
        "unit": "tokens/sec (best of warm repeats, recognition)",
        "workloads": {
            name: measure_hotpath(
                factories[name](),
                repeats=repeats,
                inputs=FEASIBLE_INPUTS.get(name),
                tier_inputs=TIER_FEASIBLE_INPUTS.get(name),
            )
            for name in names
        },
    }
    if table_cache is not None:
        # One store directory serves every workload: grammar manifests are
        # keyed per grammar, state entries dedupe across shared subgrammars.
        for name in names:
            report["workloads"][name]["warm_start"] = measure_warm_start(
                table_cache, factories[name]()
            )
    return report


def render_hotpath(report: Dict[str, Any]) -> str:
    """ASCII rendering of a :func:`measure_hotpath` report."""
    tiers = CONTROL_TIERS
    header = f"  {'input':12s} {'tokens':>7s}" + "".join(
        f" {tier:>14s}" for tier in tiers
    ) + f" {'speedup':>9s}"
    lines = [f"workload: {report['workload']}", header]
    for name, data in report["inputs"].items():
        rates = data["tokens_per_sec"]
        cells = "".join(f" {rates.get(tier, 0.0):>14,.0f}" for tier in tiers)
        speedup = report["speedup_compiled_vs_baseline"].get(name)
        suffix = f" {speedup:>8.2f}x" if speedup is not None else ""
        lines.append(f"  {name:12s} {data['tokens']:>7d}{cells}{suffix}")
    return "\n".join(lines)


def check_floor(
    report: Dict[str, Any],
    floor: Dict[str, Any],
    max_regression: float = 3.0,
) -> list:
    """Compare a report against a checked-in floor; return failure strings.

    Two kinds of guard, both read from the floor file:

    * ``tokens_per_sec`` — absolute floors: a tier/input pair fails when
      measured tokens/sec drops below ``floor / max_regression``.  A
      gross sanity net only, since absolute numbers depend on the
      machine.
    * ``relative`` — machine-independent ratios *within the same run*:
      each rule ``{"input", "numerator", "denominator", "min_ratio"}``
      fails when ``numerator`` tokens/sec is less than ``min_ratio`` ×
      ``denominator``.  This is the real regression signal: reintroducing
      O(depth) signatures or per-call action allocation collapses the
      compiled-vs-baseline ratio no matter how fast the runner is.
    * ``warm_start`` — guards on the :func:`measure_warm_start` section,
      checked only when the run measured one (``--table-cache``) *and*
      the store actually served states (``saved_states > 0``; an empty
      store proves nothing).  ``max_warm_cold_states`` bounds lazy
      expansions a warm start is still allowed to pay (0 = everything
      restored); ``min_speedup`` floors cold-seconds over warm-seconds.
    """
    problems = []
    for name, floor_rates in floor.get("tokens_per_sec", {}).items():
        measured_input = report["inputs"].get(name)
        if measured_input is None:
            problems.append(f"input {name!r} missing from the measured report")
            continue
        for tier, floor_rate in floor_rates.items():
            measured = measured_input["tokens_per_sec"].get(tier)
            if measured is None:
                problems.append(f"{name}/{tier}: tier missing from the report")
            elif measured * max_regression < floor_rate:
                problems.append(
                    f"{name}/{tier}: {measured:,.0f} tokens/sec is more than "
                    f"{max_regression:.0f}x below the floor of "
                    f"{floor_rate:,.0f}"
                )
    for rule in floor.get("relative", ()):
        name = rule["input"]
        numerator = rule["numerator"]
        denominator = rule["denominator"]
        min_ratio = rule["min_ratio"]
        measured_input = report["inputs"].get(name)
        if measured_input is None:
            problems.append(f"input {name!r} missing from the measured report")
            continue
        rates = measured_input["tokens_per_sec"]
        if not rates.get(numerator) or not rates.get(denominator):
            problems.append(
                f"{name}: cannot compare {numerator} vs {denominator} "
                f"(tier missing or zero)"
            )
            continue
        ratio = rates[numerator] / rates[denominator]
        if ratio < min_ratio:
            problems.append(
                f"{name}: {numerator} is only {ratio:.2f}x {denominator} "
                f"in this run (floor requires >= {min_ratio}x)"
            )
    warm_rule = floor.get("warm_start")
    warm = report.get("warm_start")
    if (
        warm_rule
        and warm
        and warm_rule.get("workload") in (None, report.get("workload"))
        and warm.get("saved_states", 0) > 0
    ):
        max_cold = warm_rule.get("max_warm_cold_states")
        if max_cold is not None and warm["cold_states"] > max_cold:
            problems.append(
                f"warm_start: a warm-started session still expanded "
                f"{warm['cold_states']} states lazily (floor allows "
                f"<= {max_cold})"
            )
        min_speedup = warm_rule.get("min_speedup")
        if min_speedup is not None and warm["speedup"] < min_speedup:
            problems.append(
                f"warm_start: warm generation is only {warm['speedup']:.2f}x "
                f"cold (floor requires >= {min_speedup}x with "
                f"{warm['saved_states']} states served from the store)"
            )
    return problems
