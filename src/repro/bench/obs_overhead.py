"""Telemetry overhead: the cost of :mod:`repro.obs` on the parse path.

The observability layer promises that *disabled* tracing is nearly free:
``obs.span`` returns a shared no-op handle and the always-on counters are
a handful of cached lock-guarded increments.  This benchmark prices that
promise by timing the same warm recognition workload through
:class:`~repro.api.Language` under three tiers:

* ``stripped`` — the telemetry call sites monkeypatched to no-ops: the
  parse path with no observability at all (the reference cost);
* ``disabled`` — the shipped default: counters on, spans off;
* ``enabled`` — process-wide tracing on (spans allocate and publish).

Tiers run interleaved (every tier once per round, best round kept) so
machine noise lands on all of them alike, and the CI gate fails when the
``disabled`` tier falls more than the configured fraction (default 2%)
below ``stripped``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from ..api import Language
from ..core.metrics import full_table_states, states_materialized
from .workloads import booleans_workload

OVERHEAD_TIERS = ("stripped", "disabled", "enabled")

#: default CI gate: the disabled path may cost at most this fraction of
#: the stripped path's throughput (overridden by the floor file's
#: ``obs_overhead.max_disabled_overhead``)
MAX_DISABLED_OVERHEAD = 0.02


class _NullCM:
    """Stand-in for ``obs.NULL_SPAN`` with zero bookkeeping."""

    __slots__ = ()

    recording = False

    def __enter__(self) -> "_NullCM":
        return self

    def __exit__(self, *_exc: Any) -> None:
        pass

    def set(self, **_attributes: Any) -> None:
        pass


_NULL_CM = _NullCM()


class _ObsStub:
    """Replaces ``repro.api.language.obs`` in the stripped tier."""

    @staticmethod
    def span(_name: str, **_attributes: Any) -> _NullCM:
        return _NULL_CM

    @staticmethod
    def annotate(**_attributes: Any) -> None:
        pass


class _NoopInstrument:
    __slots__ = ()

    def inc(self, _amount: int = 1) -> None:
        pass

    def observe(self, _value: float) -> None:
        pass


def _strip_language_telemetry():
    """Patch the language module's telemetry seams; returns the restorer."""
    from ..api import language as module

    saved = (module.obs, module._record_parse, module._LEX_TOKENS, module._LEX_ERRORS)
    noop = _NoopInstrument()
    module.obs = _ObsStub()
    module._record_parse = lambda outcome, reparsed=False: None
    module._LEX_TOKENS = noop
    module._LEX_ERRORS = noop

    def restore() -> None:
        (module.obs, module._record_parse,
         module._LEX_TOKENS, module._LEX_ERRORS) = saved

    return restore


def measure_obs_overhead(
    rounds: int = 7, inner: int = 5, input_name: str = "small"
) -> Dict[str, Any]:
    """Tokens/sec per telemetry tier plus the §5.2 laziness numbers.

    Returns a JSON-able dict::

        {"benchmark": "obs_overhead", "tokens_per_sec": {tier: t/s},
         "overhead": {"disabled_vs_stripped": f, "enabled_vs_stripped": f},
         "laziness": {"states_materialized": n, "full_table_states": m,
                      "table_fraction": f}}

    ``inner`` recognitions are timed together per sample so a single
    sample is long enough for the clock; the best round per tier wins.
    """
    from .. import obs

    workload = booleans_workload()
    tokens = workload.inputs[input_name]
    language = Language(workload.fresh_grammar())
    if not language.recognize(tokens).accepted:  # warm-up: lazy expansion
        raise ValueError(f"obs-overhead workload input {input_name!r} rejected")

    def run() -> None:
        for _ in range(inner):
            language.recognize(tokens)

    def timed() -> float:
        started = time.perf_counter()
        run()
        return time.perf_counter() - started

    def stripped_sample() -> float:
        restore = _strip_language_telemetry()
        try:
            return timed()
        finally:
            restore()

    def enabled_sample() -> float:
        obs.set_tracing(True)
        try:
            return timed()
        finally:
            obs.set_tracing(False)

    samplers = {
        "stripped": stripped_sample,
        "disabled": timed,
        "enabled": enabled_sample,
    }
    best: Dict[str, float] = {tier: float("inf") for tier in OVERHEAD_TIERS}
    for _ in range(rounds):
        for tier in OVERHEAD_TIERS:
            elapsed = samplers[tier]()
            if elapsed < best[tier]:
                best[tier] = elapsed
    token_count = len(tokens) * inner
    rates = {
        tier: round(token_count / seconds, 1) if seconds > 0 else float("inf")
        for tier, seconds in best.items()
    }
    materialized = states_materialized(language.generator.graph)
    full = full_table_states(language.grammar)
    return {
        "benchmark": "obs_overhead",
        "unit": "tokens/sec (best of warm interleaved rounds, recognition)",
        "workload": workload.name,
        "input": input_name,
        "tokens": len(tokens),
        "rounds": rounds,
        "inner": inner,
        "tokens_per_sec": rates,
        "overhead": {
            "disabled_vs_stripped": _overhead(rates, "disabled"),
            "enabled_vs_stripped": _overhead(rates, "enabled"),
        },
        "laziness": {
            "states_materialized": materialized,
            "full_table_states": full,
            "table_fraction": round(materialized / full, 4) if full else 0.0,
        },
    }


def _overhead(rates: Dict[str, float], tier: str) -> float:
    """Fractional slowdown of ``tier`` relative to ``stripped`` (>= 0)."""
    stripped = rates.get("stripped")
    measured = rates.get(tier)
    if not stripped or not measured:
        return 0.0
    return round(max(0.0, 1.0 - measured / stripped), 4)


def render_obs_overhead(report: Dict[str, Any]) -> str:
    """ASCII rendering of a :func:`measure_obs_overhead` report."""
    rates = report["tokens_per_sec"]
    lines = [
        f"workload: {report['workload']}/{report['input']} "
        f"({report['tokens']} tokens, best of {report['rounds']} rounds)"
    ]
    for tier in OVERHEAD_TIERS:
        note = ""
        if tier != "stripped":
            overhead = report["overhead"][f"{tier}_vs_stripped"]
            note = f"  ({overhead:.2%} overhead vs stripped)"
        lines.append(f"  {tier:9s} {rates.get(tier, 0.0):>12,.0f} tokens/sec{note}")
    laziness = report["laziness"]
    lines.append(
        f"  laziness: {laziness['states_materialized']} of "
        f"{laziness['full_table_states']} states materialized "
        f"({laziness['table_fraction']:.1%} of the full table, §5.2)"
    )
    return "\n".join(lines)


def check_overhead(report: Dict[str, Any], floor: Dict[str, Any]) -> List[str]:
    """Gate the disabled tier against the floor file; failure strings.

    Reads ``floor["obs_overhead"]["max_disabled_overhead"]`` (fraction,
    default :data:`MAX_DISABLED_OVERHEAD`): the disabled-telemetry path
    must keep at least ``1 - max`` of the stripped path's throughput.
    """
    limit = floor.get("obs_overhead", {}).get(
        "max_disabled_overhead", MAX_DISABLED_OVERHEAD
    )
    problems: List[str] = []
    rates = report.get("tokens_per_sec", {})
    stripped = rates.get("stripped")
    disabled = rates.get("disabled")
    if not stripped or not disabled:
        problems.append("stripped/disabled tiers missing from the report")
        return problems
    overhead = 1.0 - disabled / stripped
    if overhead > limit:
        problems.append(
            f"disabled-telemetry path is {overhead:.2%} slower than the "
            f"stripped path (gate allows {limit:.2%}): "
            f"{disabled:,.0f} vs {stripped:,.0f} tokens/sec"
        )
    return problems
