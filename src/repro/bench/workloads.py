"""Benchmark workloads: the grammars, inputs and edits of section 7.

A :class:`Fig71Workload` packages everything the measurement protocol
needs: a fresh-grammar factory (each system must generate from its own
copy — generators subscribe to their grammar), the four pre-tokenized
input sentences, and the grammar modification
(``"(" CF-ELEM+ ")?" -> CF-ELEM``).

The booleans grammar of Fig. 4.1 is provided as a second, tiny workload so
the protocol can also be run at toy scale (useful for tests and quick
sanity checks).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Tuple

from ..grammar.builders import grammar_from_text
from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import NonTerminal, Terminal
from ..sdf.corpus import corpus_tokens, modification_rule, sdf_grammar

TokenStream = List[Terminal]


class Fig71Workload:
    """One grammar + input suite + modification for the §7 protocol."""

    def __init__(
        self,
        name: str,
        grammar_factory: Callable[[], Grammar],
        inputs: Dict[str, TokenStream],
        modification_factory: Callable[[Grammar], Rule],
    ) -> None:
        self.name = name
        self.grammar_factory = grammar_factory
        self.inputs = inputs
        self.modification_factory = modification_factory

    def fresh_grammar(self) -> Grammar:
        return self.grammar_factory()

    def modification(self, grammar: Grammar) -> Rule:
        return self.modification_factory(grammar)

    def input_names(self) -> Tuple[str, ...]:
        return tuple(self.inputs)

    def __repr__(self) -> str:
        return f"Fig71Workload({self.name}, inputs={list(self.inputs)})"


def sdf_workload() -> Fig71Workload:
    """The paper's actual workload: the SDF grammar and four SDF inputs."""
    return Fig71Workload(
        name="sdf",
        grammar_factory=sdf_grammar,
        inputs=corpus_tokens(),
        modification_factory=modification_rule,
    )


BOOLEANS_TEXT = """
    B ::= true
    B ::= false
    B ::= B or B
    B ::= B and B
    START ::= B
"""


def _booleans_grammar() -> Grammar:
    return grammar_from_text(BOOLEANS_TEXT)


def _boolean_sentence(length: int) -> TokenStream:
    """``true and true and ...`` with ``length`` operands."""
    tokens: List[Terminal] = [Terminal("true")]
    for index in range(length - 1):
        tokens.append(Terminal("and" if index % 2 == 0 else "or"))
        tokens.append(Terminal("true"))
    return tokens


def booleans_workload() -> Fig71Workload:
    """Toy-scale protocol workload on the Fig. 4.1 booleans grammar."""
    return Fig71Workload(
        name="booleans",
        grammar_factory=_booleans_grammar,
        inputs={
            "tiny": _boolean_sentence(3),
            "small": _boolean_sentence(10),
            "medium": _boolean_sentence(40),
            "large": _boolean_sentence(120),
        },
        modification_factory=lambda grammar: Rule(
            NonTerminal("B"), [Terminal("unknown")]
        ),
    )


def ambiguous_expression_grammar() -> Grammar:
    """``E ::= E + E | n`` — the classic ambiguity scaling workload.

    A sentence with k operators has Catalan(k) parses; used by the
    pool-vs-GSS ablation and the forest-sharing tests.
    """
    return grammar_from_text(
        """
        E ::= n
        E ::= E + E
        START ::= E
        """
    )


def ambiguous_sentence(operators: int) -> TokenStream:
    tokens: List[Terminal] = [Terminal("n")]
    for _ in range(operators):
        tokens.append(Terminal("+"))
        tokens.append(Terminal("n"))
    return tokens


# -- service traffic ------------------------------------------------------


def service_requests(
    sessions: int = 20,
    requests_per_session: int = 30,
    seed: int = 0,
    edit_fraction: float = 0.15,
    sentence_pool: int = 8,
) -> List[Dict[str, Any]]:
    """A deterministic interleaved edit/parse request stream.

    Traffic for the multi-session parse service
    (:class:`repro.service.Dispatcher`): ``sessions`` users each open a
    booleans grammar, then issue ``requests_per_session`` requests in a
    round-robin interleaving — mostly ``parse``/``recognize`` of sentences
    drawn from a small per-session pool (so repeats exercise the result
    cache), with an ``edit_fraction`` share of ``add-rule``/``delete-rule``
    toggles that bump the grammar version and evict cached results.

    The stream is a plain list of JSON-able request dicts, directly
    consumable by ``Dispatcher.handle``, ``run_batch``, or (encoded) the
    ``serve``/``batch`` CLI subcommands.
    """
    rng = random.Random(seed)
    names = [f"s{index:03d}" for index in range(sessions)]
    requests: List[Dict[str, Any]] = [
        {"cmd": "open", "session": name, "grammar": BOOLEANS_TEXT}
        for name in names
    ]
    sentences = [
        " ".join(t.name for t in _boolean_sentence(rng.randrange(1, 12)))
        for _ in range(sentence_pool)
    ]
    toggled: Dict[str, bool] = {name: False for name in names}
    for _round in range(requests_per_session):
        for name in names:
            roll = rng.random()
            if roll < edit_fraction:
                rule = "B ::= maybe"
                if toggled[name]:
                    requests.append(
                        {"cmd": "delete-rule", "session": name, "rule": rule}
                    )
                else:
                    requests.append(
                        {"cmd": "add-rule", "session": name, "rule": rule}
                    )
                toggled[name] = not toggled[name]
            else:
                cmd = "parse" if roll < (1 + edit_fraction) / 2 else "recognize"
                requests.append(
                    {
                        "cmd": cmd,
                        "session": name,
                        "tokens": rng.choice(sentences),
                    }
                )
    requests.append({"cmd": "metrics"})
    return requests
