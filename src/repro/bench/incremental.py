"""Incremental re-parsing benchmark: edit-size × input-size grid.

Measures, for every SDF corpus input and a grid of splice edits, the
same-run cost of ``IncrementalParser.reparse`` against a full re-parse of
the spliced tokens through the production hot path
(:class:`~repro.runtime.parallel.PoolParser` over the compiled control —
the strongest available baseline, fast-stretch and all).

Edits are realistic editor operations on the SDF token streams, chosen so
the edited input stays in the language (asserted — an accidental
rejection would make the full-parse baseline stop early and flatter the
ratio):

* ``sub1`` — replace one ``LITERAL`` token with ``ID`` (a sort name is a
  valid CF-ELEM wherever a literal is), edit size 1;
* ``ins2`` / ``ins8`` — insert ``, ID`` (×1 / ×4) into a comma-separated
  sort list, edit sizes 2 and 8 with a length delta;
* ``del2`` — delete one ``, ID`` pair from a sort list.

Each edit kind is measured at several positions (fractions of the input)
and the *worst* (slowest incremental) position is reported — the floor
gate then guards the weakest case, not a lucky one.

The headline numbers are **recognition mode** (the regime the service's
re-submission traffic runs in, and the same mode the hot-path bench
reports); a tree-mode section is included for visibility — there the
reuse is prefix-skipping only, since a genuinely changed region keeps its
differing subtree on the stack (see :mod:`repro.runtime.incremental`).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.incremental import IncrementalGenerator
from ..grammar.grammar import Grammar
from ..grammar.symbols import Terminal
from ..lr.compiled import CompiledControl
from ..runtime.incremental import Edit, IncrementalParser
from ..runtime.parallel import PoolParser

#: Input-fraction positions each edit kind is tried at.
POSITIONS = (0.25, 0.5, 0.75)

_ID = Terminal("ID")
_COMMA = Terminal(",")


def _substitution_sites(tokens: Sequence[Terminal]) -> List[int]:
    """Positions whose ``LITERAL`` can become ``ID`` (validity-preserving)."""
    return [i for i, t in enumerate(tokens) if t.name == "LITERAL"]


def _list_sites(tokens: Sequence[Terminal]) -> List[int]:
    """Positions of ``,`` inside ``ID , ID`` runs (sort/layout lists)."""
    return [
        i
        for i in range(1, len(tokens) - 1)
        if tokens[i].name == ","
        and tokens[i - 1].name == "ID"
        and tokens[i + 1].name == "ID"
    ]


def _nearest(sites: List[int], target: int) -> Optional[int]:
    return min(sites, key=lambda i: abs(i - target)) if sites else None


EDIT_KINDS: Dict[str, Tuple[int, Callable[[Sequence[Terminal], int], Optional[Edit]]]] = {
    # name -> (edit size, site -> Edit)
    "sub1": (1, lambda tokens, p: Edit(p, p + 1, (_ID,))),
    "ins2": (2, lambda tokens, p: Edit(p, p, (_COMMA, _ID))),
    "ins8": (8, lambda tokens, p: Edit(p, p, (_COMMA, _ID) * 4)),
    "del2": (2, lambda tokens, p: Edit(p, p + 2)),
}


def edit_grid(tokens: Sequence[Terminal]) -> Dict[str, List[Edit]]:
    """Every (edit kind, position) cell applicable to ``tokens``."""
    literal_sites = _substitution_sites(tokens)
    list_sites = _list_sites(tokens)
    grid: Dict[str, List[Edit]] = {}
    for kind, (_size, make) in EDIT_KINDS.items():
        sites = literal_sites if kind == "sub1" else list_sites
        edits: List[Edit] = []
        used = set()
        for fraction in POSITIONS:
            site = _nearest(sites, int(fraction * len(tokens)))
            if site is None or site in used:
                continue
            used.add(site)
            edits.append(make(tokens, site))
        if edits:
            grid[kind] = edits
    return grid


def _best(run: Callable[[], Any], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def _measure_input(
    grammar_factory: Callable[[], Grammar],
    tokens: Sequence[Terminal],
    repeats: int,
    build_trees: bool,
) -> Dict[str, Any]:
    """The (edit kind → worst-position cell) table for one input."""
    grammar = grammar_factory()
    generator = IncrementalGenerator(grammar)
    control = CompiledControl(generator.control, grammar)
    pool = PoolParser(control, grammar)
    incremental = IncrementalParser(control, grammar)

    tokens = tuple(tokens)
    full_run = pool.parse if build_trees else pool.recognize
    if not full_run(tokens):  # warm-up doubling as the acceptance check
        raise ValueError("corpus input rejected — workload is broken")
    base = incremental.parse(tokens, build_trees=build_trees)

    report: Dict[str, Any] = {"tokens": len(tokens), "edits": {}}
    for kind, edits in edit_grid(tokens).items():
        worst: Optional[Dict[str, Any]] = None
        for edit in edits:
            spliced = edit.apply(tokens)
            # Both sides must accept: a rejecting edit would let the full
            # baseline stop early and inflate the reported speedup.
            fresh = incremental.reparse(base, edit, build_trees=build_trees)
            if not fresh.result.accepted or not full_run(spliced):
                continue
            full_seconds = _best(lambda s=spliced: full_run(s), repeats)
            inc_seconds = _best(
                lambda e=edit: incremental.reparse(base, e, build_trees=build_trees),
                repeats,
            )
            cell = {
                "edit_size": len(edit.replacement) or (edit.end - edit.start),
                "position": edit.start,
                "full_us": round(full_seconds * 1e6, 1),
                "incremental_us": round(inc_seconds * 1e6, 1),
                "speedup": round(full_seconds / inc_seconds, 2)
                if inc_seconds
                else float("inf"),
                "reparsed_tokens": fresh.reuse.get("parsed_tokens"),
                "converged_at": fresh.reuse.get("converged_at"),
            }
            if worst is None or cell["speedup"] < worst["speedup"]:
                worst = cell
        if worst is not None:
            report["edits"][kind] = worst
    return report


def collect_incremental_report(repeats: int = 7) -> Dict[str, Any]:
    """The full ``BENCH_incremental.json`` payload (SDF corpus grid)."""
    from ..sdf.corpus import corpus_tokens, sdf_grammar

    inputs = corpus_tokens()
    report: Dict[str, Any] = {
        "benchmark": "incremental_reparse",
        "unit": "microseconds (best of warm repeats); speedup = full/incremental",
        "mode": "recognition",
        "repeats": repeats,
        "inputs": {
            name: _measure_input(sdf_grammar, tokens, repeats, build_trees=False)
            for name, tokens in inputs.items()
        },
    }
    # Tree-mode visibility row: the largest input, single-token edit.
    largest = max(inputs, key=lambda name: len(inputs[name]))
    report["tree_mode"] = {
        largest: _measure_input(
            sdf_grammar, inputs[largest], max(3, repeats // 2), build_trees=True
        )
    }
    return report


def render_incremental(report: Dict[str, Any]) -> str:
    """ASCII rendering of the recognition-mode grid."""
    lines = [
        f"incremental re-parse vs full ({report['mode']}, worst position per cell)",
        f"  {'input':12s} {'tokens':>7s} {'edit':>6s} {'size':>5s} "
        f"{'full':>10s} {'incr':>10s} {'speedup':>9s} {'reparsed':>9s}",
    ]
    for name, data in report["inputs"].items():
        for kind, cell in data["edits"].items():
            lines.append(
                f"  {name:12s} {data['tokens']:>7d} {kind:>6s} "
                f"{cell['edit_size']:>5d} {cell['full_us']:>8,.0f}us "
                f"{cell['incremental_us']:>8,.0f}us {cell['speedup']:>8.1f}x "
                f"{cell['reparsed_tokens']:>9}"
            )
    return "\n".join(lines)


def check_floor(
    report: Dict[str, Any],
    floor: Dict[str, Any],
    max_regression: float = 3.0,
) -> List[str]:
    """Compare a report to the committed floor; return failure strings.

    * ``relative`` — machine-independent same-run ratios: each rule
      ``{"input", "edit", "min_speedup"}`` fails when the measured
      incremental/full speedup for that cell drops below ``min_speedup``.
      This is the real signal: losing checkpoint resume or convergence
      collapses the ratio on any machine.
    * ``incremental_us`` — absolute per-cell ceilings (microseconds),
      failing only beyond ``max_regression`` — a gross sanity net.
    """
    problems: List[str] = []
    for rule in floor.get("relative", ()):
        cell = (
            report["inputs"]
            .get(rule["input"], {})
            .get("edits", {})
            .get(rule["edit"])
        )
        if cell is None:
            problems.append(
                f"{rule['input']}/{rule['edit']}: cell missing from the report"
            )
            continue
        if cell["speedup"] < rule["min_speedup"]:
            problems.append(
                f"{rule['input']}/{rule['edit']}: incremental is only "
                f"{cell['speedup']:.2f}x full in this run "
                f"(floor requires >= {rule['min_speedup']}x)"
            )
    for name, ceilings in floor.get("incremental_us", {}).items():
        measured_input = report["inputs"].get(name)
        if measured_input is None:
            problems.append(f"input {name!r} missing from the report")
            continue
        for kind, ceiling in ceilings.items():
            cell = measured_input["edits"].get(kind)
            if cell is None:
                problems.append(f"{name}/{kind}: cell missing from the report")
            elif cell["incremental_us"] > ceiling * max_regression:
                problems.append(
                    f"{name}/{kind}: {cell['incremental_us']:,.0f}us is more "
                    f"than {max_regression:.0f}x over the ceiling of "
                    f"{ceiling:,.0f}us"
                )
    return problems
