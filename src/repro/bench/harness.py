"""The section-7 measurement harness.

The paper measures, for each of Yacc / PG / IPG and each input:

1. construct a parse table for SDF;
2. parse an input sentence;
3. parse it a second time;
4. modify the grammar and reconstruct the parse table;
5. parse the same sentence;
6. parse it a second time.

:func:`run_protocol` executes exactly that sequence against a
:class:`SystemAdapter` and returns wall-clock times per phase.  The three
adapters mirror the paper's three systems:

* :class:`YaccSystem` — full LALR(1) table generation (conflicts resolved
  the Yacc way) + deterministic LR parsing; a modification means complete
  regeneration.  (Real Yacc additionally paid a C-compile-and-link step of
  ~8.3 s on the paper's SUN 3/60, which has no in-process equivalent;
  EXPERIMENTS.md accounts for it when comparing shapes.)
* :class:`PGSystem` — full LR(0) graph generation (section 4) + parallel
  parsing; modification = regenerate from scratch.
* :class:`IPGSystem` — lazy generation (section 5) + parallel parsing +
  incremental MODIFY (section 6); construction is just seeding the start
  state.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.incremental import IncrementalGenerator
from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..lr.generator import ConventionalGenerator
from ..lr.lalr import lalr_table
from ..lr.table import TableControl, resolve_conflicts
from ..runtime.lr_parse import SimpleLRParser
from ..runtime.parallel import PoolParser
from .workloads import Fig71Workload, TokenStream

PHASES = (
    "construct",
    "parse1",
    "parse2",
    "modify",
    "parse3",
    "parse4",
)


class SystemAdapter:
    """A parser-generation system under the §7 protocol."""

    name = "abstract"

    def construct(self, grammar: Grammar) -> None:
        """Phase 1: build whatever the system builds ahead of parsing."""
        raise NotImplementedError

    def parse(self, tokens: TokenStream) -> bool:
        """Parse one sentence, building a tree; returns acceptance."""
        raise NotImplementedError

    def modify(self, rule: Rule) -> None:
        """Phase 4: apply the grammar change (and rebuild if needed)."""
        raise NotImplementedError


class YaccSystem(SystemAdapter):
    """LALR(1) + deterministic LR: the conventional table-generator pole."""

    name = "yacc"

    def __init__(self) -> None:
        self.grammar: Optional[Grammar] = None
        self.parser: Optional[SimpleLRParser] = None
        self.conflicts = 0

    def construct(self, grammar: Grammar) -> None:
        self.grammar = grammar
        table, conflicts = resolve_conflicts(lalr_table(grammar))
        self.conflicts = len(conflicts)
        self.parser = SimpleLRParser(TableControl(table), grammar)

    def parse(self, tokens: TokenStream) -> bool:
        assert self.parser is not None, "construct first"
        return self.parser.parse(tokens).accepted

    def modify(self, rule: Rule) -> None:
        assert self.grammar is not None, "construct first"
        self.grammar.add_rule(rule)
        # Yacc has no incremental mode: the whole table is rebuilt.
        self.construct(self.grammar)


class PGSystem(SystemAdapter):
    """Conventional LR(0) generation (section 4) + parallel parsing."""

    name = "pg"

    def __init__(self) -> None:
        self.grammar: Optional[Grammar] = None
        self.parser: Optional[PoolParser] = None

    def construct(self, grammar: Grammar) -> None:
        self.grammar = grammar
        generator = ConventionalGenerator(grammar)
        control = generator.generate()
        self.parser = PoolParser(control, grammar)

    def parse(self, tokens: TokenStream) -> bool:
        assert self.parser is not None, "construct first"
        return self.parser.parse(tokens).accepted

    def modify(self, rule: Rule) -> None:
        assert self.grammar is not None, "construct first"
        self.grammar.add_rule(rule)
        # "The lazy parser generator can only react to modifications of the
        # grammar by throwing away the parser it has already generated and
        # by restarting from scratch" — a fortiori the conventional one.
        self.construct(self.grammar)


class IPGSystem(SystemAdapter):
    """The paper's system: lazy + incremental generation, parallel parsing."""

    name = "ipg"

    def __init__(self, gc: bool = True) -> None:
        self.gc = gc
        self.generator: Optional[IncrementalGenerator] = None
        self.parser: Optional[PoolParser] = None

    def construct(self, grammar: Grammar) -> None:
        self.generator = IncrementalGenerator(grammar, gc=self.gc)
        self.parser = PoolParser(self.generator.control, grammar)

    def parse(self, tokens: TokenStream) -> bool:
        assert self.parser is not None, "construct first"
        return self.parser.parse(tokens).accepted

    def modify(self, rule: Rule) -> None:
        assert self.generator is not None, "construct first"
        # ADD-RULE + MODIFY: the graph is repaired, never regenerated.
        self.generator.add_rule(rule)


class EngineSystem(SystemAdapter):
    """Any :mod:`repro.api` registry engine under the §7 protocol.

    One adapter covers every registered engine: ``construct`` builds a
    :class:`~repro.api.Language` around the grammar and instantiates the
    engine, ``modify`` is one incremental ADD-RULE (each engine reacts
    through its own ``invalidate`` — the dense table regenerates, the
    graph engines repair), ``parse`` drives the uniform protocol.  This is
    how new engines join the Fig. 7.1 comparison without touching the
    harness: register them and they appear as ``engine:<name>``.
    """

    def __init__(self, engine_name: str) -> None:
        from ..api import Language, engines

        if engine_name not in engines():
            raise ValueError(
                f"unknown engine {engine_name!r} — known: {', '.join(engines())}"
            )
        self.engine_name = engine_name
        self.name = f"engine:{engine_name}"
        self.language: Optional["Language"] = None
        self.engine = None

    def construct(self, grammar: Grammar) -> None:
        from ..api import Language

        self.language = Language(grammar)
        self.engine = self.language.engine(self.engine_name)
        # Up-front generation cost (the dense engine's whole table; a
        # no-op for the lazy family and Earley) lands in this phase, as
        # the §7 protocol prescribes.
        self.engine.prepare()

    def parse(self, tokens: TokenStream) -> bool:
        assert self.engine is not None, "construct first"
        # Recognizer-only engines raise CapabilityError from parse; the §7
        # protocol measures acceptance, so recognition is the honest call.
        if not self.engine.supports_trees:
            return self.engine.recognize(list(tokens)).accepted
        return self.engine.parse(list(tokens)).accepted

    def modify(self, rule: Rule) -> None:
        assert self.language is not None, "construct first"
        self.language.add_rule(rule)


def _engine_systems() -> Dict[str, Callable[[], SystemAdapter]]:
    from functools import partial

    from ..api import engines

    return {
        f"engine:{name}": partial(EngineSystem, name) for name in engines()
    }


SYSTEMS: Dict[str, Callable[[], SystemAdapter]] = {
    "yacc": YaccSystem,
    "pg": PGSystem,
    "ipg": IPGSystem,
    **_engine_systems(),
}


class ProtocolResult:
    """Per-phase wall-clock seconds for one (system, input) pair."""

    def __init__(self, system: str, input_name: str, times: Dict[str, float]) -> None:
        self.system = system
        self.input_name = input_name
        self.times = times

    def total(self) -> float:
        return sum(self.times.values())

    def __repr__(self) -> str:
        cells = ", ".join(f"{phase}={self.times[phase]:.4f}s" for phase in PHASES)
        return f"ProtocolResult({self.system}/{self.input_name}: {cells})"


def run_protocol(
    system: SystemAdapter,
    workload: Fig71Workload,
    input_name: str,
) -> ProtocolResult:
    """Execute the six-phase §7 protocol; returns per-phase times.

    Every run gets a fresh grammar (generators subscribe to their grammar,
    so sharing one across systems would leak MODIFY notifications).
    """
    tokens = workload.inputs[input_name]
    grammar = workload.fresh_grammar()
    times: Dict[str, float] = {}

    def timed(phase: str, thunk: Callable[[], Any]) -> None:
        start = time.perf_counter()
        result = thunk()
        times[phase] = time.perf_counter() - start
        if phase.startswith("parse") and result is not True:
            raise AssertionError(
                f"{system.name} rejected {input_name} during {phase}"
            )

    timed("construct", lambda: system.construct(grammar))
    timed("parse1", lambda: system.parse(tokens))
    timed("parse2", lambda: system.parse(tokens))
    rule = workload.modification(grammar)
    timed("modify", lambda: system.modify(rule))
    timed("parse3", lambda: system.parse(tokens))
    timed("parse4", lambda: system.parse(tokens))
    return ProtocolResult(system.name, input_name, times)


def run_figure_7_1(
    workload: Optional[Fig71Workload] = None,
    systems: Sequence[str] = ("yacc", "pg", "ipg"),
    repeats: int = 3,
) -> List[ProtocolResult]:
    """The whole Fig. 7.1 grid; keeps the fastest *whole run* per cell.

    The run with the minimum total is kept intact — phases within a result
    stay *paired*, so intra-run comparisons like "parse 1 vs parse 2"
    measure the lazy-generation gap rather than scheduler noise from two
    different runs.  (pytest-benchmark does the fine-grained statistics;
    this function exists for the printed report.)
    """
    from .workloads import sdf_workload

    if workload is None:
        workload = sdf_workload()
    results: List[ProtocolResult] = []
    for system_name in systems:
        for input_name in workload.input_names():
            best: Optional[ProtocolResult] = None
            for _ in range(repeats):
                outcome = run_protocol(SYSTEMS[system_name](), workload, input_name)
                if best is None or outcome.total() < best.total():
                    best = outcome
            assert best is not None
            results.append(best)
    return results
