"""Exporters: registry snapshots as Prometheus text format or JSON.

The snapshot dict produced by :meth:`MetricsRegistry.snapshot` (and by
:meth:`MetricsRegistry.merge`) is already the JSON surface; this module
adds the Prometheus text exposition rendering used by the
``metrics-export`` service command and the ``repro obs`` CLI:

    # TYPE repro_result_cache_hits counter
    repro_result_cache_hits 12
    # TYPE repro_shard_request_seconds histogram
    repro_shard_request_seconds_bucket{shard="0",le="0.005"} 3
    ...

Dotted metric names map to underscores (``repro.result_cache.hits`` →
``repro_result_cache_hits``); label values are escaped per the
exposition-format rules.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict

__all__ = ["prometheus_name", "render_prometheus", "render_json"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(dotted: str) -> str:
    """A valid Prometheus metric name for a dotted registry name."""
    name = _NAME_OK.sub("_", dotted.replace(".", "_"))
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _label_block(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return "0"


def render_prometheus(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """One snapshot in Prometheus text exposition format."""
    typed_seen: Dict[str, str] = {}
    lines = []
    for key in sorted(snapshot):
        entry = snapshot[key]
        name = prometheus_name(entry.get("name", key))
        kind = entry.get("type", "gauge")
        labels = entry.get("labels") or {}
        if typed_seen.get(name) != kind:
            lines.append(f"# TYPE {name} {kind}")
            typed_seen[name] = kind
        if kind == "histogram":
            cumulative = 0
            for le, count in entry.get("buckets", []):
                cumulative += count
                block = _label_block(labels, f'le="{_format_value(float(le))}"')
                lines.append(f"{name}_bucket{block} {cumulative}")
            cumulative += entry.get("inf", 0)
            block = _label_block(labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{block} {cumulative}")
            lines.append(f"{name}_sum{_label_block(labels)} {entry.get('sum', 0.0)}")
            lines.append(f"{name}_count{_label_block(labels)} {entry.get('count', 0)}")
        else:
            lines.append(f"{name}{_label_block(labels)} {_format_value(entry.get('value', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: Dict[str, Dict[str, Any]], indent: int = 2) -> str:
    """The snapshot as stable, human-diffable JSON text."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)
