"""The slow-request log: threshold-triggered span-tree dumps.

When a root span finishes slower than the configured threshold, its tree
is rendered (one line per span, indented, milliseconds and attributes)
and written to the sink — stderr by default.  Configure with
``REPRO_OBS_SLOW_MS`` in the environment, ``--slow-ms`` on the ``repro
serve`` / ``repro obs`` CLIs, or :func:`set_slow_threshold` from code.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any, Callable, Dict, Optional

from . import spans

__all__ = [
    "set_slow_threshold",
    "slow_threshold",
    "set_slow_sink",
    "render_span_tree",
    "maybe_log",
]


def _env_threshold() -> Optional[float]:
    raw = os.environ.get("REPRO_OBS_SLOW_MS")
    if raw is None:
        return None
    try:
        return max(0.0, float(raw)) / 1000.0
    except ValueError:
        return None


_LOCK = threading.Lock()
_THRESHOLD: Optional[float] = _env_threshold()  # seconds, None = disabled
_SINK: Optional[Callable[[str], None]] = None

if _THRESHOLD is not None:
    # The log dumps span trees, so an env-configured threshold must turn
    # span recording on (set_slow_threshold does the same from code).
    spans._set_slow_active(True)


def set_slow_threshold(milliseconds: Optional[float]) -> None:
    """Dump any root span slower than this; ``None`` disables the log."""
    global _THRESHOLD
    with _LOCK:
        _THRESHOLD = None if milliseconds is None else max(0.0, milliseconds) / 1000.0
        spans._set_slow_active(_THRESHOLD is not None)


def slow_threshold() -> Optional[float]:
    """The active threshold in seconds, or ``None``."""
    return _THRESHOLD


def set_slow_sink(sink: Optional[Callable[[str], None]]) -> None:
    """Route dumps somewhere other than stderr (``None`` restores it)."""
    global _SINK
    with _LOCK:
        _SINK = sink


def render_span_tree(tree: Dict[str, Any], indent: int = 0) -> str:
    """A span tree dict as indented text, one span per line."""
    pad = "  " * indent
    duration_ms = tree.get("duration", 0.0) * 1000.0
    line = f"{pad}{tree.get('name', '?')} {duration_ms:.3f}ms"
    attributes = tree.get("attributes")
    if attributes:
        rendered = " ".join(f"{k}={attributes[k]!r}" for k in sorted(attributes))
        line += f" [{rendered}]"
    lines = [line]
    for child in tree.get("children", ()):
        lines.append(render_span_tree(child, indent + 1))
    return "\n".join(lines)


def maybe_log(root: Any) -> None:
    """Called by the span layer for every finished root span."""
    threshold = _THRESHOLD
    if threshold is None or root.duration < threshold:
        return
    tree = root.to_dict()
    text = (
        f"[repro.obs] slow request: {root.name!r} took "
        f"{root.duration * 1000:.1f}ms (threshold {threshold * 1000:.1f}ms)\n"
        f"{render_span_tree(tree)}\n"
    )
    sink = _SINK
    if sink is not None:
        sink(text)
    else:
        sys.stderr.write(text)
