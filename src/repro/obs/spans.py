"""Hierarchical tracing spans with a bounded per-process ring buffer.

A span is a named, timed region of work with attributes and children:

    with obs.span("parse", engine="compiled") as sp:
        ...
        sp.set(tokens=42)

Spans nest through a thread-local stack, so each service worker thread
builds its own tree without coordination; only finished *root* spans are
published, into a ring buffer guarded by one lock.  When tracing is off
(the default) :func:`span` returns a shared no-op handle without
allocating anything, which is what keeps the disabled path under the
hotpath-bench overhead gate.

Two things turn recording on:

* :func:`set_tracing` (or ``REPRO_OBS_TRACE=1`` in the environment)
  enables it process-wide — any thread's outermost :func:`span` becomes
  a root.
* :func:`trace` forces it for one region on the current thread only,
  which is how the service honours a per-request ``"trace": true`` flag
  without paying for every other request.

A configured slow-request threshold (see :mod:`repro.obs.slowlog`) also
activates recording — the log dumps span trees, so without spans it
could never fire.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "Span",
    "span",
    "trace",
    "annotate",
    "current_span",
    "set_tracing",
    "tracing_enabled",
    "recent_spans",
    "clear_spans",
    "set_ring_capacity",
]

_DEFAULT_RING = 256


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


_TRACING = _env_flag("REPRO_OBS_TRACE")
_RING_LOCK = threading.Lock()
_RING: Deque[Dict[str, Any]] = deque(maxlen=_env_int("REPRO_OBS_RING", _DEFAULT_RING))

_state = threading.local()


class Span:
    """One named, timed region: attributes, children, monotonic duration."""

    __slots__ = ("name", "attributes", "children", "started", "duration")

    recording = True

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.started = time.perf_counter()
        self.duration = 0.0

    def set(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, Any]:
        """The span tree as JSON-able data (durations in seconds)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration": round(self.duration, 6),
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            stack[-1].children.append(self)
        stack.append(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.duration = time.perf_counter() - self.started
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if not stack:
            _publish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1000:.3f}ms, children={len(self.children)})"


class _NullSpan:
    """Shared do-nothing handle returned while tracing is disabled."""

    __slots__ = ()

    recording = False
    name = ""
    duration = 0.0
    attributes: Dict[str, Any] = {}
    children: List[Span] = []

    def set(self, **_attributes: Any) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "", "duration": 0.0}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


def _stack() -> List[Span]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    return stack


#: set by :func:`repro.obs.slowlog.set_slow_threshold` — the slow log
#: needs span trees to dump, so a threshold implies recording
_SLOW_ACTIVE = False


def _set_slow_active(enabled: bool) -> None:
    global _SLOW_ACTIVE
    _SLOW_ACTIVE = bool(enabled)


def _active() -> bool:
    if _TRACING or _SLOW_ACTIVE:
        return True
    if getattr(_state, "forced", 0):
        return True
    # inside an already-open span tree (tracing was flipped off mid-tree,
    # or a root was opened by trace()): keep attaching children
    return bool(getattr(_state, "stack", None))


def _publish(root: Span) -> None:
    payload = root.to_dict()
    with _RING_LOCK:
        _RING.append(payload)
    from . import slowlog

    slowlog.maybe_log(root)


def span(name: str, **attributes: Any):
    """A span context manager, or a shared no-op when tracing is off."""
    if not _active():
        return NULL_SPAN
    return Span(name, attributes)


class _Forced:
    """Context manager behind :func:`trace`: force-enable, open a root."""

    __slots__ = ("_span",)

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self._span = Span(name, attributes)

    def __enter__(self) -> Span:
        _state.forced = getattr(_state, "forced", 0) + 1
        return self._span.__enter__()

    def __exit__(self, *exc: Any) -> None:
        try:
            self._span.__exit__(*exc)
        finally:
            _state.forced = max(0, getattr(_state, "forced", 1) - 1)


def trace(name: str, **attributes: Any) -> _Forced:
    """Open a span with recording forced on for the current thread."""
    return _Forced(name, attributes)


def current_span():
    """The innermost open span on this thread (NULL_SPAN when none)."""
    stack = getattr(_state, "stack", None)
    if stack:
        return stack[-1]
    return NULL_SPAN


def annotate(**attributes: Any) -> None:
    """Attach attributes to the innermost open span; no-op otherwise."""
    stack = getattr(_state, "stack", None)
    if stack:
        stack[-1].attributes.update(attributes)


def set_tracing(enabled: bool) -> None:
    """Process-wide switch: record every thread's outermost spans."""
    global _TRACING
    _TRACING = bool(enabled)


def tracing_enabled() -> bool:
    return _TRACING


def recent_spans(limit: Optional[int] = None) -> List[Dict[str, Any]]:
    """Finished root-span trees, oldest first (up to the ring capacity)."""
    with _RING_LOCK:
        items = list(_RING)
    if limit is not None and limit >= 0:
        items = items[-limit:]
    return items


def clear_spans() -> None:
    with _RING_LOCK:
        _RING.clear()


def set_ring_capacity(capacity: int) -> None:
    """Resize the root-span ring buffer (keeps the newest entries)."""
    global _RING
    capacity = max(1, int(capacity))
    with _RING_LOCK:
        _RING = deque(_RING, maxlen=capacity)
