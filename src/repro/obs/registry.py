"""The metrics registry: counters, gauges, histograms under dotted names.

One process-global :class:`MetricsRegistry` (see :mod:`repro.obs`)
absorbs the stat islands that grew organically — ``CompiledStats``,
``CacheStats``, ``GraphStats``, ``LatencyStats``, incremental ``reuse``
outcomes — under stable dotted names like
``repro.compiled.action_cache.hits``.

Two feeding styles:

* **Instruments** (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
  are created once with :meth:`MetricsRegistry.counter` & co. and
  mutated on the hot path; mutation takes one small lock.
* **Collectors** are callables polled only at snapshot time; they read
  existing stat objects (via weak references, so registering an object
  never extends its lifetime) and yield samples.  This is how library
  objects created long after import — ``Language`` instances, a
  ``Workspace`` — surface their private stats without per-event cost.

Snapshots are plain JSON-able dicts, and :meth:`MetricsRegistry.merge`
sums any number of them — the scheduler uses that to combine per-child
registries from process-mode shards into one global view.
"""

from __future__ import annotations

import bisect
import threading
import weakref
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "sample_key",
]

#: Latency-shaped bucket upper bounds, in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

LabelsTuple = Tuple[Tuple[str, str], ...]


def sample_key(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """The canonical string key for a (name, labels) series."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _Instrument:
    __slots__ = ("name", "labels", "help", "_lock")

    def __init__(self, name: str, labels: LabelsTuple, help: str, lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = lock

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    @property
    def key(self) -> str:
        return sample_key(self.name, dict(self.labels))


class Counter(_Instrument):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelsTuple, help: str, lock: threading.Lock):
        super().__init__(name, labels, help, lock)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def _sample(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge(_Instrument):
    """A value that can go up and down (sizes, fractions, depths)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelsTuple, help: str, lock: threading.Lock):
        super().__init__(name, labels, help, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _sample(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        labels: LabelsTuple,
        help: str,
        lock: threading.Lock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels, help, lock)
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +inf bucket last
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    def _sample(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        # non-cumulative per-bucket counts; export.py re-accumulates
        return {
            "type": "histogram",
            "buckets": [list(pair) for pair in zip(self.buckets, counts)],
            "inf": counts[-1],
            "sum": round(total, 9),
            "count": n,
        }


Sample = Tuple[str, Optional[Dict[str, str]], str, float]
Collector = Callable[[], Iterable[Sample]]


class MetricsRegistry:
    """Thread-safe instrument store plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Instrument] = {}
        self._collectors: List[Collector] = []
        self._object_collectors: List[Tuple[weakref.ref, Callable[[Any], Iterable[Sample]]]] = []

    # -- instruments -------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels: Dict[str, str], **kwargs):
        labels_tuple: LabelsTuple = tuple(sorted((k, str(v)) for k, v in labels.items()))
        key = sample_key(name, dict(labels_tuple))
        with self._lock:
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = cls(name, labels_tuple, help, threading.Lock(), **kwargs)
                self._metrics[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {key!r} already registered as {type(instrument).__name__}"
                )
        return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- collectors --------------------------------------------------------

    def register_collector(self, collector: Collector) -> None:
        """Poll ``collector()`` for samples at every snapshot."""
        with self._lock:
            self._collectors.append(collector)

    def register_object_collector(
        self, owner: Any, collector: Callable[[Any], Iterable[Sample]]
    ) -> None:
        """Like :meth:`register_collector`, but weakly tied to ``owner``.

        The collector is called as ``collector(owner)`` while ``owner``
        is alive and silently dropped once it is collected, so stat
        holders (a ``Workspace``, a ``Scheduler``) can self-register in
        ``__init__`` without leaking.
        """
        with self._lock:
            self._object_collectors.append((weakref.ref(owner), collector))

    def _collected_samples(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            collectors = list(self._collectors)
            object_collectors = list(self._object_collectors)
        samples: Dict[str, Dict[str, Any]] = {}

        def absorb(produced: Iterable[Sample]) -> None:
            for name, labels, kind, value in produced:
                key = sample_key(name, labels)
                entry = samples.get(key)
                if entry is None:
                    samples[key] = {
                        "type": kind,
                        "value": value,
                        "name": name,
                        "labels": dict(labels) if labels else {},
                    }
                else:
                    # several live owners feeding one series: sum them
                    entry["value"] += value

        for collector in collectors:
            absorb(collector())
        dead = False
        for ref, collector in object_collectors:
            owner = ref()
            if owner is None:
                dead = True
                continue
            absorb(collector(owner))
        if dead:
            with self._lock:
                self._object_collectors = [
                    (ref, fn) for ref, fn in self._object_collectors if ref() is not None
                ]
        return samples

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All series as one JSON-able dict keyed by ``name{labels}``."""
        with self._lock:
            instruments = list(self._metrics.values())
        result: Dict[str, Dict[str, Any]] = {}
        for instrument in instruments:
            entry = instrument._sample()
            entry["name"] = instrument.name
            entry["labels"] = instrument.labels_dict
            result[instrument.key] = entry
        for key, entry in self._collected_samples().items():
            existing = result.get(key)
            if existing is None:
                result[key] = entry
            else:
                existing["value"] = existing.get("value", 0) + entry["value"]
        return result

    @staticmethod
    def merge(snapshots: Iterable[Dict[str, Dict[str, Any]]]) -> Dict[str, Dict[str, Any]]:
        """Sum several snapshots (counters/gauges add; histograms add)."""
        merged: Dict[str, Dict[str, Any]] = {}
        for snap in snapshots:
            if not isinstance(snap, dict):
                continue
            for key, entry in snap.items():
                current = merged.get(key)
                if current is None:
                    merged[key] = {
                        k: (list(list(b) for b in v) if k == "buckets" else v)
                        for k, v in entry.items()
                    }
                    continue
                kind = entry.get("type")
                if kind == "histogram":
                    ours = {le: n for le, n in current.get("buckets", [])}
                    for le, n in entry.get("buckets", []):
                        ours[le] = ours.get(le, 0) + n
                    current["buckets"] = [list(pair) for pair in sorted(ours.items())]
                    current["inf"] = current.get("inf", 0) + entry.get("inf", 0)
                    current["sum"] = round(current.get("sum", 0.0) + entry.get("sum", 0.0), 9)
                    current["count"] = current.get("count", 0) + entry.get("count", 0)
                else:
                    current["value"] = current.get("value", 0) + entry.get("value", 0)
        return merged

    def reset(self) -> None:
        """Drop every instrument and collector (tests only)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()
            self._object_collectors.clear()
