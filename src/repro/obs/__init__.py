"""``repro.obs`` — the unified telemetry layer (zero dependencies).

One subsystem replaces the scattered probes the repo grew organically:

* **Spans** (:mod:`~repro.obs.spans`): hierarchical, monotonic-timed
  regions — tokenize → table generation → engine run → service dispatch
  — recorded into a bounded per-process ring buffer.  Off by default;
  a disabled :func:`span` call is one function call returning a shared
  no-op handle.
* **Registry** (:mod:`~repro.obs.registry`): counters, gauges, and
  histograms under stable dotted names, plus weakly-referenced
  snapshot-time collectors that absorb the existing stat islands
  (``CompiledStats``, ``CacheStats``, ``GraphStats``, ``LatencyStats``)
  without touching their hot paths.
* **Exporters** (:mod:`~repro.obs.export`): Prometheus text format and
  JSON, behind the ``metrics-export`` service command and the
  ``repro obs`` CLI.
* **Slow-request log** (:mod:`~repro.obs.slowlog`): threshold-triggered
  span-tree dumps (``REPRO_OBS_SLOW_MS`` / ``--slow-ms``).

The metric name catalog lives in README.md ("Observability").
"""

from .registry import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .export import prometheus_name, render_json, render_prometheus
from .slowlog import (
    render_span_tree,
    set_slow_sink,
    set_slow_threshold,
    slow_threshold,
)
from .spans import (
    NULL_SPAN,
    Span,
    annotate,
    clear_spans,
    current_span,
    recent_spans,
    set_ring_capacity,
    set_tracing,
    span,
    trace,
    tracing_enabled,
)

__all__ = [
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Span",
    "NULL_SPAN",
    "span",
    "trace",
    "annotate",
    "current_span",
    "set_tracing",
    "tracing_enabled",
    "recent_spans",
    "clear_spans",
    "set_ring_capacity",
    "render_prometheus",
    "render_json",
    "prometheus_name",
    "render_span_tree",
    "set_slow_threshold",
    "slow_threshold",
    "set_slow_sink",
]

#: The process-global registry every layer feeds.
REGISTRY = MetricsRegistry()

counter = REGISTRY.counter
gauge = REGISTRY.gauge
histogram = REGISTRY.histogram
register_collector = REGISTRY.register_collector
register_object_collector = REGISTRY.register_object_collector
