"""``python -m repro`` — the interactive grammar-definition REPL."""

from .cli import main

raise SystemExit(main())
