"""LL(1) predictive parsing — the top-down table-driven row of Fig. 2.1.

Section 2.1: *"an LL generator constructs a parse table that is interpreted
by a fixed parser.  ...  The class of accepted languages depends on the
look-ahead k, but is always limited to non-left-recursive, non-ambiguous
grammars."*

The generator computes the classic FIRST/FOLLOW-driven prediction table
and *reports* every table conflict; the capability bench shows the SDF
grammar (left-recursive through its iterator encodings) is rejected while
IPG handles it unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..grammar.analysis import GrammarAnalysis
from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import END, NonTerminal, Symbol, Terminal
from ..runtime.errors import ParseError
from ..runtime.forest import Forest, TreeNode


class LL1Conflict:
    """Two rules claim the same (non-terminal, lookahead) prediction cell."""

    __slots__ = ("nonterminal", "lookahead", "rules")

    def __init__(self, nonterminal: NonTerminal, lookahead: Terminal, rules: Tuple[Rule, ...]) -> None:
        self.nonterminal = nonterminal
        self.lookahead = lookahead
        self.rules = rules

    def __repr__(self) -> str:
        return f"LL1Conflict({self.nonterminal}, on {self.lookahead}, {len(self.rules)} rules)"


class NotLL1Error(ValueError):
    """The grammar is not LL(1); carries the conflict list."""

    def __init__(self, conflicts: Sequence[LL1Conflict]) -> None:
        super().__init__(f"grammar is not LL(1): {len(conflicts)} conflicts")
        self.conflicts = tuple(conflicts)


class LL1Table:
    """The prediction table; ``table[A][t]`` is the rule to expand."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        analysis = GrammarAnalysis(grammar)
        self.table: Dict[NonTerminal, Dict[Terminal, Rule]] = {}
        self.conflicts: List[LL1Conflict] = []

        cells: Dict[NonTerminal, Dict[Terminal, List[Rule]]] = {}
        for rule in sorted(grammar.rules):
            row = cells.setdefault(rule.lhs, {})
            predicted = set(analysis.first_of(rule.rhs))
            if analysis.sequence_nullable(rule.rhs):
                predicted |= analysis.follow(rule.lhs)
            for lookahead in predicted:
                row.setdefault(lookahead, []).append(rule)

        for nonterminal, row in cells.items():
            table_row: Dict[Terminal, Rule] = {}
            for lookahead, rules in row.items():
                if len(rules) > 1:
                    self.conflicts.append(
                        LL1Conflict(nonterminal, lookahead, tuple(rules))
                    )
                table_row[lookahead] = rules[0]
            self.table[nonterminal] = table_row

    @property
    def is_ll1(self) -> bool:
        return not self.conflicts


class LL1Parser:
    """Stack-based predictive parser over an :class:`LL1Table`."""

    def __init__(self, grammar: Grammar, strict: bool = True) -> None:
        self.grammar = grammar
        self.table = LL1Table(grammar)
        if strict and not self.table.is_ll1:
            raise NotLL1Error(self.table.conflicts)

    def recognize(self, tokens: Iterable[Terminal]) -> bool:
        try:
            self.parse(tokens)
            return True
        except ParseError:
            return False

    def parse(self, tokens: Iterable[Terminal]) -> TreeNode:
        """Parse and build the (unique) tree; raises ParseError on failure."""
        sentence: List[Terminal] = list(tokens)
        sentence.append(END)
        forest = Forest()
        position = 0

        def next_token() -> Terminal:
            return sentence[position]

        def parse_symbol(symbol: Symbol) -> TreeNode:
            nonlocal position
            if isinstance(symbol, Terminal):
                if next_token() != symbol:
                    raise ParseError(
                        f"expected {symbol!s}, found {next_token()!s} "
                        f"at position {position}",
                        position=position,
                        symbol=next_token(),
                    )
                leaf = forest.leaf(symbol, position)
                position += 1
                return leaf
            assert isinstance(symbol, NonTerminal)
            rule = self.table.table.get(symbol, {}).get(next_token())
            if rule is None:
                raise ParseError(
                    f"no prediction for {symbol!s} on {next_token()!s} "
                    f"at position {position}",
                    position=position,
                    symbol=next_token(),
                )
            children = [parse_symbol(part) for part in rule.rhs]
            return forest.node(rule, children)

        tree = parse_symbol(self.grammar.start)
        if next_token() != END:
            raise ParseError(
                f"trailing input at position {position}",
                position=position,
                symbol=next_token(),
            )
        return tree
