"""OBJ-style backtracking recursive descent [FGJM85].

Section 2.1: *"OBJ uses a recursive descent parsing technique with
backtracking.  OBJ itself does not allow ambiguous grammars, but the
backtrack parser does detect all ambiguous parses.  This makes the parsing
system suitable for finitely ambiguous grammars, but ... 'parsing can be
expensive for complex expressions', which makes the algorithm less
suitable for large input sentences."*

Faithfully to that description, this parser:

* enumerates **all** parses (so it detects every ambiguity),
* explodes exponentially on pathological inputs — a work budget raises
  :class:`BacktrackBudgetExceeded` rather than hanging, and the Fig. 2.1
  bench uses exactly that to demonstrate the "not fast" rating,
* cannot handle left recursion: a (non-terminal, position) pair already on
  the descent path is cut off, so left-recursive derivations are simply
  never found.  :meth:`BacktrackingParser.left_recursion_risk` reports
  whether the current grammar has such rules.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..grammar.analysis import GrammarAnalysis
from ..grammar.grammar import Grammar
from ..grammar.symbols import NonTerminal, Symbol, Terminal
from ..runtime.forest import Forest, TreeNode


class BacktrackBudgetExceeded(Exception):
    """The exponential search exceeded its step budget."""


class BacktrackingParser:
    """All-parses recursive descent with backtracking."""

    def __init__(self, grammar: Grammar, max_steps: int = 2_000_000) -> None:
        self.grammar = grammar
        self.max_steps = max_steps
        self._steps = 0

    def parses(self, tokens: Sequence[Terminal]) -> List[TreeNode]:
        """Every derivation of ``tokens`` from the start symbol."""
        sentence = list(tokens)
        forest = Forest()
        self._steps = 0
        results: Dict[int, TreeNode] = {}
        for tree, end in self._parse_symbol(
            self.grammar.start, 0, sentence, forest, frozenset()
        ):
            if end == len(sentence):
                results.setdefault(id(tree), tree)
        return list(results.values())

    def recognize(self, tokens: Sequence[Terminal]) -> bool:
        sentence = list(tokens)
        forest = Forest()
        self._steps = 0
        for _tree, end in self._parse_symbol(
            self.grammar.start, 0, sentence, forest, frozenset()
        ):
            if end == len(sentence):
                return True
        return False

    def count_parses(self, tokens: Sequence[Terminal]) -> int:
        return len(self.parses(tokens))

    # -- the search ------------------------------------------------------

    def _parse_symbol(
        self,
        symbol: Symbol,
        position: int,
        sentence: List[Terminal],
        forest: Forest,
        in_progress: frozenset,
    ) -> Iterator[Tuple[TreeNode, int]]:
        self._steps += 1
        if self._steps > self.max_steps:
            raise BacktrackBudgetExceeded(
                f"backtracking exceeded {self.max_steps} steps"
            )
        if isinstance(symbol, Terminal):
            if position < len(sentence) and sentence[position] == symbol:
                yield forest.leaf(symbol, position), position + 1
            return

        assert isinstance(symbol, NonTerminal)
        key = (symbol, position)
        if key in in_progress:
            # Left recursion: the OBJ-style parser cannot make progress
            # here; cutting the branch loses exactly the left-recursive
            # derivations (documented limitation).
            return
        deeper = in_progress | {key}
        for rule in self.grammar.rules_for(symbol):
            for children, end in self._parse_sequence(
                rule.rhs, 0, position, sentence, forest, deeper
            ):
                yield forest.node(rule, children), end

    def _parse_sequence(
        self,
        body: Tuple[Symbol, ...],
        index: int,
        position: int,
        sentence: List[Terminal],
        forest: Forest,
        in_progress: frozenset,
    ) -> Iterator[Tuple[List[TreeNode], int]]:
        if index == len(body):
            yield [], position
            return
        # The in-progress entries are (non-terminal, position) pairs, so
        # they only block a *re-entry at the same position* — i.e. (hidden)
        # left recursion.  As soon as input is consumed the position part
        # differs and the guard is inert, so it can be passed down blindly.
        for first_tree, after_first in self._parse_symbol(
            body[index], position, sentence, forest, in_progress
        ):
            for rest_trees, end in self._parse_sequence(
                body, index + 1, after_first, sentence, forest, in_progress
            ):
                yield [first_tree] + rest_trees, end

    # -- diagnostics -------------------------------------------------------

    def left_recursion_risk(self) -> bool:
        """True if the grammar contains (possibly indirect) left recursion."""
        return bool(GrammarAnalysis(self.grammar).left_recursive())
