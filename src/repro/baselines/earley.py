"""Earley's general context-free parsing algorithm [Ear70].

Section 2.1 places Earley at the opposite corner of the design space from
LR: *"Earley's algorithm does not have a separate generation phase, so it
adapts easily to modifications in the grammar.  It is this same lack of a
generation phase that makes the algorithm too inefficient for interactive
purposes."*  Section 7 predicts (without measuring) *"better generation
performance, but a much inferior parsing performance"* — our bench
``bench_earley_vs_ipg`` finally runs that comparison.

The implementation is the textbook chart algorithm over *dotted rules with
origins*, with the Aycock–Horspool nullable-prediction fix so epsilon rules
(ubiquitous in the SDF grammar) are completed correctly in a single pass.
Because there is no generation phase, the parser reads the live
:class:`~repro.grammar.grammar.Grammar` on every parse — modifying the
grammar needs no bookkeeping whatsoever, which is exactly the trade-off the
paper describes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..grammar.analysis import GrammarAnalysis
from ..grammar.grammar import Grammar
from ..grammar.symbols import END, NonTerminal, Terminal
from ..lr.items import Item


class EarleyItem:
    """A dotted rule plus the input position where its recognition began."""

    __slots__ = ("item", "origin", "_hash")

    def __init__(self, item: Item, origin: int) -> None:
        object.__setattr__(self, "item", item)
        object.__setattr__(self, "origin", origin)
        object.__setattr__(self, "_hash", hash((item, origin)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("EarleyItem is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EarleyItem):
            return NotImplemented
        return self.origin == other.origin and self.item == other.item

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"EarleyItem({self.item!s}, origin={self.origin})"


class EarleyParser:
    """Grammar-driven recognition; no tables, no generation phase."""

    def __init__(self, grammar: Grammar) -> None:
        self.grammar = grammar
        self._analysis = GrammarAnalysis(grammar)
        self.last_chart_size = 0
        #: ``(token_index, expected_terminal_names)`` of the last rejected
        #: :meth:`recognize` call; ``None`` after an accept.  The chart is
        #: Earley's equivalent of the LR death-site protocol: the highest
        #: non-empty item set is where recognition stalled, and the
        #: terminals after a dot there are the viable continuations.
        self.last_failure: Optional[Tuple[int, Tuple[str, ...]]] = None

    # -- recognition -------------------------------------------------------

    def recognize(self, tokens: Iterable[Terminal]) -> bool:
        sentence: List[Terminal] = list(tokens)
        chart = self.chart(sentence)
        final = chart[-1]
        accepted = any(
            entry.item.at_end
            and entry.origin == 0
            and entry.item.rule.lhs == self.grammar.start
            for entry in final
        )
        self.last_failure = (
            None if accepted else self._failure_from_chart(chart, len(sentence))
        )
        return accepted

    def _failure_from_chart(
        self, chart: List[Set[EarleyItem]], length: int
    ) -> Tuple[int, Tuple[str, ...]]:
        """Where recognition stalled and which terminals could continue."""
        position = max(
            (index for index, items in enumerate(chart) if items), default=0
        )
        expected: Set[str] = set()
        for entry in chart[position]:
            symbol = entry.item.next_symbol
            if isinstance(symbol, Terminal):
                expected.add(symbol.name)
            elif (
                symbol is None
                and entry.origin == 0
                and entry.item.rule.lhs == self.grammar.start
            ):
                # A completed START item: only the end of input was
                # acceptable here (the LR engines report this as ``$``).
                expected.add(END.name)
        return position, tuple(sorted(expected))

    def chart(self, tokens: Iterable[Terminal]) -> List[Set[EarleyItem]]:
        """The full chart: one item set per input position (0..n)."""
        sentence: List[Terminal] = list(tokens)
        n = len(sentence)
        chart: List[Set[EarleyItem]] = [set() for _ in range(n + 1)]
        order: List[List[EarleyItem]] = [[] for _ in range(n + 1)]

        def add(position: int, entry: EarleyItem) -> None:
            if entry not in chart[position]:
                chart[position].add(entry)
                order[position].append(entry)

        for rule in self.grammar.start_rules():
            add(0, EarleyItem(Item(rule, 0), 0))

        for position in range(n + 1):
            cursor = 0
            pending = order[position]
            while cursor < len(pending):
                entry = pending[cursor]
                cursor += 1
                symbol = entry.item.next_symbol
                if symbol is None:
                    self._complete(entry, position, add, order)
                elif isinstance(symbol, NonTerminal):
                    self._predict(entry, symbol, position, add)
                elif position < n and sentence[position] == symbol:
                    add(position + 1, EarleyItem(entry.item.advanced(), entry.origin))

        self.last_chart_size = sum(len(s) for s in chart)
        return chart

    # -- the three Earley operations -------------------------------------

    def _predict(self, entry, symbol, position, add) -> None:
        for rule in self.grammar.rules_for(symbol):
            add(position, EarleyItem(Item(rule, 0), position))
        # Aycock–Horspool: a nullable non-terminal may be skipped outright.
        if self._analysis.is_nullable(symbol):
            add(position, EarleyItem(entry.item.advanced(), entry.origin))

    def _complete(self, entry, position, add, order) -> None:
        lhs = entry.item.rule.lhs
        # Iterate a snapshot: completing may extend the very list we scan.
        for waiting in list(order[entry.origin]):
            if waiting.item.next_symbol == lhs:
                add(position, EarleyItem(waiting.item.advanced(), waiting.origin))

    # -- diagnostics -------------------------------------------------------

    def accepts_empty(self) -> bool:
        return self.recognize([])
