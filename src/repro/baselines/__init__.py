"""The comparison algorithms of section 2.1 / Fig. 2.1.

Every row of the paper's comparison table that is not LR-based lives here:
Earley, the Cigale trie parser, OBJ-style backtracking recursive descent,
and LL(1) predictive parsing.  (The LR rows — LR/LALR tables, Tomita, and
IPG itself — live in :mod:`repro.lr`, :mod:`repro.runtime` and
:mod:`repro.core`.)
"""

from .cigale import CigaleParser, TrieNode
from .earley import EarleyItem, EarleyParser
from .ll1 import LL1Conflict, LL1Parser, LL1Table, NotLL1Error
from .rd_backtrack import BacktrackBudgetExceeded, BacktrackingParser

__all__ = [
    "BacktrackBudgetExceeded",
    "BacktrackingParser",
    "CigaleParser",
    "EarleyItem",
    "EarleyParser",
    "LL1Conflict",
    "LL1Parser",
    "LL1Table",
    "NotLL1Error",
    "TrieNode",
]
