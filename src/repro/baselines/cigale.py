"""A Cigale-style trie parser [Voi86].

Section 2.1: *"Cigale uses a parsing algorithm that is specially tailored
to expression parsing.  It builds a trie for the grammar in which
production rules with the same prefix share a path.  During parsing this
trie is recursively traversed.  A trie can easily be extended with new
syntax rules and tries for different grammars can be combined just like
modules.  The class of grammars is only somewhat larger than LR(0),
because the parser does not use look-ahead in a general manner and cannot
backtrack."*

This reconstruction keeps all four advertised properties:

* **trie sharing** — rules of one non-terminal share their common prefix;
* **incremental extension** — :meth:`CigaleParser.add_rule` inserts a path,
  nothing is recomputed (the "flexible/modular" cells of Fig. 2.1);
* **module combination** — :meth:`merge` unions another parser's tries;
* **no backtracking, no general lookahead** — traversal is greedy: at a
  trie node the matching terminal edge wins, otherwise non-terminal edges
  are tried by recursion, and a committed path is never undone.  Grammars
  needing real lookahead or backtracking therefore fail — deliberately.

Left-recursive operator rules (``E ::= E + E``) are handled the way
operator-precedence tries do it: the rule's tail (everything after the
leading self-reference) goes into a separate *continuation* trie, and
after an operand has been recognized the parser repeatedly tries to extend
it along that trie.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..grammar.grammar import Grammar
from ..grammar.rules import Rule
from ..grammar.symbols import NonTerminal, Symbol, Terminal
from ..runtime.forest import Forest, TreeNode

#: Mutual-recursion cut-off: greedy traversal that descends this many
#: non-terminals without consuming input is going nowhere (no backtracking
#: means there is nothing cleverer to do than give up).
_MAX_DEPTH = 120


class TrieNode:
    """One trie vertex; edges are labelled with grammar symbols."""

    __slots__ = ("edges", "accepts")

    def __init__(self) -> None:
        self.edges: Dict[Symbol, "TrieNode"] = {}
        self.accepts: List[Rule] = []

    def insert_path(self, symbols: Sequence[Symbol], rule: Rule) -> None:
        node = self
        for symbol in symbols:
            node = node.edges.setdefault(symbol, TrieNode())
        if rule not in node.accepts:
            node.accepts.append(rule)

    def merge(self, other: "TrieNode") -> None:
        for rule in other.accepts:
            if rule not in self.accepts:
                self.accepts.append(rule)
        for symbol, child in other.edges.items():
            self.edges.setdefault(symbol, TrieNode()).merge(child)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.edges.values())


class CigaleParser:
    """Greedy trie traversal with operand-extension for infix operators."""

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        start: Optional[NonTerminal] = None,
    ) -> None:
        self._tries: Dict[NonTerminal, TrieNode] = {}
        self._continuations: Dict[NonTerminal, TrieNode] = {}
        self.start = start
        for rule in rules:
            self.add_rule(rule)

    @classmethod
    def from_grammar(cls, grammar: Grammar) -> "CigaleParser":
        return cls(grammar.rules, start=grammar.start)

    # -- incremental construction (the Cigale selling point) ---------------

    def add_rule(self, rule: Rule) -> None:
        """O(|rule|) trie insertion; nothing else changes."""
        if rule.rhs and rule.rhs[0] == rule.lhs:
            # Directly left-recursive: keep the tail in the continuation
            # trie, to be tried after an operand has been recognized.
            trie = self._continuations.setdefault(rule.lhs, TrieNode())
            trie.insert_path(rule.rhs[1:], rule)
        else:
            trie = self._tries.setdefault(rule.lhs, TrieNode())
            trie.insert_path(rule.rhs, rule)

    def merge(self, other: "CigaleParser") -> None:
        """Combine tries 'just like modules'."""
        for nonterminal, trie in other._tries.items():
            self._tries.setdefault(nonterminal, TrieNode()).merge(trie)
        for nonterminal, trie in other._continuations.items():
            self._continuations.setdefault(nonterminal, TrieNode()).merge(trie)

    def trie_size(self) -> int:
        total = sum(trie.size() for trie in self._tries.values())
        total += sum(trie.size() for trie in self._continuations.values())
        return total

    # -- parsing ---------------------------------------------------------

    def parse(self, tokens: Sequence[Terminal]) -> Optional[TreeNode]:
        """Parse the whole token sequence as the start symbol, or None."""
        if self.start is None:
            raise ValueError("no start symbol configured")
        forest = Forest()
        sentence = list(tokens)
        outcome = self._parse_nt(self.start, 0, sentence, forest, 0)
        if outcome is None:
            return None
        tree, end = outcome
        return tree if end == len(sentence) else None

    def recognize(self, tokens: Sequence[Terminal]) -> bool:
        return self.parse(tokens) is not None

    def _parse_nt(
        self,
        nonterminal: NonTerminal,
        position: int,
        sentence: List[Terminal],
        forest: Forest,
        depth: int,
    ) -> Optional[Tuple[TreeNode, int]]:
        if depth > _MAX_DEPTH:
            return None  # greedy traversal gave up (no backtracking)
        trie = self._tries.get(nonterminal)
        if trie is None:
            return None
        outcome = self._traverse(trie, position, sentence, forest, [], depth)
        if outcome is None:
            return None
        tree, end = outcome
        # Extension loop: left-recursive operator rules continue here.
        continuation = self._continuations.get(nonterminal)
        while continuation is not None:
            extended = self._traverse(
                continuation, end, sentence, forest, [tree], depth
            )
            if extended is None:
                break
            tree, end = extended
        return tree, end

    def _traverse(
        self,
        node: TrieNode,
        position: int,
        sentence: List[Terminal],
        forest: Forest,
        collected: List[TreeNode],
        depth: int,
    ) -> Optional[Tuple[TreeNode, int]]:
        # Greedy terminal step first — this *is* the lookahead Cigale has.
        if position < len(sentence):
            token = sentence[position]
            child = node.edges.get(token)
            if child is not None:
                result = self._traverse(
                    child,
                    position + 1,
                    sentence,
                    forest,
                    collected + [forest.leaf(token, position)],
                    depth,
                )
                if result is not None:
                    return result
        # Then non-terminal edges, first success wins (no backtracking
        # across this choice once the recursive parse commits).
        for symbol, child in node.edges.items():
            if not isinstance(symbol, NonTerminal):
                continue
            sub = self._parse_nt(symbol, position, sentence, forest, depth + 1)
            if sub is None:
                continue
            subtree, end = sub
            result = self._traverse(
                child, end, sentence, forest, collected + [subtree], depth
            )
            if result is not None:
                return result
        # Finally, accept here if a rule ends at this node.
        for rule in node.accepts:
            return forest.node(rule, collected), position
        return None
