"""An interactive grammar-definition session — the paper's use case, as a
command-line tool.

Section 1 motivates IPG with *"an environment where language definitions
are developed (and modified) interactively"*.  This module is that
environment in miniature: a read-eval-print loop over grammar edits and
parse requests, with no generation pauses because there is no generation
phase.

Run it::

    python -m repro

or script it::

    echo 'add B ::= true
    add START ::= B
    parse true' | python -m repro

Besides the REPL there are two service subcommands (see
:mod:`repro.service`):

``python -m repro serve``
    Answer line-delimited JSON requests on stdin (one response per
    request on stdout, each with ``time`` and — for parses — ``cache``
    fields).

``python -m repro batch [file...]``
    Run the same requests non-interactively from files (or stdin),
    printing responses to stdout and a throughput/cache summary to
    stderr.

Commands
--------

========================  ==================================================
``add A ::= x B y``       ADD-RULE (names with existing rules are sorts)
``sort N``                predeclare a sort for forward references
``delete A ::= x``        DELETE-RULE
``parse tok tok ...``     parse a sentence; prints every tree
``recognize tok ...``     accept/reject only
``engine [name]``         show the engine registry / pick the engine
``lexer [kind]``          show or switch the tokenizer
                          (``whitespace`` or ``scanner``)
``show``                  the current grammar
``summary``               item-set graph statistics
``fraction``              §5.2: how much of the full table exists
``gc``                    run the mark-and-sweep collector
``trees on|off``          toggle tree printing
``help`` / ``quit``
========================  ==================================================

Parsing runs through :mod:`repro.api`: rejected inputs print a diagnostic
line with the offending token's position and the expected terminal set,
and ``engine`` switches between every registered parsing runtime
(``lazy`` / ``compiled`` / ``dense`` / ``gss`` / ``earley``).  With
``lexer scanner`` the REPL derives an ISG scanner from the grammar's own
terminals (kept in sync with ``add``/``delete``), so punctuation no
longer needs surrounding blanks: ``parse (n+n)*n``.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List, Optional

from .api import ScannerTokenizer, WhitespaceTokenizer, engine_descriptions, engines
from .core.ipg import IPG
from .grammar.grammar import Grammar, GrammarError
from .runtime.errors import ParseError
from .runtime.forest import bracketed

PROMPT = "ipg> "

_HELP = """commands:
  add <rule>        e.g.  add E ::= E + T        (ADD-RULE)
  sort <names...>   predeclare sorts for forward references
  delete <rule>     e.g.  delete E ::= E + T     (DELETE-RULE)
  parse <tokens>    parse and print every tree
  recognize <toks>  accept/reject only
  engine [name]     show the engine registry / pick the parse engine
  lexer [kind]      show or switch the tokenizer (whitespace|scanner)
  show              print the grammar
  summary           item-set graph statistics
  fraction          fraction of the full parse table generated (§5.2)
  gc                run the mark-and-sweep collector
  trees on|off      toggle tree printing
  help, quit"""


class ReplSession:
    """The command interpreter; IO-free for testability."""

    def __init__(self) -> None:
        self.ipg = IPG(Grammar())
        self.language = self.ipg.language
        self.declared_sorts: set = set()
        self.print_trees = True
        self.finished = False

    # -- the dispatcher -----------------------------------------------------

    def execute(self, line: str) -> List[str]:
        """Run one command line; returns the output lines."""
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            return []
        command, _, argument = stripped.partition(" ")
        handler = self._handlers().get(command)
        if handler is None:
            return [f"unknown command {command!r} — try 'help'"]
        try:
            return handler(argument.strip())
        except (GrammarError, ParseError) as error:
            return [f"error: {error}"]

    def _handlers(self) -> Dict[str, Callable[[str], List[str]]]:
        return {
            "add": self._add,
            "sort": self._sort,
            "delete": self._delete,
            "parse": self._parse,
            "recognize": self._recognize,
            "engine": self._engine,
            "lexer": self._lexer,
            "show": self._show,
            "summary": self._summary,
            "fraction": self._fraction,
            "gc": self._gc,
            "trees": self._trees,
            "help": lambda _arg: [_HELP],
            "quit": self._quit,
            "exit": self._quit,
        }

    # -- commands ------------------------------------------------------

    def _add(self, text: str) -> List[str]:
        if self.ipg.add_rule(text, sorts=self.declared_sorts):
            return [f"added: {self.ipg.coerce_rule(text, self.declared_sorts)}"]
        return ["(rule already present)"]

    def _sort(self, text: str) -> List[str]:
        names = text.split()
        if not names:
            return ["usage: sort <names...>"]
        self.declared_sorts.update(names)
        return [f"sorts declared: {' '.join(sorted(self.declared_sorts))}"]

    def _delete(self, text: str) -> List[str]:
        if self.ipg.delete_rule(text, sorts=self.declared_sorts):
            return ["deleted"]
        return ["(no such rule)"]

    def _parse(self, text: str) -> List[str]:
        outcome = self.language.parse(text)
        if not outcome.accepted:
            return self._rejection(outcome)
        if not outcome.trees_built:
            return [f"accepted (engine {outcome.engine} builds no trees)"]
        lines = [f"accepted ({len(outcome.trees)} parse"
                 f"{'s' if len(outcome.trees) != 1 else ''})"]
        if self.print_trees:
            lines.extend(f"  {bracketed(tree)}" for tree in outcome.trees)
        return lines

    def _recognize(self, text: str) -> List[str]:
        outcome = self.language.recognize(text)
        if outcome.accepted:
            return ["accepted"]
        return self._rejection(outcome)

    @staticmethod
    def _rejection(outcome) -> List[str]:
        lines = ["rejected"]
        diagnostic = outcome.diagnostic
        if diagnostic is not None and (
            diagnostic.expected or diagnostic.kind != "syntax"
        ):
            lines.append(f"  {diagnostic.describe()}")
        return lines

    def _engine(self, text: str) -> List[str]:
        if not text:
            current = self.language.default_engine
            summaries = engine_descriptions()
            return [
                f"{'*' if name == current else ' '} {name:10s} {summaries[name]}"
                for name in engines()
            ]
        if text not in engines():
            return [
                f"unknown engine {text!r} — known: {', '.join(engines())}"
            ]
        self.language.use_engine(text)
        return [f"engine set to {text}"]

    def _lexer(self, text: str) -> List[str]:
        if not text:
            return [f"lexer: {self.language.tokenizer.describe()}"]
        if text == "whitespace":
            self.language.use_tokenizer(WhitespaceTokenizer())
        elif text == "scanner":
            self.language.use_tokenizer(
                ScannerTokenizer.from_grammar(self.language.grammar)
            )
        else:
            return ["usage: lexer [whitespace|scanner]"]
        return [f"lexer: {self.language.tokenizer.describe()}"]

    def _show(self, _argument: str) -> List[str]:
        listing = self.ipg.grammar.pretty()
        return listing.splitlines() if listing else ["(empty grammar)"]

    def _summary(self, _argument: str) -> List[str]:
        summary = self.ipg.summary()
        return [
            ", ".join(f"{key}={value}" for key, value in summary.items())
        ]

    def _fraction(self, _argument: str) -> List[str]:
        if not self.ipg.grammar.start_rules():
            return ["no START rule yet"]
        return [f"{self.ipg.table_fraction():.0%} of the full table generated"]

    def _gc(self, _argument: str) -> List[str]:
        removed = self.ipg.collect_garbage(force_sweep=True)
        return [f"reclaimed {removed} item sets"]

    def _trees(self, argument: str) -> List[str]:
        if argument not in ("on", "off"):
            return ["usage: trees on|off"]
        self.print_trees = argument == "on"
        return [f"tree printing {argument}"]

    def _quit(self, _argument: str) -> List[str]:
        self.finished = True
        return ["bye"]


def run_session(lines: Iterable[str]) -> List[str]:
    """Execute a scripted session; returns all output lines."""
    session = ReplSession()
    output: List[str] = []
    for line in lines:
        output.extend(session.execute(line))
        if session.finished:
            break
    return output


_USAGE = """usage: python -m repro [subcommand]

subcommands:
  (none) | repl     the interactive grammar-definition REPL
  serve             answer line-delimited JSON requests on stdin
  batch [file...]   run JSON requests from files (or stdin) and print
                    responses plus a throughput/cache summary on stderr
  help              this message"""


def _repl_main() -> int:
    session = ReplSession()
    interactive = sys.stdin.isatty()
    if interactive:
        print("IPG — incremental parser generator "
              "(Heering/Klint/Rekers 1989).  'help' for commands.")
    while not session.finished:
        if interactive:
            print(PROMPT, end="", flush=True)
        line = sys.stdin.readline()
        if not line:
            break
        for out in session.execute(line):
            print(out)
    return 0


def _serve_main() -> int:
    from .service.server import serve

    return serve(sys.stdin, sys.stdout)


def _batch_main(paths: List[str]) -> int:
    import json

    from .service.server import run_batch

    if paths:
        lines: List[str] = []
        for path in paths:
            try:
                with open(path) as handle:
                    lines.extend(handle.readlines())
            except OSError as error:
                print(f"error: cannot read {path!r}: {error}", file=sys.stderr)
                return 2
    else:
        lines = sys.stdin.readlines()
    responses, summary = run_batch(lines)
    from .service.protocol import encode

    for response in responses:
        print(encode(response))
    print(json.dumps(summary, sort_keys=True), file=sys.stderr)
    return 1 if summary["errors"] else 0


def main(argv: Optional[List[str]] = None) -> int:
    """The ``python -m repro`` / ``repro`` entry point."""
    args = list(sys.argv[1:] if argv is None else argv)
    try:
        if not args or args[0] == "repl":
            return _repl_main()
        command, rest = args[0], args[1:]
        if command == "serve":
            return _serve_main()
        if command == "batch":
            return _batch_main(rest)
        if command in ("help", "-h", "--help"):
            print(_USAGE)
            return 0
        print(_USAGE, file=sys.stderr)
        print(f"error: unknown subcommand {command!r}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream reader closed early (`python -m repro help | head`).
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
